"""Tests for the PERMUTE query language (lexer, parser, compiler)."""

import pytest

from repro.core.conditions import Const
from repro.core.variables import group, var
from repro.lang import (CompileError, LexError, ParseError, compile_query,
                        parse, parse_pattern, tokenize)
from repro.lang.tokens import TokenType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("pattern Permute THEN where AND within")
        values = [t.value for t in tokens[:-1]]
        assert values == ["PATTERN", "PERMUTE", "THEN", "WHERE", "AND",
                          "WITHIN"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_case_sensitive(self):
        tokens = tokenize("Price price")
        assert [t.value for t in tokens[:-1]] == ["Price", "price"]

    def test_numbers(self):
        tokens = tokenize("264 3.5")
        assert tokens[0].value == 264 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5 and isinstance(tokens[1].value, float)

    def test_string_single_and_double_quotes(self):
        tokens = tokenize("'abc' \"xyz\"")
        assert tokens[0].value == "abc"
        assert tokens[1].value == "xyz"

    def test_string_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize("'a\nb'")

    def test_operators(self):
        tokens = tokenize("= != <> < <= > >=")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "!=", "!=", "<", "<=", ">", ">="]

    def test_punctuation(self):
        tokens = tokenize("( ) , . +")
        types = [t.type for t in tokens[:-1]]
        assert types == [TokenType.LPAREN, TokenType.RPAREN, TokenType.COMMA,
                         TokenType.DOT, TokenType.PLUS]

    def test_comments_stripped(self):
        tokens = tokenize("a -- comment here\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a @ b")
        assert info.value.line == 1

    def test_always_ends_with_eof(self):
        assert tokenize("").pop().type is TokenType.EOF


class TestParser:
    def test_minimal_query(self):
        query = parse("PATTERN a WITHIN 10")
        assert len(query.sets) == 1
        assert not query.sets[0].explicit_permute
        assert query.duration.magnitude == 10

    def test_permute_group(self):
        query = parse("PATTERN PERMUTE(a, b+, c) WITHIN 5")
        variables = query.sets[0].variables
        assert [v.name for v in variables] == ["a", "b", "c"]
        assert [v.quantified for v in variables] == [False, True, False]

    def test_then_sequence(self):
        query = parse("PATTERN PERMUTE(a, b) THEN c THEN PERMUTE(d) WITHIN 5")
        assert len(query.sets) == 3

    def test_where_conditions(self):
        query = parse("PATTERN a WHERE a.L = 'C' AND a.V > 3 WITHIN 5")
        assert len(query.conditions) == 2
        assert query.conditions[0].op == "="
        assert query.conditions[1].op == ">"

    def test_condition_between_attributes(self):
        query = parse("PATTERN PERMUTE(a, b) WHERE a.ID = b.ID WITHIN 5")
        cond = query.conditions[0]
        assert cond.left.variable == "a"
        assert cond.right.variable == "b"

    def test_group_variable_in_condition(self):
        query = parse("PATTERN PERMUTE(p+) WHERE p+.L = 'P' WITHIN 5")
        assert query.conditions[0].left.variable == "p"

    def test_duration_units(self):
        assert parse("PATTERN a WITHIN 2 DAYS").duration.in_hours() == 48
        assert parse("PATTERN a WITHIN 30 MINUTES").duration.in_hours() == 0.5
        assert parse("PATTERN a WITHIN 264 HOURS").duration.in_hours() == 264
        assert parse("PATTERN a WITHIN 264").duration.in_hours() == 264

    def test_missing_pattern_keyword(self):
        with pytest.raises(ParseError):
            parse("PERMUTE(a) WITHIN 5")

    def test_missing_within(self):
        with pytest.raises(ParseError):
            parse("PATTERN a")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("PATTERN a WITHIN 5 extra")

    def test_unclosed_permute(self):
        with pytest.raises(ParseError):
            parse("PATTERN PERMUTE(a, b WITHIN 5")

    def test_condition_left_literal_rejected(self):
        with pytest.raises(ParseError):
            parse("PATTERN a WHERE 5 = a.V WITHIN 5")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("PATTERN a WHERE a.V WITHIN 5")
        assert info.value.line is not None


class TestCompiler:
    def test_q1_equivalence(self, q1):
        text = """
            PATTERN PERMUTE(c, p+, d) THEN b
            WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
              AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
            WITHIN 264 HOURS
        """
        assert parse_pattern(text) == q1

    def test_days_unit(self, q1):
        text = """
            PATTERN PERMUTE(c, p+, d) THEN b
            WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
              AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
            WITHIN 11 DAYS
        """
        assert parse_pattern(text).tau == 264

    def test_group_quantifier_preserved(self):
        pattern = parse_pattern("PATTERN PERMUTE(a, b+) WITHIN 5")
        assert pattern.variable("b") == group("b")
        assert pattern.variable("a") == var("a")

    def test_constants_typed(self):
        pattern = parse_pattern(
            "PATTERN a WHERE a.V = 3 AND a.W = 3.5 AND a.L = 'x' WITHIN 5")
        values = [c.right.value for c in pattern.conditions]
        assert values == [3, 3.5, "x"]

    def test_duplicate_variable_rejected(self):
        with pytest.raises(CompileError):
            parse_pattern("PATTERN PERMUTE(a, b) THEN a WITHIN 5")

    def test_undeclared_variable_in_condition(self):
        with pytest.raises(CompileError) as info:
            parse_pattern("PATTERN a WHERE z.L = 'C' WITHIN 5")
        assert "z" in str(info.value)

    def test_compile_error_from_pattern_validation(self):
        # Negative durations are caught at the SESPattern layer; the
        # lexer has no unary minus so craft the query via the AST.
        from repro.lang.ast import DurationNode, QueryNode, SetNode, VariableNode
        query = QueryNode(
            sets=[SetNode([VariableNode("a", False)])],
            conditions=[],
            duration=DurationNode(-5),
        )
        with pytest.raises(CompileError):
            compile_query(query)

    def test_matches_same_results_as_manual_pattern(self, figure1, q1):
        from repro import match
        text = """
            PATTERN PERMUTE(c, p+, d) THEN b
            WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
              AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
            WITHIN 264
        """
        assert (match(parse_pattern(text), figure1).matches
                == match(q1, figure1).matches)
