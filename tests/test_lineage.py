"""Match provenance and causal tracing: the lineage layer.

Covers the trace-context identity scheme, deterministic sampling,
provenance reconciliation against every delivery surface (serial batch,
pool workers, sharded streaming, supervised chaos restarts, the
registry), the Hypothesis replay property (a match's recorded event ids
reproduce it when replayed alone), the zero-cost disabled path, and the
rendering/export surfaces (text/json/dot, Chrome trace, OTLP spans,
``/debug/lineage``, ``repro trace``).
"""

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Event, EventRelation, SESPattern
from repro.obs import (LineageRecorder, Observability, Provenance,
                       TraceConfig, TraceContext, match_id, sampled,
                       to_chrome_trace, to_otel_spans, to_prometheus,
                       trace_id_for, TRACE_MAX_ENV, TRACE_SAMPLE_ENV,
                       TRACE_SLOW_MS_ENV)
from repro.parallel.codec import (attach_trace_ctx, decode_event,
                                  encode_event, event_trace_ctx)

from conftest import bindings

#: Two-variable pattern over labelled events — one match per (A, B) pair
#: inside the window.
AB = SESPattern(
    sets=[["a"], ["b"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'"],
    tau=20,
)

#: Every variable equi-joins on ID: partitionable/shardable.
JOINED = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)


def ab_events(pairs=3, gap=3):
    events = []
    ts = 0
    for _ in range(pairs):
        ts += 1
        events.append(Event(ts=ts, eid=f"a{ts}", kind="A"))
        ts += gap
        events.append(Event(ts=ts, eid=f"b{ts}", kind="B"))
        ts += 20  # separate the pairs past tau
    return events


def keyed_events(n_keys=6, reps=1):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return events


def traced_obs(rate=1.0, **config):
    return Observability(
        lineage=LineageRecorder(TraceConfig(sample_rate=rate, **config)))


# ----------------------------------------------------------------------
# Identity and sampling
# ----------------------------------------------------------------------
class TestIdentity:
    def test_trace_id_is_deterministic_and_content_derived(self):
        a = Event(ts=1, eid="x", kind="A")
        b = Event(ts=1, eid="x", kind="A")
        assert trace_id_for(a) == trace_id_for(b)
        assert len(trace_id_for(a)) == 16
        assert trace_id_for(a) != trace_id_for(Event(ts=2, eid="x"))

    def test_anonymous_events_diverge_on_attributes(self):
        assert (trace_id_for(Event(ts=1, kind="A"))
                != trace_id_for(Event(ts=1, kind="B")))

    def test_match_id_is_stable_across_recomputation(self):
        matches = repro.query(AB, ab_events(pairs=2)).substitutions
        assert len(matches) == 2
        ids = [match_id(s) for s in matches]
        assert ids == [match_id(s) for s in matches]
        assert len(set(ids)) == 2

    def test_sampling_is_deterministic_with_fast_paths(self):
        tid = trace_id_for(Event(ts=1, eid="x"))
        assert sampled(tid, 1.0) and not sampled(tid, 0.0)
        assert all(sampled(t, 0.5) == sampled(t, 0.5)
                   for t in (trace_id_for(Event(ts=i, eid=f"e{i}"))
                             for i in range(64)))

    def test_half_rate_samples_roughly_half(self):
        ids = [trace_id_for(Event(ts=i, eid=f"e{i}")) for i in range(400)]
        kept = sum(sampled(t, 0.5) for t in ids)
        assert 120 < kept < 280


class TestTraceConfig:
    def test_defaults_are_off(self):
        config = TraceConfig()
        assert not config.enabled
        assert config.slow_seconds == 0.1 and config.max_traces == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            TraceConfig(sample_rate=0.5, max_traces=0)

    def test_from_env_reads_and_clamps(self):
        config = TraceConfig.from_env({TRACE_SAMPLE_ENV: "2.0",
                                       TRACE_SLOW_MS_ENV: "250",
                                       TRACE_MAX_ENV: "16"})
        assert config.sample_rate == 1.0
        assert config.slow_seconds == 0.25
        assert config.max_traces == 16

    def test_from_env_malformed_values_fall_back(self):
        config = TraceConfig.from_env({TRACE_SAMPLE_ENV: "lots",
                                       TRACE_MAX_ENV: "-3"})
        assert config.sample_rate == 0.0
        assert config.max_traces == 1

    def test_env_knob_creates_the_recorder(self, monkeypatch):
        monkeypatch.delenv(TRACE_SAMPLE_ENV, raising=False)
        assert Observability().lineage is None
        monkeypatch.setenv(TRACE_SAMPLE_ENV, "1")
        obs = Observability()
        assert obs.lineage is not None
        assert obs.lineage.config.sample_rate == 1.0


class TestWireFormat:
    def test_traced_wire_roundtrip(self):
        event = Event(ts=3, eid="e3", kind="A")
        ctx = TraceContext.for_event(event)
        wire = attach_trace_ctx(encode_event(event), ctx.to_wire())
        assert event_trace_ctx(wire) == ctx.to_wire()
        assert decode_event(wire) == event
        assert event_trace_ctx(encode_event(event)) is None

    def test_context_wire_roundtrip_preserves_hops(self):
        ctx = TraceContext.for_event(Event(ts=1, eid="x"))
        ctx.hop("shard:1", "recv")
        back = TraceContext.from_wire(ctx.to_wire())
        assert back.trace_id == ctx.trace_id
        assert back.hops == ctx.hops


# ----------------------------------------------------------------------
# Serial batch delivery
# ----------------------------------------------------------------------
class TestSerialLineage:
    def test_every_match_carries_provenance(self):
        obs = traced_obs()
        result = repro.query(AB, ab_events(pairs=3), observability=obs)
        matches = list(result)
        assert len(matches) == 3
        for match in matches:
            record = match.provenance
            assert record is not None
            assert record.delivered == 1
            assert record.delivered_by == "serial"
            assert record.event_ids == tuple(
                e.eid for e in match.substitution.events())
            assert record.path == ("a", "b")
            assert record.latency() is not None and record.latency() >= 0.0

    def test_reconciliation_is_exact(self):
        obs = traced_obs()
        result = repro.query(AB, ab_events(pairs=3), observability=obs)
        report = obs.lineage.reconcile(result.substitutions)
        assert report["ok"], report
        assert report["matches"] == 3

    def test_stage_timestamps_are_ordered(self):
        obs = traced_obs()
        result = repro.query(AB, ab_events(pairs=1), observability=obs)
        record = list(result)[0].provenance
        stages = record.stages
        assert stages["ingest"] <= stages["accept"] <= stages["deliver"]
        assert all(seconds >= 0.0
                   for _, seconds in record.stage_breakdown())

    def test_latency_histograms_published(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=3), observability=obs)
        snapshot = obs.snapshot()
        assert snapshot["ses_event_latency_e2e_seconds"]["count"] == 3
        assert snapshot["ses_event_latency_stage_match_seconds"]["count"] == 3
        assert snapshot["ses_lineage_records_total"]["value"] >= 3

    def test_unsampled_matches_are_dropped_after_counting(self):
        obs = traced_obs(rate=1e-9, slow_seconds=3600.0)
        result = repro.query(AB, ab_events(pairs=3), observability=obs)
        assert all(m.provenance is None for m in result)
        summary = obs.lineage.summary()
        assert summary["dropped"] >= 3
        snapshot = obs.snapshot()
        # Delivery is still counted before the record is dropped.
        assert snapshot["ses_event_latency_e2e_seconds"]["count"] == 3
        assert snapshot["ses_lineage_dropped_total"]["value"] >= 3

    def test_slow_traces_are_promoted_even_when_unsampled(self):
        obs = traced_obs(rate=1e-9, slow_seconds=0.0)
        result = repro.query(AB, ab_events(pairs=1), observability=obs)
        record = list(result)[0].provenance
        assert record is not None and record.kept == "slow"
        assert obs.snapshot()["ses_lineage_slow_kept_total"]["value"] == 1

    def test_duplicate_delivery_is_counted(self):
        obs = traced_obs()
        lineage = obs.lineage
        result = repro.query(AB, ab_events(pairs=1), observability=obs)
        substitution = result.substitutions[0]
        lineage.deliver(substitution, by="again")
        report = lineage.reconcile(result.substitutions)
        assert not report["ok"] and report["duplicates"]
        assert lineage.summary()["duplicates"] == 1

    def test_aggregation_queries_carry_group_provenance(self):
        obs = traced_obs()
        series = repro.query(
            "SELECT count(*) AS n FROM PATTERN PERMUTE(a, b) "
            "WHERE a.kind = 'A' AND b.kind = 'B' WITHIN 20",
            ab_events(pairs=3), observability=obs)
        assert series["n"] == 3
        record = series.provenance
        assert record is not None
        assert record.delivered == series.matches_folded
        assert len(record.event_ids) > 0


# ----------------------------------------------------------------------
# Zero-cost disabled path
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_disabled_executor_binds_the_uninstrumented_feed(self,
                                                            monkeypatch):
        monkeypatch.delenv(TRACE_SAMPLE_ENV, raising=False)
        plan = repro.compile(AB)
        probe = plan.executor(observability=Observability())
        assert probe.lineage is None
        assert probe.feed == probe._feed

    def test_enabled_executor_wraps_the_feed(self):
        plan = repro.compile(AB)
        probe = plan.executor(observability=traced_obs())
        assert probe.lineage is not None
        assert probe.feed == probe._traced_feed

    def test_disabled_overhead_is_bounded(self, capsys):
        """Tracing off must cost < 5 % against the direct feed path
        (same bar and same min-of-rounds idiom as the disabled guard)."""
        from repro.data import generate_chemo, experiment1_pattern
        relation = list(generate_chemo(patients=25, cycles=4, seed=7))
        plan = repro.compile(experiment1_pattern(4, exclusive=True))

        def run_direct():
            executor = plan.executor(selection="accepted")
            start = time.perf_counter()
            for event in relation:
                executor._feed(event)
            executor.finish()
            return time.perf_counter() - start

        def run_wrapped():
            executor = plan.executor(selection="accepted")
            assert executor.lineage is None
            start = time.perf_counter()
            for event in relation:
                executor.feed(event)
            executor.finish()
            return time.perf_counter() - start

        direct = wrapped = float("inf")
        for _ in range(9):
            direct = min(direct, run_direct())
            wrapped = min(wrapped, run_wrapped())
        factor = wrapped / direct
        with capsys.disabled():
            print(f"\ndisabled-lineage overhead: direct {direct:.4f}s, "
                  f"wrapped {wrapped:.4f}s ({factor:.3f}x)")
        assert factor < 1.05


# ----------------------------------------------------------------------
# Parallel delivery surfaces
# ----------------------------------------------------------------------
class TestPoolLineage:
    def test_pool_matches_reconcile_exactly(self, monkeypatch):
        monkeypatch.setenv(TRACE_SAMPLE_ENV, "1")
        obs = traced_obs()
        events = keyed_events(n_keys=6, reps=2)
        result = repro.query(JOINED, events, workers=2, observability=obs)
        serial = repro.query(JOINED, events)
        assert ({bindings(s) for s in result.substitutions}
                == {bindings(s) for s in serial.substitutions})
        report = obs.lineage.reconcile(result.substitutions)
        assert report["ok"], report
        for match in result:
            assert match.provenance is not None
            assert match.provenance.delivered == 1
            assert match.provenance.delivered_by == "pool:2"
            assert match.provenance.event_ids == tuple(
                e.eid for e in match.substitution.events())


class TestStreamLineage:
    def test_continuous_matcher_stamps_deliveries(self):
        obs = traced_obs()
        matcher = repro.ContinuousMatcher(AB, observability=obs)
        seen = []
        matcher.on_match(seen.append)
        matcher.push_many(ab_events(pairs=2))
        matcher.close()
        assert len(seen) == 2
        for match in seen:
            assert match.provenance is not None
            assert match.provenance.delivered_by == "stream"
        assert obs.lineage.reconcile(matcher.matches)["ok"]

    def test_partitioned_matcher_shares_one_recorder(self):
        from repro.stream import PartitionedContinuousMatcher
        obs = traced_obs()
        matcher = PartitionedContinuousMatcher(
            JOINED, partition_by="ID", observability=obs)
        seen = []
        matcher.on_match(lambda key, match: seen.append(match))
        matcher.push_many(keyed_events(n_keys=4))
        matcher.close()
        assert seen
        for match in seen:
            assert match.provenance is not None
        assert obs.lineage.reconcile(matcher.matches)["ok"]
        merged = matcher.aggregate()
        assert merged.lineage is obs.lineage


class TestShardedLineage:
    def test_sharded_matches_reconcile_with_delivering_shard(self,
                                                             monkeypatch):
        monkeypatch.setenv(TRACE_SAMPLE_ENV, "1")
        from repro.parallel import ShardedStreamMatcher
        obs = traced_obs()
        events = keyed_events(n_keys=6, reps=2)
        matcher = ShardedStreamMatcher(JOINED, workers=2, partition_by="ID",
                                       observability=obs)
        delivered = []
        matcher.on_match(delivered.append)
        with matcher:
            matcher.push_many(events)
        report = obs.lineage.reconcile(matcher.matches)
        assert report["ok"], report
        assert delivered
        for match in delivered:
            record = match.provenance
            assert record is not None
            assert record.delivered == 1
            assert record.delivered_by.startswith("shard:")
            # The worker adopted the parent's context: its hop list
            # names both sites.
            sites = {site for ctx in (obs.lineage.context_for(e)
                                      for e in match.substitution.events())
                     if ctx is not None for site, _, _ in ctx.hops}
            assert "main" in sites

    def test_registry_deliveries_are_stamped(self):
        obs = traced_obs()
        registry = repro.PatternRegistry(observability=obs)
        registry.register(AB, pattern_id="ab")
        reported = registry.push_many(ab_events(pairs=2))
        reported.extend(registry.close())
        assert len(reported) == 2
        for match in reported:
            assert match.provenance is not None
            assert match.provenance.pattern_id == "ab"
            assert match.provenance.delivered_by == "registry"
        assert obs.lineage.reconcile(reported)["ok"]


# ----------------------------------------------------------------------
# Chaos: lineage survives crashes, replay does not duplicate it
# ----------------------------------------------------------------------
class TestChaosLineage:
    def _supervised(self, faults, obs, **kwargs):
        from repro import (DeadLetterQueue, RestartPolicy, Supervisor)
        from repro.parallel import ShardedStreamMatcher
        supervisor = Supervisor(
            restart=RestartPolicy(backoff=0.01, max_backoff=0.05,
                                  max_restarts=5),
            checkpoint_every=kwargs.pop("checkpoint_every", 4),
            quarantine_after=kwargs.pop("quarantine_after", 2),
            faults=faults, dead_letter=DeadLetterQueue())
        matcher = ShardedStreamMatcher(
            JOINED, workers=2, partition_by="ID", supervisor=supervisor,
            observability=obs, **kwargs)
        return matcher, supervisor

    def test_restart_replay_keeps_attribution_exactly_once(self,
                                                           monkeypatch):
        monkeypatch.setenv(TRACE_SAMPLE_ENV, "1")
        from repro import FaultPlan
        obs = traced_obs()
        events = keyed_events(n_keys=6, reps=2)
        faults = FaultPlan().kill(0, 4).kill(1, 3)
        matcher, supervisor = self._supervised(faults, obs)
        with matcher:
            matcher.push_many(events)
        assert supervisor.restarts_total == 2
        report = obs.lineage.reconcile(matcher.matches)
        assert report["ok"], report
        assert obs.lineage.summary()["duplicates"] == 0

    def test_quarantined_event_trace_is_force_kept(self, monkeypatch):
        monkeypatch.setenv(TRACE_SAMPLE_ENV, "1")
        from repro import FaultPlan
        obs = traced_obs()
        events = keyed_events(n_keys=6)
        faults = FaultPlan().corrupt(0, 2)
        matcher, supervisor = self._supervised(faults, obs)
        with matcher:
            matcher.push_many(events)
        assert supervisor.quarantined_total == 1
        quarantined = [r for r in obs.lineage.records()
                       if r.kept == "quarantined"]
        assert len(quarantined) == 1
        record = quarantined[0]
        assert record.delivered_by == "shard:0"
        assert record.match_id.startswith("quarantine:")
        assert obs.lineage.summary()["quarantined"] == 1
        # Match reconciliation still holds around the poison event.
        assert obs.lineage.reconcile(matcher.matches)["ok"]


# ----------------------------------------------------------------------
# Replay property: provenance is sufficient to reproduce the match
# ----------------------------------------------------------------------
@st.composite
def labelled_streams(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    kinds = draw(st.lists(st.sampled_from("AB"), min_size=n, max_size=n))
    gaps = draw(st.lists(st.integers(min_value=1, max_value=9),
                         min_size=n, max_size=n))
    events, ts = [], 0
    for index, (kind, gap) in enumerate(zip(kinds, gaps)):
        ts += gap
        events.append(Event(ts=ts, eid=f"e{index}", kind=kind))
    return events


class TestReplayProperty:
    @settings(max_examples=40, deadline=None)
    @given(labelled_streams())
    def test_provenance_event_ids_reproduce_the_match(self, events):
        obs = traced_obs()
        result = repro.query(AB, events, observability=obs)
        for match in result:
            record = match.provenance
            assert record is not None
            subset = [e for e in events if e.eid in record.event_ids]
            assert len(subset) == len(record.event_ids)
            replayed = repro.query(AB, subset)
            assert bindings(match.substitution) in {
                bindings(s) for s in replayed.substitutions}


# ----------------------------------------------------------------------
# Export and merge plumbing
# ----------------------------------------------------------------------
class TestCrossProcessPlumbing:
    def test_export_absorb_roundtrip(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        other = LineageRecorder(TraceConfig(sample_rate=1.0))
        other.absorb(obs.lineage.export_record())
        assert {r.match_id for r in other.records()} == {
            r.match_id for r in obs.lineage.records()}

    def test_non_authoritative_export_zeroes_deliveries(self):
        worker = LineageRecorder(TraceConfig(sample_rate=1.0),
                                 site="shard:0")
        worker.authoritative = False
        matches = repro.query(AB, ab_events(pairs=1)).substitutions
        event = ab_events(pairs=1)[0]
        worker.note_ingest(event)
        worker.deliver(matches[0], by="shard:0")
        exported = worker.export_record()
        assert all(r["delivered"] == 0 for r in exported["records"])
        # The worker stamped "report", never "deliver".
        assert all("deliver" not in r["stages"]
                   for r in exported["records"])

    def test_dropped_records_are_not_resurrected_by_absorb(self):
        obs = traced_obs(rate=1e-9, slow_seconds=3600.0)
        result = repro.query(AB, ab_events(pairs=1), observability=obs)
        assert list(result)[0].provenance is None
        stale = LineageRecorder(TraceConfig(sample_rate=1.0))
        stale.deliver(result.substitutions[0], by="stale")
        obs.lineage.absorb(stale.export_record())
        assert obs.lineage.provenance_for(result.substitutions[0]) is None

    def test_lineage_rides_observability_snapshots(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        snapshot = obs.snapshot()
        assert snapshot["repro_lineage"]["type"] == "lineage"
        parent = Observability()
        parent.merge_snapshot(snapshot)
        assert parent.lineage is not None
        assert len(parent.lineage.records()) == len(obs.lineage.records())

    def test_retention_stays_bounded(self):
        obs = traced_obs(max_traces=4)
        repro.query(AB, ab_events(pairs=12), observability=obs)
        assert len(obs.lineage.records()) <= 4


# ----------------------------------------------------------------------
# Rendering and exporters
# ----------------------------------------------------------------------
class TestRendering:
    def _report(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        return obs.lineage.report()

    def test_text_names_events_path_and_latency(self):
        text = self._report().to_text()
        assert "LINEAGE" in text
        assert "a -> b" in text
        assert "latency:" in text

    def test_json_roundtrips(self):
        document = json.loads(self._report().to_json())
        assert document["summary"]["records"] >= 2
        assert all("match_id" in r for r in document["records"])

    def test_dot_draws_event_to_match_edges(self):
        dot = self._report().to_dot()
        assert dot.startswith("digraph LINEAGE")
        assert "doubleoctagon" in dot and "->" in dot

    def test_unknown_format_raises_like_explain(self):
        with pytest.raises(ValueError, match="unknown lineage format"):
            self._report().render("yaml")

    def test_otel_spans_shape(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        document = to_otel_spans(obs.lineage, service="test")
        scope = document["resourceSpans"][0]["scopeSpans"][0]
        spans = scope["spans"]
        assert len(spans) >= 2
        roots = [s for s in spans if "parentSpanId" not in s]
        assert len(roots) == 2
        for span in spans:
            assert len(span["traceId"]) == 32
            assert len(span["spanId"]) == 16
            assert int(span["endTimeUnixNano"]) >= int(
                span["startTimeUnixNano"])
        children = [s for s in spans if "parentSpanId" in s]
        assert {c["parentSpanId"] for c in children} <= {
            r["spanId"] for r in roots}

    def test_chrome_trace_lineage_process(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        document = to_chrome_trace(lineage=obs.lineage)
        lineage_events = [e for e in document["traceEvents"]
                          if e.get("cat") == "lineage"]
        assert len(lineage_events) == 2 * len(obs.lineage.records())
        assert all(e["pid"] == 3 for e in lineage_events)

    def test_prometheus_skips_the_lineage_record(self):
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=1), observability=obs)
        text = to_prometheus(obs.snapshot())
        assert "repro_lineage" not in text
        assert "ses_event_latency_e2e_seconds_bucket" in text


# ----------------------------------------------------------------------
# Serving surface and CLI
# ----------------------------------------------------------------------
class TestObsServerLineage:
    def test_debug_lineage_routes(self):
        import urllib.error
        import urllib.request
        from repro.obs import ObsServer
        obs = traced_obs()
        repro.query(AB, ab_events(pairs=2), observability=obs)
        with ObsServer(lineage=lambda: obs.lineage) as server:
            assert "/debug/lineage" in server.routes
            with urllib.request.urlopen(
                    server.url + "/debug/lineage") as response:
                listing = json.load(response)
            assert listing["summary"]["records"] >= 2
            mid = listing["match_ids"][0]
            with urllib.request.urlopen(
                    server.url + f"/debug/lineage/{mid}") as response:
                record = json.load(response)
            assert record["match_id"] == mid
            assert record["event_ids"]
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    server.url + "/debug/lineage/nope")
            assert err.value.code == 404

    def test_route_404s_without_a_recorder(self):
        import urllib.error
        import urllib.request
        from repro.obs import ObsServer
        with ObsServer(lineage=lambda: None) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/debug/lineage")
            assert err.value.code == 404


class TestTraceCLI:
    def _csv(self, tmp_path):
        from repro.storage.csvio import save_relation
        path = tmp_path / "events.csv"
        save_relation(EventRelation(ab_events(pairs=2)), path)
        return path

    QUERY = ("PATTERN PERMUTE(a, b) WHERE a.kind = 'A' AND "
             "b.kind = 'B' WITHIN 20")

    def test_trace_text(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["trace", "--query", self.QUERY,
                     "--data", str(self._csv(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "LINEAGE" in out and "a -> b" in out

    def test_trace_json_and_otel_out(self, tmp_path, capsys):
        from repro.cli import main
        otel = tmp_path / "spans.json"
        assert main(["trace", "--query", self.QUERY,
                     "--data", str(self._csv(tmp_path)),
                     "--format", "json", "--otel-out", str(otel)]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[:out.rindex("}") + 1])
        assert document["summary"]["records"] >= 2
        spans = json.loads(otel.read_text())
        assert spans["resourceSpans"][0]["scopeSpans"][0]["spans"]

    def test_trace_dot_to_file(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "lineage.dot"
        assert main(["trace", "--query", self.QUERY,
                     "--data", str(self._csv(tmp_path)),
                     "--format", "dot", "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("digraph LINEAGE")

    def test_trace_rejects_bad_sample(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["trace", "--query", self.QUERY,
                     "--data", str(self._csv(tmp_path)),
                     "--sample", "1.5"]) == 1
        assert "sample" in capsys.readouterr().err
