"""Tests for the clickstream generator and the funnel pattern."""

import pytest

from repro import match
from repro.core.diagnostics import diagnose
from repro.data.clickstream import (ACTIONS, CLICK_SCHEMA,
                                    generate_clickstream,
                                    purchase_intent_pattern)


class TestGenerator:
    def test_deterministic(self):
        a = generate_clickstream(users=3, sessions_per_user=2, seed=1)
        b = generate_clickstream(users=3, sessions_per_user=2, seed=1)
        assert a.events == b.events

    def test_schema_conforms(self):
        relation = generate_clickstream(users=2, sessions_per_user=1)
        for event in relation:
            CLICK_SCHEMA.validate(event.attributes)
            assert event["action"] in ACTIONS

    def test_time_ordered(self):
        relation = generate_clickstream(users=5, sessions_per_user=2)
        timestamps = [e.ts for e in relation]
        assert timestamps == sorted(timestamps)

    def test_user_population(self):
        relation = generate_clickstream(users=7, sessions_per_user=1,
                                        intent_fraction=1.0)
        assert sorted(relation.partition_by("user")) == list(range(1, 8))

    def test_intent_fraction_bounds(self):
        with pytest.raises(ValueError):
            generate_clickstream(intent_fraction=1.5)

    def test_zero_intent_no_checkouts_matched(self):
        relation = generate_clickstream(users=8, sessions_per_user=2,
                                        intent_fraction=0.0, seed=2)
        result = match(purchase_intent_pattern(), relation)
        assert result.matches == []

    def test_full_intent_every_user_converts(self):
        relation = generate_clickstream(users=6, sessions_per_user=1,
                                        intent_fraction=1.0, seed=4)
        result = match(purchase_intent_pattern(), relation)
        converting = {m.events()[0]["user"] for m in result}
        assert converting == set(range(1, 7))


class TestPattern:
    def test_lints_clean_of_join_warnings(self):
        findings = [d.code for d in diagnose(purchase_intent_pattern())]
        assert "open-join-graph" not in findings
        assert "unsatisfiable-variable" not in findings

    def test_matches_are_single_user(self):
        relation = generate_clickstream(users=10, sessions_per_user=3,
                                        intent_fraction=0.5, seed=9)
        for substitution in match(purchase_intent_pattern(), relation):
            users = {e["user"] for e in substitution.events()}
            assert len(users) == 1

    def test_order_within_consideration_set_is_free(self):
        relation = generate_clickstream(users=12, sessions_per_user=2,
                                        intent_fraction=1.0, seed=13)
        orders = set()
        for substitution in match(purchase_intent_pattern(), relation):
            actions = tuple(e["action"] for e in substitution.events()[:3])
            orders.add(actions)
        assert len(orders) > 1, "the generator randomises the block order"

    def test_checkout_strictly_after_consideration(self):
        relation = generate_clickstream(users=10, sessions_per_user=2,
                                        intent_fraction=0.6, seed=21)
        for substitution in match(purchase_intent_pattern(), relation):
            events = substitution.events()
            assert events[-1]["action"] == "checkout"
            assert all(e.ts < events[-1].ts for e in events[:-1])

    def test_window_enforced(self):
        relation = generate_clickstream(users=6, sessions_per_user=1,
                                        intent_fraction=1.0, seed=5)
        tight = purchase_intent_pattern(tau=1)
        assert match(tight, relation).matches == []
