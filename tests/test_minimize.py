"""Tests for automaton trimming."""

import pytest

from repro import SESPattern, match
from repro.automaton import SESExecutor
from repro.automaton.builder import build_automaton
from repro.automaton.minimize import trim
from repro.automaton.states import state_label

from conftest import ev


class TestNothingToTrim:
    def test_clean_pattern_untouched(self, q1):
        automaton = build_automaton(q1)
        report = trim(automaton)
        assert not report.changed
        assert report.satisfiable
        assert report.automaton is automaton
        assert report.describe() == "nothing to trim"


class TestDeadTransitions:
    @pytest.fixture
    def conflicted(self):
        """Variable b carries conflicting constant conditions: every
        transition binding b is dead, and the accepting state (which
        requires b) becomes unreachable."""
        return SESPattern(
            sets=[["a", "b"], ["c"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "b.kind = 'X'",
                        "c.kind = 'C'"],
            tau=10,
        )

    def test_unsatisfiable_pattern_reported(self, conflicted):
        report = trim(build_automaton(conflicted))
        assert not report.satisfiable
        assert len(report.dead_transitions) > 0
        assert "never match" in report.describe()

    def test_unsatisfiable_pattern_indeed_never_matches(self, conflicted):
        events = [ev(1, "A"), ev(2, "B"), ev(3, "X"), ev(4, "C")]
        assert match(conflicted, events).matches == []

    def test_partial_conflict_trims_but_stays_satisfiable(self):
        """Only one variable of a three-variable set is conflicted: the
        automaton shrinks but still accepts the other path."""
        pattern = SESPattern(
            sets=[["a", "b"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'"],
            tau=10,
        )
        # Build, then manually conflict the a->ab transition by building a
        # pattern where one *optional* variable is conflicted instead:
        pattern = SESPattern(
            sets=[["a"], ["b"], ["c"]],
            conditions=["a.kind = 'A'",
                        "b.kind = 'B'",
                        "c.kind = 'C'", "c.kind = 'X'"],
            tau=10,
        )
        report = trim(build_automaton(pattern))
        assert not report.satisfiable, "c is required, so still unmatchable"

    def test_trimmed_automaton_equivalent(self):
        """Trimming never changes accepted buffers (satisfiable case).

        Conflict one variable of a PERMUTE set that has an alternative
        route... in SES patterns every variable is mandatory, so a dead
        variable always kills the pattern; the satisfiable-trim case is
        dead *orderings*: conflicting conditions on a transition but not
        on the variable itself cannot arise from the builder (Θδ per
        variable is fixed), so for built automata trim is all-or-nothing
        per variable.  Construct a hand-made automaton to exercise the
        satisfiable path instead.
        """
        from repro.automaton.automaton import SESAutomaton
        from repro.automaton.states import make_state
        from repro.automaton.transitions import Transition
        from repro.core.conditions import Attr, Condition, Const
        from repro.core.variables import var

        a, b = var("a"), var("b")
        s0, sa, sb, sab = (make_state(), make_state([a]), make_state([b]),
                           make_state([a, b]))
        cond_a = Condition(Attr(a, "kind"), "=", Const("A"))
        cond_b = Condition(Attr(b, "kind"), "=", Const("B"))
        dead_b = Condition(Attr(b, "kind"), "=", Const("X"))
        automaton = SESAutomaton(
            states=[s0, sa, sb, sab],
            transitions=[
                Transition(s0, a, [cond_a]),
                Transition(sa, b, [cond_b]),
                # A dead alternative route through {b}:
                Transition(s0, b, [cond_b, dead_b]),
                Transition(sb, a, [cond_a]),
            ],
            start=s0, accepting=sab, tau=10,
        )
        report = trim(automaton)
        assert report.satisfiable and report.changed
        assert len(report.dead_transitions) == 1
        assert state_label(report.unreachable_states[0]) == "b"
        events = [ev(1, "A"), ev(2, "B")]
        original = SESExecutor(automaton, selection="accepted").run(events)
        trimmed = SESExecutor(report.automaton, selection="accepted").run(events)
        assert original.accepted == trimmed.accepted

    def test_describe_lists_removals(self):
        from repro.automaton.automaton import SESAutomaton
        from repro.automaton.states import make_state
        from repro.automaton.transitions import Transition
        from repro.core.conditions import Attr, Condition, Const
        from repro.core.variables import var

        a = var("a")
        s0, sa = make_state(), make_state([a])
        dead = [Condition(Attr(a, "k"), "=", Const("X")),
                Condition(Attr(a, "k"), "=", Const("Y"))]
        automaton = SESAutomaton(
            states=[s0, sa],
            transitions=[Transition(s0, a, dead)],
            start=s0, accepting=s0, tau=5,
        )
        report = trim(automaton)
        assert report.satisfiable  # accepting == start, still reachable
        assert "dead transition" in report.describe()
        assert "unreachable state" in report.describe()
