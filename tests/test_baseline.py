"""Tests for the brute force baseline (Section 5.2) and the naive oracle."""

import math

import pytest

from repro import PatternError, SESPattern, match
from repro.baseline import (BruteForceMatcher, NaiveMatcher, brute_force_match,
                            enumerate_sequences, naive_match, sequence_count,
                            sequence_pattern)
from repro.core.variables import var

from conftest import eids, ev


SINGLETON_Q1 = SESPattern(
    sets=[["c", "p", "d"], ["b"]],
    conditions=["c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'",
                "c.ID = p.ID", "c.ID = d.ID", "d.ID = b.ID"],
    tau=264,
)


class TestSequences:
    def test_sequence_count_example11(self):
        """(<{c,p,d},{b}>) has 3!·1! = 6 sequences (paper Example 11)."""
        assert sequence_count(SINGLETON_Q1) == 6

    def test_sequence_count_multi_set(self):
        p = SESPattern(sets=[["a", "b"], ["c", "d"]], tau=1)
        assert sequence_count(p) == 4

    def test_enumerate_sequences_matches_figure10b(self):
        sequences = {tuple(v.name for v in s)
                     for s in enumerate_sequences(SINGLETON_Q1)}
        assert sequences == {
            ("c", "d", "p", "b"), ("c", "p", "d", "b"),
            ("d", "c", "p", "b"), ("d", "p", "c", "b"),
            ("p", "c", "d", "b"), ("p", "d", "c", "b"),
        }

    def test_sequences_end_with_second_set(self):
        for s in enumerate_sequences(SINGLETON_Q1):
            assert s[-1].name == "b"

    def test_sequence_pattern_all_singleton_sets(self):
        seq = next(enumerate_sequences(SINGLETON_Q1))
        p = sequence_pattern(SINGLETON_Q1, seq)
        assert len(p) == 4
        assert all(len(vs) == 1 for vs in p.sets)
        assert p.tau == 264
        assert set(p.conditions) == set(SINGLETON_Q1.conditions)

    def test_factorial_growth(self):
        for n in range(2, 7):
            names = [chr(ord("a") + i) for i in range(n)]
            p = SESPattern(sets=[names], tau=1)
            assert sequence_count(p) == math.factorial(n)


class TestBruteForce:
    def test_same_matches_as_ses(self, figure1):
        ses = match(SINGLETON_Q1, figure1)
        bf = brute_force_match(SINGLETON_Q1, figure1)
        assert ses.matches == bf.matches

    def test_automaton_count(self):
        assert BruteForceMatcher(SINGLETON_Q1).automaton_count == 6

    def test_group_variables_rejected_by_default(self, q1):
        with pytest.raises(PatternError):
            BruteForceMatcher(q1)

    def test_group_variables_opt_in(self, q1, figure1):
        bf = BruteForceMatcher(q1, allow_group=True)
        result = bf.run(figure1)
        # The consecutive-bindings approximation still finds patient 1
        # (p bindings e4, e9 are consecutive among patient-1 events it can
        # reach) — we only require the run not to crash and to return a
        # subset of the SES results or fewer.
        assert result.stats.events_read == 14

    def test_more_instances_than_ses(self, figure1):
        ses = match(SINGLETON_Q1, figure1, use_filter=False)
        bf = brute_force_match(SINGLETON_Q1, figure1)
        assert (bf.stats.max_simultaneous_instances
                > ses.stats.max_simultaneous_instances)

    def test_filter_supported(self, figure1):
        bf = BruteForceMatcher(SINGLETON_Q1, use_filter=True)
        result = bf.run(figure1)
        assert result.matches == match(SINGLETON_Q1, figure1).matches

    def test_selection_accepted(self, figure1):
        bf = BruteForceMatcher(SINGLETON_Q1, selection="accepted")
        result = bf.run(figure1)
        assert len(result.matches) == len(result.accepted)

    def test_repr(self):
        assert "6 automata" in repr(BruteForceMatcher(SINGLETON_Q1))


class TestNaive:
    def test_matches_paper_results(self, q1, figure1):
        matches = naive_match(q1, figure1)
        assert [eids(m) for m in matches] == [
            frozenset({"e1", "e3", "e4", "e9", "e12"}),
            frozenset({"e6", "e7", "e8", "e10", "e11", "e13"}),
        ]

    def test_matcher_class(self, q1, figure1):
        matcher = NaiveMatcher(q1)
        assert matcher.run(figure1) == naive_match(q1, figure1)

    def test_overlap_allow(self, q1, figure1):
        assert len(naive_match(q1, figure1, overlap="allow")) == 3

    def test_agrees_with_automaton_on_simple_inputs(self, kind_pattern):
        events = [ev(1, "A"), ev(2, "B"), ev(3, "C"), ev(4, "A"),
                  ev(5, "B"), ev(6, "C")]
        assert (naive_match(kind_pattern, events)
                == match(kind_pattern, events).matches)


class TestSequenceRewritingLimitations:
    """Documented limitations of the Section 5.2 rewriting."""

    def test_simultaneous_events_missed(self):
        """The sequence rewriting imposes a strict order between all
        variables, so it cannot match events of one set that share a
        timestamp — the SES automaton can (order within a set is free)."""
        from repro import EventRelation, SESPattern, match
        from conftest import ev

        pattern = SESPattern(
            sets=[["x", "y"], ["z"]],
            conditions=["x.kind = 'A'", "y.kind = 'B'", "z.kind = 'C'"],
            tau=30,
        )
        tied = EventRelation([ev(1, "A"), ev(1, "B"), ev(2, "C")])
        ses = match(pattern, tied)
        bf = BruteForceMatcher(pattern).run(tied)
        assert len(ses.matches) == 1, "SES matches the simultaneous pair"
        assert bf.matches == [], "the rewriting cannot express the tie"
