"""Unit tests for repro.core.semantics (Definition 2)."""

import pytest

from repro import Event, EventRelation, SESPattern, Substitution
from repro.core.semantics import (enumerate_candidates, is_candidate,
                                  matching_substitutions, satisfies_conditions,
                                  satisfies_maximality, satisfies_next_match,
                                  satisfies_order, satisfies_window,
                                  select_matches)
from repro.core.variables import group, var

from conftest import eids, ev

A, B, C = var("a"), var("b"), var("c")
P = group("p")


def sub(*pairs):
    return Substitution(pairs)


class TestConditions123:
    def test_satisfies_conditions(self, kind_pattern):
        g = sub((A, ev(1, "A")), (B, ev(2, "B")), (C, ev(3, "C")))
        assert satisfies_conditions(g, kind_pattern)
        bad = sub((A, ev(1, "X")), (B, ev(2, "B")), (C, ev(3, "C")))
        assert not satisfies_conditions(bad, kind_pattern)

    def test_order_between_adjacent_sets(self, kind_pattern):
        in_order = sub((A, ev(1, "A")), (B, ev(2, "B")), (C, ev(3, "C")))
        assert satisfies_order(in_order, kind_pattern)
        out_of_order = sub((A, ev(1, "A")), (B, ev(5, "B")), (C, ev(3, "C")))
        assert not satisfies_order(out_of_order, kind_pattern)

    def test_order_is_strict(self, kind_pattern):
        tied = sub((A, ev(1, "A")), (B, ev(3, "B")), (C, ev(3, "C")))
        assert not satisfies_order(tied, kind_pattern)

    def test_order_free_within_set(self, kind_pattern):
        swapped = sub((A, ev(2, "A")), (B, ev(1, "B")), (C, ev(3, "C")))
        assert satisfies_order(swapped, kind_pattern)

    def test_window(self, kind_pattern):
        ok = sub((A, ev(0, "A")), (C, ev(100, "C")))
        too_wide = sub((A, ev(0, "A")), (C, ev(101, "C")))
        assert satisfies_window(ok, kind_pattern)
        assert not satisfies_window(too_wide, kind_pattern)

    def test_window_empty_substitution(self, kind_pattern):
        assert satisfies_window(Substitution(), kind_pattern)

    def test_is_candidate_requires_totality(self, kind_pattern):
        partial = sub((A, ev(1, "A")))
        assert not is_candidate(partial, kind_pattern)


class TestEnumeration:
    def test_simple_enumeration(self, kind_pattern):
        relation = [ev(1, "A"), ev(2, "B"), ev(3, "C")]
        cands = enumerate_candidates(kind_pattern, relation)
        assert len(cands) == 1
        assert eids(cands[0]) == {"a1", "b2", "c3"}

    def test_permutation_within_set(self, kind_pattern):
        relation = [ev(1, "B"), ev(2, "A"), ev(3, "C")]
        cands = enumerate_candidates(kind_pattern, relation)
        assert len(cands) == 1

    def test_events_are_distinct_across_variables(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'X'", "b.kind = 'X'"],
                             tau=10)
        relation = [ev(1, "X")]
        assert enumerate_candidates(pattern, relation) == []

    def test_group_variable_combinations(self):
        pattern = SESPattern(sets=[["p+"]], conditions=["p.kind = 'P'"], tau=10)
        relation = [ev(1, "P"), ev(2, "P")]
        cands = enumerate_candidates(pattern, relation)
        # {e1}, {e2}, {e1,e2}
        assert len(cands) == 3

    def test_max_group_bindings_cap(self):
        pattern = SESPattern(sets=[["p+"]], conditions=["p.kind = 'P'"], tau=10)
        relation = [ev(t, "P") for t in range(5)]
        capped = enumerate_candidates(pattern, relation, max_group_bindings=1)
        assert all(len(c) == 1 for c in capped)

    def test_window_pruning(self, kind_pattern):
        relation = [ev(0, "A"), ev(1, "B"), ev(500, "C")]
        assert enumerate_candidates(kind_pattern, relation) == []

    def test_accepts_event_relation(self, kind_pattern):
        relation = EventRelation([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert len(matching_substitutions(kind_pattern, relation)) == 1


class TestCondition4:
    def test_example4_next_match_violation(self, q1, figure1):
        """Paper Example 4: binding b/e14 instead of e13 violates condition 4."""
        cands = enumerate_candidates(q1, figure1.events)
        by_eids = {eids(c): c for c in cands}
        bad = by_eids[frozenset({"e6", "e7", "e8", "e10", "e11", "e14"})]
        good = by_eids[frozenset({"e6", "e7", "e8", "e10", "e11", "e13"})]
        assert not satisfies_next_match(bad, cands)
        assert satisfies_next_match(good, cands)

    def test_cross_partition_witness_ignored(self, q1, figure1):
        """The intended patient-1 match must survive despite patient-2
        candidates binding p+ to events between e4 and e9."""
        cands = enumerate_candidates(q1, figure1.events)
        by_eids = {eids(c): c for c in cands}
        intended = by_eids[frozenset({"e1", "e3", "e4", "e9", "e12"})]
        assert satisfies_next_match(intended, cands)


class TestCondition5:
    def test_example4_maximality_violation(self, q1, figure1):
        """Paper Example 4: omitting e11 violates maximality."""
        cands = enumerate_candidates(q1, figure1.events)
        by_eids = {eids(c): c for c in cands}
        smaller = by_eids[frozenset({"e6", "e7", "e8", "e10", "e13"})]
        assert not satisfies_maximality(smaller, cands)

    def test_maximal_survives(self, q1, figure1):
        cands = enumerate_candidates(q1, figure1.events)
        by_eids = {eids(c): c for c in cands}
        maximal = by_eids[frozenset({"e6", "e7", "e8", "e10", "e11", "e13"})]
        assert satisfies_maximality(maximal, cands)

    def test_different_start_not_compared(self):
        small = sub((A, ev(5, "A")))
        big = sub((A, ev(1, "A")), (P, ev(5, "P")))
        # Different minT: maximality does not compare them.
        assert satisfies_maximality(small, [small, big])


class TestSelection:
    def test_overlap_suppress_reports_paper_results(self, q1, figure1):
        matches = matching_substitutions(q1, figure1)
        assert [eids(m) for m in matches] == [
            frozenset({"e1", "e3", "e4", "e9", "e12"}),
            frozenset({"e6", "e7", "e8", "e10", "e11", "e13"}),
        ]

    def test_overlap_allow_keeps_suffix_match(self, q1, figure1):
        matches = matching_substitutions(q1, figure1, overlap="allow")
        sets = [eids(m) for m in matches]
        assert frozenset({"e7", "e8", "e10", "e11", "e13"}) in sets
        assert len(matches) == 3

    def test_invalid_overlap_policy(self):
        with pytest.raises(ValueError):
            select_matches([], overlap="bogus")

    def test_deduplication(self):
        g = sub((A, ev(1, "A")))
        assert select_matches([g, g]) == [g]

    def test_deterministic_order(self, q1, figure1):
        first = matching_substitutions(q1, figure1)
        second = matching_substitutions(q1, figure1)
        assert first == second

    def test_empty_candidates(self):
        assert select_matches([]) == []
