"""Tests for multi-pattern and partitioned continuous matching."""

import pytest

from repro import SESPattern, match
from repro.data import base_dataset, figure1_relation, query_q1
from repro.stream import (MultiPatternMatcher, PartitionedContinuousMatcher,
                          from_relation)

from conftest import eids, ev

AB = SESPattern(sets=[["a"], ["b"]],
                conditions=["a.kind = 'A'", "b.kind = 'B'"], tau=10)
AC = SESPattern(sets=[["a"], ["c"]],
                conditions=["a.kind = 'A'", "c.kind = 'C'"], tau=10)


class TestMultiPatternMatcher:
    def test_patterns_matched_independently(self):
        multi = MultiPatternMatcher({"ab": AB, "ac": AC})
        multi.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        results = multi.close()
        assert set(results) == {"ab", "ac"}
        assert len(multi.matches("ab")) == 1
        assert len(multi.matches("ac")) == 1

    def test_patterns_may_share_events(self):
        """The single A event participates in both patterns' matches."""
        multi = MultiPatternMatcher({"ab": AB, "ac": AC})
        multi.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        multi.close()
        ab_events = eids(multi.matches("ab")[0])
        ac_events = eids(multi.matches("ac")[0])
        assert "a1" in ab_events and "a1" in ac_events

    def test_auto_naming(self):
        multi = MultiPatternMatcher([AB, AC])
        assert multi.pattern_names == ["p0", "p1"]

    def test_callback_carries_pattern_name(self):
        multi = MultiPatternMatcher({"ab": AB})
        seen = []
        multi.on_match(lambda name, sub: seen.append(name))
        multi.push_many([ev(1, "A"), ev(2, "B")])
        multi.close()
        assert seen == ["ab"]

    def test_same_results_as_individual_matchers(self, q1, figure1):
        singleton = SESPattern(
            sets=[["c", "p", "d"], ["b"]],
            conditions=["c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'",
                        "c.ID = p.ID", "c.ID = d.ID", "d.ID = b.ID"],
            tau=264,
        )
        multi = MultiPatternMatcher({"q1": q1, "singleton": singleton})
        multi.push_many(from_relation(figure1))
        multi.close()
        assert ([frozenset(m.bindings) for m in multi.matches("q1")]
                == [frozenset(m.bindings) for m in match(q1, figure1).matches])
        assert ([frozenset(m.bindings) for m in multi.matches("singleton")]
                == [frozenset(m.bindings)
                    for m in match(singleton, figure1).matches])

    def test_all_matches(self):
        multi = MultiPatternMatcher({"ab": AB, "ac": AC})
        multi.push_many([ev(1, "A"), ev(2, "B")])
        multi.close()
        everything = multi.all_matches()
        assert len(everything["ab"]) == 1
        assert everything["ac"] == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPatternMatcher({})
        with pytest.raises(TypeError):
            MultiPatternMatcher({"x": "not a pattern"})

    def test_active_instances_aggregated(self):
        multi = MultiPatternMatcher({"ab": AB, "ac": AC})
        multi.push(ev(1, "A"))
        assert multi.active_instances == 2


class TestPartitionedContinuousMatcher:
    def test_matches_equal_unpartitioned_on_figure1(self, q1, figure1):
        partitioned = PartitionedContinuousMatcher(q1)
        partitioned.push_many(from_relation(figure1))
        partitioned.close()
        assert ([eids(m) for m in partitioned.matches]
                == [eids(m) for m in match(q1, figure1).matches])

    def test_partitions_created_lazily(self, q1, figure1):
        partitioned = PartitionedContinuousMatcher(q1)
        events = list(figure1)
        partitioned.push(events[0])
        assert partitioned.partitions == [1]
        partitioned.push_many(events[1:])
        assert sorted(partitioned.partitions) == [1, 2]

    def test_rejects_unpartitionable_pattern(self):
        with pytest.raises(ValueError):
            PartitionedContinuousMatcher(AB)

    def test_explicit_attribute(self, figure1):
        pattern = SESPattern(
            sets=[["c"], ["b"]],
            conditions=["c.L = 'C'", "b.L = 'B'", "c.ID = b.ID"],
            tau=264,
        )
        partitioned = PartitionedContinuousMatcher(pattern, attribute="ID")
        partitioned.push_many(from_relation(figure1))
        partitioned.close()
        assert len(partitioned.matches) == 2

    def test_callback_carries_partition_key(self, q1, figure1):
        partitioned = PartitionedContinuousMatcher(q1)
        seen = []
        partitioned.on_match(lambda key, sub: seen.append(key))
        partitioned.push_many(from_relation(figure1))
        partitioned.close()
        assert sorted(seen) == [1, 2]

    def test_collect_drops_idle_partitions(self, q1):
        partitioned = PartitionedContinuousMatcher(q1)
        partitioned.push(ev(0, "C", ID=1, L="C", V=1.0, U="mg"))
        partitioned.push(ev(1, "C", ID=2, L="C", V=1.0, U="mg"))
        assert len(partitioned.partitions) == 2
        # Nothing collectable yet (instances alive, window open).
        assert partitioned.collect(now=2) == 0
        # Far in the future: expire instances by pushing late events.
        partitioned.push(ev(1000, "X", ID=1, L="X", V=0.0, U=""))
        partitioned.push(ev(1000, "X", ID=2, L="X", V=0.0, U=""))
        dropped = partitioned.collect(now=5000)
        assert dropped == 2
        assert partitioned.partitions == []

    def test_superset_recall_on_synthetic(self):
        from repro.data import pattern_p3
        relation = base_dataset(patients=4, cycles=2)
        plain = match(pattern_p3(), relation, selection="accepted")
        partitioned = PartitionedContinuousMatcher(pattern_p3(),
                                                   suppress_overlaps=False)
        partitioned.push_many(from_relation(relation))
        partitioned.close()
        # Partitioned streaming reports at least as many distinct matches.
        assert len(partitioned.matches) >= len(plain.matches)
