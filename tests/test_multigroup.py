"""Tests for patterns with several group variables (Theorem 3, k > 1).

The evaluation never runs a multi-group pattern, but the complexity
analysis covers it (case 3 with k > 1) and the construction/execution
machinery must handle multiple loops per state.
"""

import pytest

from repro import EventRelation, SESPattern, match
from repro.automaton.builder import build_automaton
from repro.baseline import naive_match
from repro.complexity import (ComplexityCase, classify_set,
                              pattern_instance_bound)

from conftest import eids, ev


@pytest.fixture
def two_groups():
    """<{p+, q+}, {b}> with distinguishable types."""
    return SESPattern(
        sets=[["p+", "q+"], ["b"]],
        conditions=["p.kind = 'P'", "q.kind = 'Q'", "b.kind = 'B'"],
        tau=50,
    )


@pytest.fixture
def same_type_groups():
    """<{p+, q+}> where both groups match the same events (k=2 worst case)."""
    return SESPattern(
        sets=[["p+", "q+"]],
        conditions=["p.kind = 'M'", "q.kind = 'M'"],
        tau=50,
    )


class TestConstruction:
    def test_loops_for_both_groups(self, two_groups):
        automaton = build_automaton(two_groups)
        p = two_groups.variable("p")
        q = two_groups.variable("q")
        loop_vars_at_pq = {t.variable
                           for t in automaton.loops_at(frozenset({p, q}))}
        assert loop_vars_at_pq == {p, q}

    def test_classified_as_multi_group(self, same_type_groups):
        assert (classify_set(same_type_groups, 0)
                is ComplexityCase.MULTI_GROUP)

    def test_exclusive_groups_are_case1(self, two_groups):
        assert (classify_set(two_groups, 0)
                is ComplexityCase.MUTUALLY_EXCLUSIVE)


class TestMatching:
    def test_interleaved_groups(self, two_groups):
        events = [ev(1, "P"), ev(2, "Q"), ev(3, "P"), ev(4, "Q"), ev(5, "B")]
        result = match(two_groups, events)
        assert [eids(m) for m in result] == [
            frozenset({"p1", "q2", "p3", "q4", "b5"})
        ]

    def test_each_group_needs_at_least_one(self, two_groups):
        only_p = [ev(1, "P"), ev(2, "P"), ev(3, "B")]
        assert match(two_groups, only_p).matches == []

    def test_greedy_collects_both_groups(self, two_groups):
        events = [ev(1, "Q"), ev(2, "P"), ev(3, "Q"), ev(4, "B")]
        result = match(two_groups, events)
        assert len(result) == 1
        substitution = result.matches[0]
        q = two_groups.variable("q")
        assert len(substitution.events_of(q)) == 2

    def test_same_type_groups_split_events(self, same_type_groups):
        events = [ev(1, "M"), ev(2, "M")]
        result = match(same_type_groups, events, selection="all-starts")
        # Both role assignments are reported (x and y swapped).
        assert len(result) == 2
        for substitution in result:
            assert len(substitution) == 2

    def test_agrees_with_oracle(self, two_groups):
        events = [ev(1, "P"), ev(2, "Q"), ev(3, "X"), ev(4, "P"), ev(5, "B")]
        assert (match(two_groups, events).matches
                == naive_match(two_groups, events))

    def test_exhaustive_agrees_with_oracle_same_type(self, same_type_groups):
        events = [ev(1, "M"), ev(2, "M"), ev(3, "M")]
        assert (match(same_type_groups, events,
                      consume_mode="exhaustive").matches
                == naive_match(same_type_groups, events))


class TestTheorem3K2:
    def test_bound_holds_empirically(self, same_type_groups):
        events = EventRelation([ev(t, "M") for t in range(8)])
        result = match(same_type_groups, events, use_filter=False,
                       selection="accepted")
        window = events.window_size(same_type_groups.tau)
        bound = pattern_instance_bound(same_type_groups, window)
        assert result.stats.max_simultaneous_instances <= bound

    def test_multi_group_grows_faster_than_single_group(self):
        single = SESPattern(sets=[["x", "p+"]],
                            conditions=["x.kind = 'M'", "p.kind = 'M'"],
                            tau=50)
        double = SESPattern(sets=[["q+", "p+"]],
                            conditions=["q.kind = 'M'", "p.kind = 'M'"],
                            tau=50)
        events = [ev(t, "M") for t in range(10)]
        single_result = match(single, events, use_filter=False,
                              selection="accepted")
        double_result = match(double, events, use_filter=False,
                              selection="accepted")
        assert (double_result.stats.max_simultaneous_instances
                > single_result.stats.max_simultaneous_instances)


class TestMatchResultHelpers:
    def test_to_rows(self, two_groups):
        events = [ev(1, "P"), ev(2, "Q"), ev(3, "B")]
        rows = match(two_groups, events).to_rows()
        assert rows == [{
            "start": 1, "end": 3,
            "p+": ["p1"], "q+": ["q2"], "b": ["b3"],
        }]

    def test_repr(self, two_groups):
        result = match(two_groups, [ev(1, "P"), ev(2, "Q"), ev(3, "B")])
        assert "1 matches" in repr(result)
