"""Fault-tolerance tests: supervised shard restart with checkpoint/
replay, poison-event quarantine, runtime resource guards, the chaos
harness, and checkpoint/restore determinism.

The chaos scenarios use integer partition keys: ``hash(int) == int`` is
stable across interpreters, so ``key % workers`` tells the test exactly
which shard an event lands on — fault plans can target specific
per-shard sequence numbers deterministically.
"""

import json
import multiprocessing
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import (DeadLetterQueue, Event, FaultPlan, GuardConfig,
                   ResourceExhausted, RestartPolicy, SESPattern, Supervisor,
                   WorkerCrashed)
from repro.obs import Observability
from repro.parallel import ParallelPartitionedMatcher, ShardedStreamMatcher
from repro.resilience import EventLog
from repro.resilience.chaos import InjectedFault
from repro.stream import PartitionedContinuousMatcher

from conftest import bindings

#: Every variable equi-joins on ID (sound to shard on ID).
JOINED = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)

#: k = 2 group variables: the Section 4.4 exponential-instance regime.
GROUPY = SESPattern(
    sets=[["p+", "q+"]],
    conditions=["p.kind = 'M'", "q.kind = 'M'", "p.ID = q.ID"],
    tau=100,
)

def stream_events(n_keys=6, reps=1):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return events


def match_set(substitutions):
    return {bindings(s) for s in substitutions}


def reference_matches(events, pattern=JOINED):
    matcher = PartitionedContinuousMatcher(pattern, partition_by="ID")
    reported = matcher.push_many(events)
    reported.extend(matcher.close())
    return reported


def supervised_matcher(faults=None, workers=2, checkpoint_every=4,
                       quarantine_after=2, observability=None, guard=None,
                       max_restarts=5):
    supervisor = Supervisor(
        restart=RestartPolicy(backoff=0.01, max_backoff=0.05,
                              max_restarts=max_restarts),
        checkpoint_every=checkpoint_every,
        quarantine_after=quarantine_after, faults=faults,
        dead_letter=DeadLetterQueue())
    matcher = ShardedStreamMatcher(
        JOINED, workers=workers, partition_by="ID", supervisor=supervisor,
        observability=observability, guard=guard)
    return matcher, supervisor


# ----------------------------------------------------------------------
# Chaos: crash recovery converges to the fault-free match set
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_kill_each_shard_once_converges(self):
        events = stream_events(n_keys=6, reps=2)
        expected = match_set(reference_matches(events))
        faults = FaultPlan().kill(0, 4).kill(1, 3)
        matcher, supervisor = supervised_matcher(faults)
        with matcher:
            matcher.push_many(events)
        assert supervisor.restarts_total == 2
        assert match_set(matcher.matches) == expected
        # Exactly-once: replay must not duplicate a delivered match.
        assert len(matcher.matches) == len(expected)

    def test_hard_kill_recovers_via_shared_seq_cell(self):
        # os._exit gives the worker no chance to report; the supervisor
        # attributes the crash via the shared in-flight sequence cell.
        events = stream_events(n_keys=6, reps=2)
        expected = match_set(reference_matches(events))
        faults = FaultPlan().kill(0, 5, mode="exit")
        matcher, supervisor = supervised_matcher(faults)
        with matcher:
            matcher.push_many(events)
        assert supervisor.restarts_total == 1
        assert match_set(matcher.matches) == expected
        assert len(matcher.matches) == len(expected)

    def test_crash_during_flush_barrier(self):
        events = stream_events(n_keys=4)
        expected = match_set(reference_matches(events))
        # Shard 0 sees keys 0 and 2 -> 6 events; die on the last one,
        # which is still in flight when flush() raises the barrier.
        faults = FaultPlan().kill(0, 6)
        matcher, supervisor = supervised_matcher(faults)
        matcher.push_many(events)
        matcher.flush()  # must recover, re-issue the barrier, and return
        assert supervisor.restarts_total == 1
        assert sum(matcher.events_routed) == len(events)
        matcher.close()
        assert match_set(matcher.matches) == expected

    def test_crash_between_checkpoints_replays_the_wal(self):
        events = stream_events(n_keys=6, reps=3)
        expected = match_set(reference_matches(events))
        # checkpoint_every=2 -> the kill at seq 7 lands one event after
        # the seq-6 checkpoint; recovery restores and replays the tail.
        faults = FaultPlan().kill(0, 7)
        matcher, supervisor = supervised_matcher(faults, checkpoint_every=2)
        with matcher:
            matcher.push_many(events)
        report = supervisor.report()
        assert report["shards"][0]["checkpoint_seq"] >= 2
        assert match_set(matcher.matches) == expected
        assert len(matcher.matches) == len(expected)

    def test_restart_budget_exhausted_fails_hard(self):
        # Two kills but a budget of one: the second crash must abort.
        faults = FaultPlan().kill(0, 2).kill(0, 3)
        matcher, supervisor = supervised_matcher(faults, max_restarts=1)
        with pytest.raises(WorkerCrashed, match="restart budget"):
            matcher.push_many(stream_events(n_keys=6, reps=2))
            matcher.close()
        assert supervisor.failed is True
        assert matcher.health()["status"] == "failed"
        assert multiprocessing.active_children() == []

    def test_restart_metrics_published(self):
        obs = Observability()
        faults = FaultPlan().kill(0, 3)
        matcher, supervisor = supervised_matcher(faults, observability=obs)
        with matcher:
            matcher.push_many(stream_events(n_keys=4))
        snapshot = obs.snapshot()
        assert snapshot["ses_restarts_total"]["value"] == 1
        assert snapshot["ses_restart_backoff_seconds"]["value"] > 0


# ----------------------------------------------------------------------
# Quarantine: poison events go to the dead-letter queue
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_double_crash_quarantines_poison_event(self, tmp_path):
        obs = Observability()
        events = stream_events(n_keys=6)
        # Corruption is deterministic in the event, so the replay crashes
        # on it again: crash -> restart -> crash -> quarantine.
        faults = FaultPlan().corrupt(0, 2)
        matcher, supervisor = supervised_matcher(faults, observability=obs)
        with matcher:
            matcher.push_many(events)
        dead_letter = supervisor.dead_letter
        assert len(dead_letter) == 1
        assert supervisor.restarts_total == 2
        entry = dead_letter.entries[0]
        assert entry.shard == 0 and entry.seq == 2
        assert entry.crashes == 2
        assert "InjectedFault" in entry.reason
        # The crash evidence rides along: a flight dump ending in the
        # crash marker for the poisoned event.
        assert entry.flight_dump is not None
        assert entry.flight_dump["steps"][-1]["kind"] == "crash"
        # The poisoned B event kills exactly one key's match; every
        # other key still matches.
        expected = match_set(reference_matches(
            [e for e in events if e.eid != entry.event.eid]))
        assert match_set(matcher.matches) == expected
        assert obs.snapshot()["ses_quarantined_events"]["value"] == 1

        path = tmp_path / "dead.jsonl"
        assert dead_letter.write_jsonl(path) == 1
        record = json.loads(path.read_text().splitlines()[0])
        assert record["shard"] == 0 and record["seq"] == 2
        assert record["crashes"] == 2
        # The parent's WAL holds the event as *ingested* — corruption
        # happened worker-side — so the dead-letter line is re-ingestable.
        assert record["event"]["attrs"]["kind"] == "B"
        assert record["event"]["eid"] == entry.event.eid

    def test_quarantined_event_skipped_on_later_replays(self):
        # After the quarantine, a *further* kill must replay the WAL
        # without tripping over the parked event again.
        events = stream_events(n_keys=6, reps=2)
        faults = FaultPlan().corrupt(0, 2).kill(0, 9)
        matcher, supervisor = supervised_matcher(faults)
        with matcher:
            matcher.push_many(events)
        assert len(supervisor.dead_letter) == 1
        assert supervisor.restarts_total == 3  # 2 for poison, 1 for kill
        assert matcher.health()["status"] == "degraded"


# ----------------------------------------------------------------------
# The supervisor's bookkeeping primitives
# ----------------------------------------------------------------------
class TestSupervisorPrimitives:
    def test_event_log_append_trim_find(self):
        log = EventLog()
        for seq in range(1, 8):
            log.append(seq, ("wire", seq))
        assert len(log) == 7
        assert log.find(3) == ("wire", 3)
        log.trim_through(4)
        assert len(log) == 3
        assert log.find(3) is None
        assert [seq for seq, _ in log.entries_after(5)] == [6, 7]

    def test_should_deliver_is_a_high_water_mark(self):
        supervisor = Supervisor()

        class FakeMatcher:
            n_shards = 1
            obs = None

        supervisor.bind(FakeMatcher())
        assert supervisor.should_deliver(0, 1) is True
        assert supervisor.should_deliver(0, 2) is True
        assert supervisor.should_deliver(0, 2) is False  # replayed
        assert supervisor.should_deliver(0, 1) is False  # replayed
        assert supervisor.should_deliver(0, 3) is True

    def test_restart_policy_delay_deterministic_and_bounded(self):
        policy = RestartPolicy(backoff=0.1, multiplier=2.0, max_backoff=0.5,
                               jitter=0.1, seed=42)
        delays = [policy.delay(0, attempt) for attempt in range(1, 6)]
        assert delays == [policy.delay(0, a) for a in range(1, 6)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(0.1 * 2 ** (attempt - 1), 0.5)
            assert base * 0.9 <= delay <= base * 1.1
        # Jitter de-synchronises shards.
        assert policy.delay(0, 1) != policy.delay(1, 1)

    def test_restart_policy_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            Supervisor(checkpoint_every=0)
        with pytest.raises(ValueError):
            Supervisor(quarantine_after=0)

    def test_supervisor_binds_exactly_once(self):
        supervisor = Supervisor()

        class FakeMatcher:
            n_shards = 1
            obs = None

        supervisor.bind(FakeMatcher())
        with pytest.raises(RuntimeError, match="exactly one"):
            supervisor.bind(FakeMatcher())

    def test_fault_plan_is_immutable_and_per_shard(self):
        plan = FaultPlan().kill(0, 3).corrupt(1, 2).delay(0, 1, 0.5)
        more = plan.kill(0, 9)
        assert len(plan.for_shard(0)) == 2  # fluent API copies
        assert len(more.for_shard(0)) == 3
        kinds = [fault[1] for fault in plan.for_shard(0)]
        assert kinds == ["kill", "delay"]
        assert plan.for_shard(1) == [(2, "corrupt")]
        assert plan.for_shard(7) == []


# ----------------------------------------------------------------------
# Resource guards
# ----------------------------------------------------------------------
def feed_m_events(executor, count, key=0):
    for ts in range(1, count + 1):
        executor.feed(Event(ts=ts, eid=f"m{ts}", kind="M", ID=key))


class TestResourceGuards:
    def test_raise_policy_trips_deterministically(self):
        # k = 2 group variables blow up combinatorially (Section 4.4);
        # the ceiling must fire long before the population approaches
        # the theoretical k^(W·|V1|) bound.
        plan = repro.compile(GROUPY)

        def run_until_trip():
            executor = plan.executor(
                guard=GuardConfig(max_instances=64))
            with pytest.raises(ResourceExhausted) as excinfo:
                feed_m_events(executor, 64)
            return executor.stats.events_read, excinfo.value

        first_read, error = run_until_trip()
        second_read, _ = run_until_trip()
        assert first_read == second_read  # same input -> same trip point
        assert error.resource == "instances"
        assert error.limit == 64
        assert error.observed > 64

    def test_raise_policy_pickles(self):
        error = ResourceExhausted("instances", 10, 14)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.resource == "instances"
        assert clone.limit == 10 and clone.observed == 14

    def test_shed_policy_keeps_population_bounded(self):
        executor = repro.compile(GROUPY).executor(
            guard=GuardConfig(max_instances=16, policy="shed"))
        feed_m_events(executor, 40)
        assert executor.active_instances <= 16
        stats = executor.guard.stats()
        assert stats["shed"] > 0 and stats["trips"] > 0

    def test_degrade_policy_bounds_group_arity(self):
        executor = repro.compile(GROUPY).executor(
            guard=GuardConfig(max_instances=16, policy="degrade",
                              degrade_arity=2))
        feed_m_events(executor, 40)
        assert executor.active_instances <= 16
        assert executor.guard.degraded_total > 0
        for instance in executor._omega:
            for variable in instance.state:
                if variable.is_group:
                    assert len(instance.buffer.events_of(variable)) <= 16

    def test_guard_counters_reach_the_registry(self):
        obs = Observability()
        executor = repro.compile(GROUPY).executor(
            guard=GuardConfig(max_instances=16, policy="shed"),
            observability=obs)
        feed_m_events(executor, 40)
        snapshot = obs.snapshot()
        assert snapshot["ses_shed_instances"]["value"] > 0
        assert snapshot["ses_guard_trips_total"]["value"] > 0

    def test_from_bounds_caps_at_the_rss_budget(self):
        config = GuardConfig.from_bounds(GROUPY, window=20,
                                         max_rss_bytes=512 * 1000)
        # The theoretical k>1 bound is astronomical; the RSS budget wins.
        assert config.max_instances == 1000
        assert config.max_buffer_bytes == 512 * 1000
        tight = GuardConfig.from_bounds(JOINED, window=3,
                                        max_rss_bytes=512 * 10**9)
        from repro.complexity.bounds import pattern_instance_bound
        assert tight.max_instances == pattern_instance_bound(JOINED, 3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="no ceiling"):
            GuardConfig()
        with pytest.raises(ValueError, match="policy"):
            GuardConfig(max_instances=10, policy="panic")
        with pytest.raises(ValueError):
            GuardConfig(max_instances=0)
        with pytest.raises(ValueError):
            GuardConfig(max_event_seconds=0.0)

    def test_guarded_stream_matcher_sheds_and_reports(self):
        obs = Observability()
        events = [Event(ts=ts, eid=f"m{ts}", kind="M", ID=ts % 2)
                  for ts in range(1, 31)]
        matcher = ShardedStreamMatcher(
            GROUPY, workers=2, partition_by="ID", observability=obs,
            guard=GuardConfig(max_instances=8, policy="shed"))
        with matcher:
            matcher.push_many(events)
            matcher.flush()
        report = matcher.health()
        assert report["guard"]["shed"] > 0
        assert obs.snapshot()["ses_shed_instances"]["value"] > 0

    def test_disabled_guard_overhead(self, capsys):
        """The guard hook must be free when no guard is configured.

        ``feed`` dispatches on a single precomputed ``is None`` check —
        the same idiom as the obs/flight hooks — so a guard-less
        executor must run within 5 % of one driven through ``_feed``
        directly (min-of-rounds to shrug off scheduler noise).
        """
        from repro.data import generate_chemo
        from repro.data import experiment1_pattern
        relation = list(generate_chemo(patients=25, cycles=4, seed=7))
        plan = repro.compile(experiment1_pattern(4, exclusive=True))

        # Structural half of the claim: with no guard the public entry
        # point *is* the unguarded implementation — no wrapper frame.
        probe = plan.executor()
        assert probe.guard is None
        assert probe.feed == probe._feed

        def run_direct():
            executor = plan.executor(selection="accepted")
            start = time.perf_counter()
            for event in relation:
                executor._feed(event)
            executor.finish()
            return time.perf_counter() - start

        def run_wrapped():
            executor = plan.executor(selection="accepted")
            assert executor.guard is None
            start = time.perf_counter()
            for event in relation:
                executor.feed(event)
            executor.finish()
            return time.perf_counter() - start

        direct = wrapped = float("inf")
        for _ in range(9):  # interleave; min cancels thermal/cache drift
            direct = min(direct, run_direct())
            wrapped = min(wrapped, run_wrapped())
        factor = wrapped / direct
        with capsys.disabled():
            print(f"\ndisabled-guard overhead: direct {direct:.4f}s, "
                  f"wrapped {wrapped:.4f}s ({factor:.3f}x)")
        assert factor < 1.05


# ----------------------------------------------------------------------
# Chaos harness unit behaviour
# ----------------------------------------------------------------------
class TestChaosHarness:
    def test_corrupt_spares_the_partition_attribute(self):
        from repro.resilience.chaos import FaultInjector
        injector = FaultInjector([(1, "corrupt")], spare_attribute="ID")
        event = injector.before(1, Event(ts=5, eid="x", kind="A", ID=3))
        assert event.get("ID") == 3  # still routable
        with pytest.raises(InjectedFault):
            event.get("kind") == "A"

    def test_delay_fault_sleeps(self):
        from repro.resilience.chaos import FaultInjector
        injector = FaultInjector([(1, "delay", 0.05)], spare_attribute="ID")
        start = time.perf_counter()
        injector.before(1, Event(ts=1, eid="x", kind="A", ID=0))
        assert time.perf_counter() - start >= 0.05

    def test_kill_raise_fault(self):
        from repro.resilience.chaos import FaultInjector
        injector = FaultInjector([(2, "kill", "raise")], spare_attribute="ID")
        injector.before(1, Event(ts=1, eid="x", kind="A", ID=0))
        with pytest.raises(InjectedFault):
            injector.before(2, Event(ts=2, eid="y", kind="A", ID=0))


# ----------------------------------------------------------------------
# Checkpoint / restore determinism (Hypothesis)
# ----------------------------------------------------------------------
@st.composite
def event_streams(draw):
    length = draw(st.integers(min_value=3, max_value=18))
    ts = 0
    events = []
    for index in range(length):
        ts += draw(st.integers(min_value=1, max_value=5))
        kind = draw(st.sampled_from("ABC"))
        key = draw(st.integers(min_value=0, max_value=2))
        events.append(Event(ts=ts, eid=f"{kind}{index}", kind=kind, ID=key))
    return events


class TestCheckpointRestore:
    @given(events=event_streams(),
           cut=st.integers(min_value=0, max_value=18),
           selection=st.sampled_from(["paper", "accepted", "all-starts"]),
           consume=st.sampled_from(["greedy", "exhaustive", "contiguous"]))
    @settings(max_examples=60, deadline=None)
    def test_resume_is_byte_identical(self, events, cut, selection, consume):
        """checkpoint -> restore -> resume == the uninterrupted run.

        Execution is deterministic in the event sequence, so a restored
        executor must produce the same matches *and* the same serialised
        final state as one that never stopped — the invariant the
        supervisor's replay correctness rests on.
        """
        cut = min(cut, len(events))
        plan = repro.compile(JOINED)

        def fresh():
            return plan.executor(selection=selection, consume=consume)

        straight = fresh()
        expected = []
        for event in events:
            expected.extend(straight.feed(event))
        expected.extend(straight.finish())

        first = fresh()
        resumed_out = []
        for event in events[:cut]:
            resumed_out.extend(first.feed(event))
        payload = pickle.dumps(first.state_dict(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        resumed = fresh()
        resumed.load_state(pickle.loads(payload))
        for event in events[cut:]:
            resumed_out.extend(resumed.feed(event))
        resumed_out.extend(resumed.finish())

        assert ([bindings(s) for s in resumed_out]
                == [bindings(s) for s in expected])
        # The surviving execution state must agree too (frozenset pickle
        # bytes are order-sensitive, so compare semantically).
        final_resumed = resumed.state_dict()
        final_straight = straight.state_dict()
        assert final_resumed["omega"] == final_straight["omega"]
        assert final_resumed["accepted"] == final_straight["accepted"]
        assert final_resumed["last_ts"] == final_straight["last_ts"]

    def test_continuous_matcher_roundtrip_preserves_suppression(self):
        # The used-event set must survive the trip, or a restored shard
        # would re-report matches overlapping pre-crash ones.
        events = stream_events(n_keys=3)
        plan = repro.compile(JOINED)
        source = PartitionedContinuousMatcher(plan, partition_by="ID")
        reported = source.push_many(events[:6])
        state = pickle.dumps(source.state_dict())
        clone = PartitionedContinuousMatcher(plan, partition_by="ID")
        clone.load_state(pickle.loads(state))
        out = clone.push_many(events[6:]) + clone.close()
        tail = PartitionedContinuousMatcher(plan, partition_by="ID")
        expected = tail.push_many(events) + tail.close()
        assert match_set(reported + out) == match_set(expected)
        assert len(reported) + len(out) == len(expected)


# ----------------------------------------------------------------------
# Satellite fixes
# ----------------------------------------------------------------------
class TestClosePartialResults:
    def test_close_attaches_matches_drained_before_the_crash(self):
        # Shard 0 dies on its last event after a delay, so shard 1's
        # close ack (with its matches) is drained first; the crash must
        # not discard that completed work.
        events = stream_events(n_keys=4)
        faults = FaultPlan().delay(0, 5, 0.75).kill(0, 6, mode="raise")
        matcher = ShardedStreamMatcher(JOINED, workers=2, partition_by="ID",
                                       faults=faults)
        matcher.push_many(events)
        with pytest.raises(WorkerCrashed) as excinfo:
            matcher.close()
        partial = excinfo.value.partial_matches
        assert match_set(partial) == match_set(reference_matches(
            [e for e in events if e.get("ID") % 2 == 1]))
        assert multiprocessing.active_children() == []


class SlowEq:
    """An attribute value whose comparison blocks a pool worker."""

    __hash__ = object.__hash__

    def __eq__(self, other):
        time.sleep(8)
        return False

    def __reduce__(self):
        return (SlowEq, ())


class TestPoolInterrupt:
    def test_keyboard_interrupt_terminates_busy_workers(self, monkeypatch):
        """Ctrl-C between submit and first result must not leave zombie
        pool processes behind (shutdown would block on running chunks)."""
        from concurrent.futures import Future

        def interrupted(self, timeout=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(Future, "result", interrupted)
        events = [Event(ts=ts, eid=f"s{ts}", kind=SlowEq(), ID=ts)
                  for ts in range(1, 5)]
        matcher = ParallelPartitionedMatcher(JOINED, workers=2,
                                             partition_by="ID")
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            matcher.run(events)
        elapsed = time.monotonic() - start
        assert elapsed < 6  # did not wait out the 8 s sleeps
        assert multiprocessing.active_children() == []


class TestCLI:
    Q1_TEXT = ("PATTERN PERMUTE(c, p+, d) THEN b "
               "WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B' "
               "AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID "
               "WITHIN 264")

    @pytest.fixture
    def figure1_csv(self, tmp_path, figure1):
        from repro.storage import save_relation
        path = tmp_path / "events.csv"
        save_relation(figure1, path)
        return path

    def test_match_dead_letter_clean_run(self, figure1_csv, tmp_path,
                                         capsys):
        from repro.cli import main
        dead = tmp_path / "dead.jsonl"
        code = main(["match", "--data", str(figure1_csv),
                     "--query", self.Q1_TEXT,
                     "--dead-letter", str(dead)])
        assert code == 0
        # Streaming semantics: accepted buffers with suppression.
        assert "match(es) in 14 events" in capsys.readouterr().out
        # The file is always written; empty means the run was clean.
        assert dead.read_text() == ""

    def test_guard_flags_require_single_worker_or_supervision(
            self, figure1_csv, capsys):
        from repro.cli import main
        code = main(["match", "--data", str(figure1_csv),
                     "--query", self.Q1_TEXT, "--workers", "2",
                     "--max-instances", "100"])
        assert code == 1
        assert "supervised" in capsys.readouterr().err

    def test_guard_trip_exits_4(self, figure1_csv, capsys):
        from repro.cli import main
        code = main(["match", "--data", str(figure1_csv),
                     "--query", self.Q1_TEXT, "--max-instances", "1",
                     "--guard-policy", "raise"])
        assert code == 4
        assert "resource guard" in capsys.readouterr().err

    def test_serve_once_supervised(self, figure1_csv, tmp_path, capsys):
        from repro.cli import main
        dead = tmp_path / "dead.jsonl"
        code = main(["serve", "--data", str(figure1_csv),
                     "--query", self.Q1_TEXT, "--once",
                     "--listen", "127.0.0.1:0", "--supervise",
                     "--dead-letter", str(dead)])
        out = capsys.readouterr().out
        assert code == 0
        assert "done:" in out
        assert dead.read_text() == ""


class TestDegradedHealth:
    def test_degraded_after_supervised_restart(self):
        faults = FaultPlan().kill(0, 2)
        matcher, supervisor = supervised_matcher(faults)
        with matcher:
            matcher.push_many(stream_events(n_keys=4))
            matcher.flush()
            report = matcher.health()
            assert report["status"] == "degraded"
            assert report["supervised"] is True
            assert report["supervisor"]["restarts_total"] == 1
            assert report["shards"][0]["restarts"] == 1

    def test_healthz_degraded_answers_200_failed_answers_503(self):
        import urllib.error
        import urllib.request

        from repro.obs import ObsServer

        reports = [{"status": "degraded", "detail": "restarts in budget"},
                   {"status": "failed"}]

        def health():
            report = reports.pop(0)
            return report["status"] != "failed", report

        server = ObsServer(host="127.0.0.1", port=0, snapshot=dict,
                           health=health).start()
        try:
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=5) as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "degraded"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/healthz", timeout=5)
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "failed"
        finally:
            server.stop()


class TestDeadLetterDurability:
    """Line-atomic dead-letter appends and the REPRO_DLQ_MAX_BYTES cap."""

    @staticmethod
    def _entry(i):
        from repro.resilience import QuarantinedEvent
        return QuarantinedEvent(
            shard=0, seq=i, reason="poison",
            event=Event(ts=i, attrs={"L": "X"}, eid=f"p{i}"), crashes=2)

    def test_atomic_append_accumulates_lines(self, tmp_path):
        from repro.resilience import atomic_append_jsonl
        path = tmp_path / "dlq.jsonl"
        for i in range(5):
            atomic_append_jsonl(path, {"seq": i})
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]

    def test_append_rotates_at_the_byte_cap(self, tmp_path):
        from repro.resilience import atomic_append_jsonl, rotated_path
        path = tmp_path / "dlq.jsonl"
        line_size = len(json.dumps({"seq": 0}) + "\n")
        cap = 3 * line_size  # room for three lines per generation
        for i in range(8):
            atomic_append_jsonl(path, {"seq": i}, max_bytes=cap)
        current = [json.loads(line)["seq"]
                   for line in path.read_text().splitlines()]
        rotated = [json.loads(line)["seq"]
                   for line in rotated_path(path).read_text().splitlines()]
        # .1 then current reads the most recent history in order, and
        # the pair never exceeds ~2x the cap
        assert rotated + current == list(range(8))[-len(rotated
                                                       + current):]
        assert path.stat().st_size <= cap
        assert rotated_path(path).stat().st_size <= cap

    def test_env_knob_enables_rotation(self, tmp_path, monkeypatch):
        from repro.resilience import (DLQ_MAX_BYTES_ENV,
                                      atomic_append_jsonl, rotated_path)
        path = tmp_path / "dlq.jsonl"
        line_size = len(json.dumps({"seq": 0}) + "\n")
        monkeypatch.setenv(DLQ_MAX_BYTES_ENV, str(2 * line_size))
        for i in range(5):
            atomic_append_jsonl(path, {"seq": i})
        assert rotated_path(path).exists()

    def test_env_knob_rejects_garbage(self, tmp_path, monkeypatch):
        from repro.resilience import DLQ_MAX_BYTES_ENV, atomic_append_jsonl
        monkeypatch.setenv(DLQ_MAX_BYTES_ENV, "lots")
        with pytest.raises(ValueError, match="integer byte count"):
            atomic_append_jsonl(tmp_path / "dlq.jsonl", {"seq": 0})

    def test_snapshot_truncates_oldest_with_marker(self, tmp_path):
        queue = DeadLetterQueue()
        for i in range(20):
            queue.add(self._entry(i))
        path = tmp_path / "dlq.jsonl"
        full_size = sum(
            len(json.dumps(e.to_json(), default=str) + "\n")
            for e in queue)
        assert queue.write_jsonl(path, max_bytes=full_size // 2) == 20
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert "truncated" in lines[0] and lines[0]["truncated"] > 0
        kept = [r["seq"] for r in lines[1:]]
        # the newest entries survive, in order
        assert kept == list(range(20))[-len(kept):]
        assert path.stat().st_size <= full_size // 2 + 200

    def test_snapshot_unbounded_keeps_everything(self, tmp_path):
        queue = DeadLetterQueue()
        for i in range(6):
            queue.add(self._entry(i))
        path = tmp_path / "dlq.jsonl"
        assert queue.write_jsonl(path) == 6
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [r["seq"] for r in lines] == list(range(6))

    def test_incremental_append_spelling(self, tmp_path):
        queue = DeadLetterQueue()
        path = tmp_path / "dlq.jsonl"
        for i in range(3):
            queue.append_jsonl(path, self._entry(i))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [r["seq"] for r in lines] == [0, 1, 2]
