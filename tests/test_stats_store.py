"""Tests for the persistent statistics store and the statistics-informed
condition ordering it feeds (repro.explain.stats / repro.explain.order /
the planner's ``condition_order``)."""

import json
import multiprocessing

import pytest

from repro import Event, EventRelation, SESPattern, match
from repro.explain import (clear_stats_store, explain_analyze, ordered_plan,
                           stats_store)
from repro.explain.order import condition_order_hint, rank_conditions
from repro.explain.stats import (STATS_DISABLE_ENV, STATS_FORMAT_VERSION,
                                 STATS_PATH_ENV, StatsStore, set_stats_path,
                                 stats_key)
from repro.plan.cache import as_plan

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

PATTERN = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID"],
    tau=50,
)


def make_relation(n_keys=4, reps=2):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return EventRelation(events)


@pytest.fixture(autouse=True)
def fresh_stats(monkeypatch):
    monkeypatch.delenv(STATS_PATH_ENV, raising=False)
    monkeypatch.delenv(STATS_DISABLE_ENV, raising=False)
    clear_stats_store()
    yield
    clear_stats_store()


class TestObserve:
    def test_accumulates_across_runs(self):
        store = StatsStore(autosave=False)
        store.observe("fp", runs=1, events=10, matches=2,
                      filter_seen=10, filter_admitted=4)
        store.observe("fp", runs=1, events=10, matches=1,
                      filter_seen=10, filter_admitted=6)
        record = store.get("fp")
        assert record["runs"] == 2
        assert record["events"] == 20
        assert record["matches"] == 3
        assert store.prefilter_selectivity("fp") == 0.5

    def test_condition_selectivity(self):
        store = StatsStore(autosave=False)
        store.observe("fp", conditions={
            "a.kind = 'A'": {"evaluations": 100, "passes": 10}})
        assert store.condition_selectivity("fp", "a.kind = 'A'") == 0.1
        assert store.condition_selectivity("fp", "nope") is None
        assert store.condition_selectivity("other", "a.kind = 'A'") is None

    def test_transition_scoped_selectivity_falls_back(self):
        store = StatsStore(autosave=False)
        store.observe("fp", conditions={"c": {"evaluations": 10,
                                              "passes": 5}},
                      transitions={"t1": {
                          "evaluations": 4, "passes": 2, "seconds": 0.0,
                          "conditions": {"c": {"evaluations": 4,
                                               "passes": 1}}}})
        assert store.transition_condition_selectivity("fp", "t1", "c") == 0.25
        assert store.transition_condition_selectivity("fp", "t2", "c") == 0.5

    def test_get_returns_a_copy(self):
        store = StatsStore(autosave=False)
        store.observe("fp", events=5)
        store.get("fp")["events"] = 999
        assert store.get("fp")["events"] == 5

    def test_disabled_store_ignores_observe(self):
        store = StatsStore(autosave=False)
        store.disabled = True
        store.observe("fp", events=5)
        assert store.get("fp") is None


class TestPersistence:
    def test_sidecar_round_trip(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatsStore(path=path)
        store.observe("fp", runs=1, events=7)
        data = json.loads(path.read_text())
        assert data["version"] == STATS_FORMAT_VERSION
        assert data["patterns"]["fp"]["events"] == 7
        reloaded = StatsStore(path=path)
        assert reloaded.get("fp")["events"] == 7

    def test_merge_snapshot_sums(self):
        a, b = StatsStore(autosave=False), StatsStore(autosave=False)
        a.observe("fp", events=3)
        b.observe("fp", events=4)
        b.observe("other", matches=1)
        a.merge_snapshot(b.snapshot())
        assert a.get("fp")["events"] == 7
        assert a.get("other")["matches"] == 1

    def test_merge_rejects_unknown_version(self):
        store = StatsStore(autosave=False)
        with pytest.raises(ValueError):
            store.merge_snapshot({"version": 99, "patterns": {}})

    def test_env_path_binds_global_store(self, tmp_path, monkeypatch):
        path = tmp_path / "global.json"
        monkeypatch.setenv(STATS_PATH_ENV, str(path))
        clear_stats_store()
        stats_store().observe("fp", events=1)
        assert json.loads(path.read_text())["patterns"]["fp"]["events"] == 1

    def test_env_disable_knob(self, monkeypatch):
        monkeypatch.setenv(STATS_DISABLE_ENV, "1")
        clear_stats_store()
        stats_store().observe("fp", events=1)
        assert stats_store().get("fp") is None

    def test_set_stats_path_loads_existing(self, tmp_path):
        path = tmp_path / "stats.json"
        seed = StatsStore(path=path)
        seed.observe("fp", events=2)
        store = set_stats_path(path)
        assert store is stats_store()
        assert store.get("fp")["events"] == 2


class TestConditionOrdering:
    @pytest.fixture
    def observed_store(self):
        """A store that has watched PATTERN run once."""
        store = StatsStore(autosave=False)
        explain_analyze(PATTERN, make_relation(), store=store,
                        record_stats=True)
        return store

    def test_hint_none_without_observations(self):
        assert condition_order_hint(PATTERN,
                                    store=StatsStore(autosave=False)) is None

    def test_hint_ranks_selective_first(self, observed_store):
        hint = condition_order_hint(PATTERN, store=observed_store)
        assert hint is not None
        assert len(hint) == len(PATTERN.conditions)
        fingerprint = stats_key(as_plan(PATTERN).pattern)
        rates = [observed_store.condition_selectivity(fingerprint, text)
                 for text in hint]
        known = [rate for rate in rates if rate is not None]
        assert known == sorted(known)

    def test_ordered_plan_identity_without_observations(self):
        plan = ordered_plan(PATTERN, store=StatsStore(autosave=False))
        assert plan is as_plan(PATTERN)

    def test_ordered_plan_same_matches(self, observed_store):
        relation = make_relation()
        declared = as_plan(PATTERN)
        ordered = ordered_plan(PATTERN, store=observed_store)
        assert ordered.fingerprint.endswith(":stats-order")
        assert any("stats-order" in rewrite for rewrite in ordered.rewrites)
        wanted = [s.bindings for s in declared.match(relation).matches]
        got = [s.bindings for s in ordered.match(relation).matches]
        assert wanted == got

    def test_rank_conditions_reports_changed_transitions(self,
                                                         observed_store):
        changed = rank_conditions(as_plan(PATTERN), store=observed_store)
        for label, conditions in changed.items():
            assert isinstance(label, str) and conditions


class TestPlannerIntegration:
    def test_plan_query_picks_up_stats(self):
        from repro.planner import plan_query
        relation = make_relation()
        explain_analyze(PATTERN, relation)  # records into the global store
        plan = plan_query(PATTERN, relation)
        assert plan.condition_order is not None
        assert "condition order" in plan.explain()
        # the planned execution still finds the same matches
        baseline = match(PATTERN, relation)
        planned = plan.execute(relation)
        assert ([s.bindings for s in planned.matches]
                == [s.bindings for s in baseline.matches])

    def test_plan_query_without_stats_has_no_order(self):
        from repro.planner import plan_query
        relation = make_relation()
        plan = plan_query(PATTERN, relation)
        assert plan.condition_order is None


class TestWorkerMerge:
    """Pool and shard workers ship their observations back to the
    parent's global store (runs counted once, in the parent)."""

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_run_lands_in_global_store(self):
        from repro.obs import Observability
        from repro.parallel import ParallelPartitionedMatcher
        relation = make_relation()
        result = ParallelPartitionedMatcher(
            PATTERN, workers=2, observability=Observability()).run(relation)
        record = stats_store().get(stats_key(as_plan(PATTERN).pattern))
        assert record is not None
        assert record["runs"] == 1, "runs counted once, in the parent"
        assert record["events"] == len(relation)
        assert record["matches"] == len(result.matches)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_sharded_stream_lands_in_global_store(self):
        from repro.obs import Observability
        from repro.parallel import ShardedStreamMatcher
        events = list(make_relation())
        matcher = ShardedStreamMatcher(PATTERN, workers=2,
                                       observability=Observability())
        reported = []
        for event in events:
            reported.extend(matcher.push(event))
        reported.extend(matcher.close())
        record = stats_store().get(stats_key(as_plan(PATTERN).pattern))
        assert record is not None
        assert record["runs"] == 1
        assert record["events"] == len(events)
        assert record["matches"] == len(reported)

    def test_uninstrumented_runs_leave_no_trace(self):
        match(PATTERN, make_relation())
        assert len(stats_store()) == 0
