"""Unit tests for repro.core.pattern."""

import pytest

from repro import PatternError, SESPattern
from repro.core.conditions import Attr, Condition, Const
from repro.core.variables import group, var


class TestConstruction:
    def test_example2_pattern(self, q1):
        assert len(q1) == 2
        assert q1.sets[0] == frozenset({var("c"), group("p"), var("d")})
        assert q1.sets[1] == frozenset({var("b")})
        assert len(q1.conditions) == 7
        assert q1.tau == 264

    def test_variables_union(self, q1):
        names = {v.name for v in q1.variables}
        assert names == {"c", "p", "d", "b"}

    def test_group_and_singleton_partition(self, q1):
        assert {v.name for v in q1.group_variables} == {"p"}
        assert {v.name for v in q1.singleton_variables} == {"c", "d", "b"}

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[], tau=1)

    def test_empty_set_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"], []], tau=1)

    def test_duplicate_in_set_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a", "a"]], tau=1)

    def test_reuse_across_sets_rejected(self):
        """Definition 1 requires Vi ∩ Vj = ∅."""
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"], ["a"]], tau=1)

    def test_reuse_with_different_quantifier_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"], ["a+"]], tau=1)

    def test_negative_tau_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"]], tau=-1)

    def test_invalid_tau_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"]], tau=object())

    def test_condition_with_unknown_variable_rejected(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"]], conditions=["z.L = 'C'"], tau=1)

    def test_condition_objects_accepted(self):
        c = Condition(Attr(var("a"), "L"), "=", Const("X"))
        p = SESPattern(sets=[["a"]], conditions=[c], tau=1)
        assert p.conditions == (c,)

    def test_condition_quantifier_mismatch_rejected(self):
        c = Condition(Attr(var("p"), "L"), "=", Const("X"))
        with pytest.raises(PatternError):
            SESPattern(sets=[["p+"]], conditions=[c], tau=1)

    def test_duplicate_conditions_removed(self):
        p = SESPattern(sets=[["a"]],
                       conditions=["a.L = 'X'", "a.L = 'X'"], tau=1)
        assert len(p.conditions) == 1

    def test_invalid_condition_type(self):
        with pytest.raises(PatternError):
            SESPattern(sets=[["a"]], conditions=[42], tau=1)


class TestLookup:
    def test_variable_by_name(self, q1):
        assert q1.variable("p") == group("p")
        assert q1.variable("p+") == group("p")
        assert q1.variable("c") == var("c")

    def test_variable_unknown(self, q1):
        with pytest.raises(PatternError):
            q1.variable("zzz")

    def test_set_index(self, q1):
        assert q1.set_index(var("c")) == 0
        assert q1.set_index(var("b")) == 1

    def test_set_index_unknown(self, q1):
        with pytest.raises(PatternError):
            q1.set_index(var("zzz"))

    def test_preceding_variables(self, q1):
        assert q1.preceding_variables(0) == frozenset()
        assert q1.preceding_variables(1) == q1.sets[0]


class TestConditionRouting:
    def test_constant_conditions_all(self, q1):
        assert len(q1.constant_conditions()) == 4

    def test_constant_conditions_for_variable(self, q1):
        conds = q1.constant_conditions(var("c"))
        assert len(conds) == 1
        assert conds[0].right == Const("C")

    def test_conditions_mentioning(self, q1):
        mentioning_c = q1.conditions_mentioning(var("c"))
        # θ1 (c.L='C'), θ5 (c.ID=p.ID), θ6 (c.ID=d.ID)
        assert len(mentioning_c) == 3


class TestDunder:
    def test_equality(self, q1):
        from repro.data.paper_events import query_q1
        assert q1 == query_q1()

    def test_inequality_on_tau(self):
        a = SESPattern(sets=[["a"]], tau=1)
        b = SESPattern(sets=[["a"]], tau=2)
        assert a != b

    def test_hashable(self, q1):
        from repro.data.paper_events import query_q1
        assert hash(q1) == hash(query_q1())

    def test_repr(self, q1):
        text = repr(q1)
        assert "p+" in text and "264" in text
