"""Property-based tests (hypothesis) on core data structures and engines."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Event, EventRelation, SESPattern, Substitution, match
from repro.baseline import BruteForceMatcher, naive_match
from repro.core.semantics import (satisfies_conditions, satisfies_order,
                                  satisfies_window)
from repro.core.variables import group, var
from repro.lang import parse_pattern, render_pattern

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
KINDS = ("A", "B", "C")


@st.composite
def typed_relations(draw, max_events: int = 12, kinds=KINDS,
                    unique_ts: bool = False):
    """Small relations of typed events with possibly tied timestamps.

    ``unique_ts=True`` forbids ties — required when comparing against the
    brute force baseline, whose sequence rewriting imposes a strict order
    between all variables and therefore cannot match simultaneous events
    (a documented limitation; see tests/test_baseline.py).
    """
    n = draw(st.integers(min_value=0, max_value=max_events))
    timestamps = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=40),
        min_size=n, max_size=n, unique=unique_ts)))
    events = []
    for i, ts in enumerate(timestamps):
        kind = draw(st.sampled_from(kinds))
        events.append(Event(ts=ts, eid=f"e{i}", kind=kind))
    return EventRelation(events)


@st.composite
def simple_patterns(draw, allow_groups: bool = True):
    """Join-free patterns over the typed events.

    Shapes: one or two event set patterns, each variable carrying one
    constant type condition; at most one group variable (none when
    ``allow_groups=False``).  Join-free *and group-free* patterns are the
    class on which the operational Algorithm 1 provably coincides with
    the declarative Definition 2: with joins a greedy instance can bind a
    dead-end partner, and with a group loop it can greedily swallow an
    event whose timestamp then violates the inter-set order (both
    divergences are pinned in tests/test_integration.py).
    """
    n_sets = draw(st.integers(min_value=1, max_value=2))
    sets, conditions = [], []
    names = iter("uvwxyz")
    used_group = False
    for _ in range(n_sets):
        set_size = draw(st.integers(min_value=1, max_value=2))
        current = []
        for _ in range(set_size):
            name = next(names)
            is_group = (allow_groups and not used_group
                        and draw(st.booleans()))
            used_group = used_group or is_group
            current.append(name + "+" if is_group else name)
            kind = draw(st.sampled_from(KINDS))
            conditions.append(f"{name}.kind = '{kind}'")
        sets.append(current)
    tau = draw(st.integers(min_value=0, max_value=60))
    return SESPattern(sets=sets, conditions=conditions, tau=tau)


# ----------------------------------------------------------------------
# Universal match invariants (any engine, any input)
# ----------------------------------------------------------------------
class TestMatchInvariants:
    @given(pattern=simple_patterns(), relation=typed_relations())
    @settings(max_examples=120, deadline=None)
    def test_matches_satisfy_definition_conditions_1_to_3(self, pattern,
                                                          relation):
        for substitution in match(pattern, relation):
            assert substitution.is_total_for(pattern)
            assert satisfies_conditions(substitution, pattern)
            assert satisfies_order(substitution, pattern)
            assert satisfies_window(substitution, pattern)

    @given(pattern=simple_patterns(), relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_matches_use_distinct_relation_events(self, pattern, relation):
        pool = set(relation.events)
        for substitution in match(pattern, relation):
            events = [e for _, e in substitution.bindings]
            assert all(e in pool for e in events)

    @given(pattern=simple_patterns(), relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_paper_selection_is_non_overlapping(self, pattern, relation):
        used = set()
        for substitution in match(pattern, relation):
            events = set(substitution.events())
            assert not (events & used)
            used |= events

    @given(pattern=simple_patterns(), relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_filter_neutrality(self, pattern, relation):
        with_filter = match(pattern, relation, use_filter=True)
        without = match(pattern, relation, use_filter=False)
        assert with_filter.matches == without.matches

    @given(pattern=simple_patterns(), relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_determinism(self, pattern, relation):
        assert match(pattern, relation).matches == \
            match(pattern, relation).matches


# ----------------------------------------------------------------------
# Engine agreement
# ----------------------------------------------------------------------
class TestEngineAgreement:
    @given(pattern=simple_patterns(allow_groups=False),
           relation=typed_relations(max_events=9, unique_ts=True))
    @settings(max_examples=60, deadline=None)
    def test_executor_equals_oracle_on_join_and_group_free_patterns(
            self, pattern, relation):
        """Join-free, group-free patterns over tie-free relations:
        Algorithm 1 == Definition 2.  Timestamp ties break the
        equivalence even here — with simultaneous events, "an earlier
        usable event" (condition 4) degenerates and Definition 2 admits
        pairings a greedy run never forms; pinned in
        tests/test_integration.py::TestTieDivergence."""
        operational = match(pattern, relation).matches
        declarative = naive_match(pattern, relation)
        assert operational == declarative

    @given(pattern=simple_patterns(), relation=typed_relations(max_events=9))
    @settings(max_examples=60, deadline=None)
    def test_executor_results_admitted_by_conditions_1_to_3(self, pattern,
                                                            relation):
        """With group variables Algorithm 1 may *under*-report relative to
        Definition 2 (greedy loop bindings can be fatal near the window
        boundary), but what it reports is always a valid candidate."""
        from repro.core.semantics import is_candidate
        for substitution in match(pattern, relation):
            assert is_candidate(substitution, pattern)

    @given(relation=typed_relations(max_events=10, unique_ts=True))
    @settings(max_examples=60, deadline=None)
    def test_ses_matches_subset_of_bruteforce_accepted(self, relation):
        """Every buffer the SES automaton accepts, some sequence automaton
        of the brute force rewriting accepts too."""
        pattern = SESPattern(
            sets=[["x", "y"], ["z"]],
            conditions=["x.kind = 'A'", "y.kind = 'B'", "z.kind = 'C'"],
            tau=30,
        )
        ses = match(pattern, relation, selection="accepted")
        bf = BruteForceMatcher(pattern, selection="accepted").run(relation)
        assert set(ses.accepted) <= set(bf.accepted)

    @given(relation=typed_relations(max_events=10, unique_ts=True))
    @settings(max_examples=60, deadline=None)
    def test_ses_equals_bruteforce_on_exclusive_singletons(self, relation):
        pattern = SESPattern(
            sets=[["x", "y"], ["z"]],
            conditions=["x.kind = 'A'", "y.kind = 'B'", "z.kind = 'C'"],
            tau=30,
        )
        ses = match(pattern, relation).matches
        bf = BruteForceMatcher(pattern).run(relation).matches
        assert ses == bf


# ----------------------------------------------------------------------
# Data structure properties
# ----------------------------------------------------------------------
class TestRelationProperties:
    @given(relation=typed_relations(), factor=st.integers(1, 4),
           tau=st.integers(0, 50))
    @settings(max_examples=80, deadline=None)
    def test_duplication_scales_window_size(self, relation, factor, tau):
        assume(len(relation) > 0)
        assert relation.duplicated(factor).window_size(tau) == \
            factor * relation.window_size(tau)

    @given(relation=typed_relations(), tau1=st.integers(0, 50),
           tau2=st.integers(0, 50))
    @settings(max_examples=80, deadline=None)
    def test_window_size_monotone_in_tau(self, relation, tau1, tau2):
        lo, hi = sorted((tau1, tau2))
        assert relation.window_size(lo) <= relation.window_size(hi)

    @given(relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_window_size_bounds(self, relation):
        assume(len(relation) > 0)
        assert 1 <= relation.window_size(0) <= len(relation)
        first, last = relation.timespan()
        assert relation.window_size(last - first) == len(relation)

    @given(relation=typed_relations())
    @settings(max_examples=60, deadline=None)
    def test_partition_by_is_a_partition(self, relation):
        parts = relation.partition_by("kind")
        total = sum(len(p) for p in parts.values())
        assert total == len(relation)
        for key, part in parts.items():
            assert all(e["kind"] == key for e in part)


class TestSubstitutionProperties:
    events = st.lists(
        st.integers(0, 30), min_size=1, max_size=5, unique=True,
    ).map(lambda tss: [Event(ts=ts, eid=f"p{ts}") for ts in sorted(tss)])

    @given(events=events)
    @settings(max_examples=80, deadline=None)
    def test_decomposition_count(self, events):
        p, q = group("p"), var("q")
        anchor = Event(ts=100, eid="anchor")
        substitution = Substitution([(p, e) for e in events] + [(q, anchor)])
        assert len(list(substitution.decompose())) == len(events)

    @given(events=events)
    @settings(max_examples=80, deadline=None)
    def test_span_and_bounds(self, events):
        p = group("p")
        substitution = Substitution([(p, e) for e in events])
        assert substitution.min_ts() == min(e.ts for e in events)
        assert substitution.max_ts() == max(e.ts for e in events)
        assert substitution.span() >= 0


class TestLanguageRoundTrip:
    @given(pattern=simple_patterns())
    @settings(max_examples=80, deadline=None)
    def test_render_parse_round_trip(self, pattern):
        assert parse_pattern(render_pattern(pattern)) == pattern


class TestTrimProperties:
    @given(pattern=simple_patterns())
    @settings(max_examples=60, deadline=None)
    def test_builder_output_needs_no_trimming(self, pattern):
        """The builder never emits dead transitions for satisfiable
        patterns (each variable's constant conditions are its own)."""
        from repro.automaton import trim
        from repro.automaton.builder import build_automaton
        report = trim(build_automaton(pattern))
        assert report.satisfiable
        assert not report.changed

    @given(pattern=simple_patterns(), relation=typed_relations(max_events=8))
    @settings(max_examples=40, deadline=None)
    def test_trimmed_automaton_equivalent(self, pattern, relation):
        from repro.automaton import SESExecutor, trim
        from repro.automaton.builder import build_automaton
        automaton = build_automaton(pattern)
        trimmed = trim(automaton).automaton
        original = SESExecutor(automaton, selection="accepted").run(relation)
        after = SESExecutor(trimmed, selection="accepted").run(relation)
        assert original.accepted == after.accepted
