"""End-to-end signal-path test for ``repro serve``: SIGUSR2 delivered to
a real serve process must dump the flight recorder through the installed
handler (not a direct ``dump()`` call), and the process must still shut
down cleanly afterwards."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

import repro
from repro.data.paper_events import figure1_relation
from repro.storage import save_relation

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

QUERY = ("PATTERN PERMUTE(c, p+, d) THEN b "
         "WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B' "
         "AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID WITHIN 264")

pytestmark = pytest.mark.skipif(not hasattr(signal, "SIGUSR2"),
                                reason="platform has no SIGUSR2")


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_sigusr2_dumps_flight_recorder(tmp_path):
    csv_path = tmp_path / "events.csv"
    save_relation(figure1_relation(), csv_path)
    dump_path = tmp_path / "flight.json"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data", str(csv_path), "--query", QUERY,
         "--listen", "127.0.0.1:0", "--flight-dump", str(dump_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=str(tmp_path),
        env={**os.environ,
             "PYTHONPATH": SRC_DIR + os.pathsep
             + os.environ.get("PYTHONPATH", "")})
    try:
        # scrape the ephemeral endpoint URL from startup output
        line = process.stdout.readline()
        assert "serving observability on " in line, line
        url = line.strip().rsplit(" ", 1)[-1]

        # wait until the replay finished (the serve loop is idle)
        line = process.stdout.readline()
        assert "replayed" in line and "match(es)" in line, line

        os.kill(process.pid, signal.SIGUSR2)
        assert wait_for(dump_path.exists), "SIGUSR2 produced no dump file"
        dump = json.loads(dump_path.read_text())
        assert dump.get("steps"), "flight dump has no recorded steps"

        # the endpoint must still be alive after handling the signal
        with urllib.request.urlopen(url + "/healthz", timeout=5) as resp:
            assert resp.status == 200

        # clean shutdown through the quit route
        request = urllib.request.Request(url + "/quitquitquit",
                                         data=b"", method="POST")
        with urllib.request.urlopen(request, timeout=5) as resp:
            assert resp.status == 200
        assert process.wait(timeout=20) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
