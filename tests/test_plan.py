"""Tests for the repro.plan subsystem: canonical fingerprints, the
bounded plan cache, pickled-plan round trips, the vectorized constant
prefilter (scalar-equivalent by construction, checked by property), the
unified option spellings, and cached-vs-uncached result identity."""

import pickle
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Event, EventRelation, SESPattern, match
from repro.automaton.filtering import EventFilter
from repro.plan import (FILTER_MODES, PatternPlan, PlanCache,
                        VectorizedPrefilter, build_plan, clear_plan_cache,
                        compile, pattern_fingerprint, plan_cache)
from repro.plan.prefilter import popcount

from conftest import bindings

PATTERN = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)


def make_relation(n_keys=4, reps=2):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return EventRelation(events)


def pattern_with(sets=None, conditions=None, tau=50):
    return SESPattern(
        sets=sets or [["a", "b"], ["c"]],
        conditions=conditions or ["a.kind = 'A'", "b.kind = 'B'",
                                  "c.kind = 'C'"],
        tau=tau,
    )


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_spelling(self):
        """Equal patterns fingerprint equally, however they are spelt."""
        reordered = SESPattern(
            sets=[["b", "a"], ["c"]],
            conditions=["b.kind = 'B'", "a.ID = c.ID", "c.kind = 'C'",
                        "a.kind = 'A'", "b.ID = c.ID", "a.ID = b.ID"],
            tau=50.0,
        )
        assert reordered == PATTERN
        assert pattern_fingerprint(reordered) == pattern_fingerprint(PATTERN)

    def test_numeric_spellings_agree(self):
        """50 vs 50.0 vs Fraction-equal floats: one fingerprint."""
        assert (pattern_fingerprint(pattern_with(tau=50))
                == pattern_fingerprint(pattern_with(tau=50.0)))

    def test_condition_change_differs(self):
        other = pattern_with(conditions=["a.kind = 'A'", "b.kind = 'B'",
                                         "c.kind = 'X'"])
        assert (pattern_fingerprint(other)
                != pattern_fingerprint(pattern_with()))

    def test_tau_change_differs(self):
        assert (pattern_fingerprint(pattern_with(tau=51))
                != pattern_fingerprint(pattern_with(tau=50)))

    def test_set_shape_change_differs(self):
        merged = pattern_with(sets=[["a", "b", "c"]])
        split = pattern_with(sets=[["a"], ["b"], ["c"]])
        assert (pattern_fingerprint(merged) != pattern_fingerprint(split)
                != pattern_fingerprint(pattern_with()))

    def test_optimizations_in_key(self):
        assert (pattern_fingerprint(PATTERN, ("prefilter",))
                != pattern_fingerprint(PATTERN, ("prefilter", "trim")))


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_equal_patterns_hit(self):
        cache = PlanCache(maxsize=8)
        a = compile(pattern_with(tau=50), cache=cache)
        b = compile(pattern_with(tau=50.0), cache=cache)
        assert a is b
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_different_patterns_miss(self):
        cache = PlanCache(maxsize=8)
        compile(pattern_with(tau=50), cache=cache)
        compile(pattern_with(tau=51), cache=cache)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_eviction_bound(self):
        cache = PlanCache(maxsize=3)
        plans = [compile(pattern_with(tau=t), cache=cache)
                 for t in range(1, 6)]
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 2
        # LRU: the oldest plans were evicted, the newest survive.
        assert plans[0].fingerprint not in cache
        assert plans[-1].fingerprint in cache

    def test_global_cache_seed_and_clear(self):
        clear_plan_cache()
        plan = compile(PATTERN)
        assert plan.fingerprint in plan_cache()
        assert plan_cache().seed(plan) is plan
        clear_plan_cache()
        assert plan.fingerprint not in plan_cache()

    def test_cache_false_rebuilds(self):
        a = compile(PATTERN, cache=False)
        b = compile(PATTERN, cache=False)
        assert a is not b and a == b

    def test_compile_rejects_non_patterns(self):
        with pytest.raises(TypeError):
            compile("PATTERN PERMUTE(a, b) ...")

    def test_compile_passthrough_for_plans(self):
        plan = compile(PATTERN, cache=False)
        assert compile(plan) is plan

    def test_observability_counters(self):
        from repro.obs import Observability
        obs = Observability()
        cache = PlanCache(maxsize=4)
        compile(PATTERN, cache=cache, observability=obs)
        compile(PATTERN, cache=cache, observability=obs)
        snapshot = obs.snapshot()
        assert snapshot["ses_plan_cache_misses_total"]["value"] == 1
        assert snapshot["ses_plan_cache_hits_total"]["value"] == 1
        assert snapshot["ses_plan_cache_size"]["value"] == 1


# ----------------------------------------------------------------------
# Pickling (what the pools ship to workers)
# ----------------------------------------------------------------------
class TestPickle:
    def test_round_trip_equality(self):
        plan = compile(PATTERN, cache=False)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.fingerprint == plan.fingerprint
        assert clone.optimizations == plan.optimizations
        assert clone.pattern == plan.pattern

    def test_round_trip_matches_identically(self):
        relation = make_relation()
        plan = compile(PATTERN, cache=False)
        clone = pickle.loads(pickle.dumps(plan))
        assert (canonical(plan.match(relation))
                == canonical(clone.match(relation)))

    def test_seeding_a_cache_returns_canonical_instance(self):
        cache = PlanCache(maxsize=4)
        plan = compile(PATTERN, cache=cache)
        shipped = pickle.loads(pickle.dumps(plan))
        assert cache.seed(shipped) is plan  # equal fingerprint already held


def canonical(result):
    return ([bindings(s) for s in result.matches],
            [bindings(s) for s in result.accepted])


# ----------------------------------------------------------------------
# Vectorized prefilter == scalar EventFilter
# ----------------------------------------------------------------------
KINDS = ("A", "B", "C")


@st.composite
def filter_patterns(draw):
    """Patterns mixing constant and join conditions, some variables
    unconstrained (exercising the paper mode's self-disabling path)."""
    n_vars = draw(st.integers(min_value=1, max_value=3))
    names = "uvw"[:n_vars]
    sets = [[name] for name in names]
    conditions = []
    for name in names:
        if draw(st.booleans()):
            conditions.append(
                f"{name}.kind {draw(st.sampled_from(('=', '!=')))} "
                f"'{draw(st.sampled_from(KINDS))}'")
        if draw(st.booleans()):
            conditions.append(
                f"{name}.V {draw(st.sampled_from(('<', '<=', '>', '>=')))} "
                f"{draw(st.integers(min_value=0, max_value=10))}")
    if n_vars > 1 and draw(st.booleans()):
        conditions.append(f"{names[0]}.ID = {names[1]}.ID")
    return SESPattern(sets=sets, conditions=conditions, tau=20)


@st.composite
def untyped_events(draw, max_events=12):
    """Events with sometimes-missing and sometimes-mistyped attributes
    (both must be rejected exactly like the scalar filter rejects)."""
    n = draw(st.integers(min_value=0, max_value=max_events))
    timestamps = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=40), min_size=n, max_size=n)))
    events = []
    for i, ts in enumerate(timestamps):
        fields = {"ts": ts, "eid": f"e{i}"}
        if draw(st.booleans()):
            fields["kind"] = draw(st.sampled_from(KINDS))
        value = draw(st.one_of(
            st.none(), st.integers(min_value=-2, max_value=12),
            st.just("not-a-number")))
        if value is not None:
            fields["V"] = value
        events.append(Event(**fields))
    return events


class TestVectorizedPrefilter:
    @given(pattern=filter_patterns(), events=untyped_events())
    @settings(max_examples=150, deadline=None)
    @pytest.mark.parametrize("mode", FILTER_MODES)
    def test_equivalent_to_scalar_filter(self, pattern, events, mode):
        scalar = EventFilter(pattern, mode=mode)
        vectorized = VectorizedPrefilter(pattern, mode=mode)
        assert vectorized.is_effective == scalar.is_effective
        expected = [scalar.admits(e) for e in events]
        assert [vectorized.admits(e) for e in events] == expected
        mask = vectorized.admission_mask(events)
        assert [bool((mask >> i) & 1) for i in range(len(events))] == expected
        assert popcount(mask) == sum(expected)

    @given(pattern=filter_patterns(), events=untyped_events())
    @settings(max_examples=60, deadline=None)
    def test_cursor_replays_the_mask(self, pattern, events):
        vectorized = VectorizedPrefilter(pattern, mode="conjunctive")
        mask = vectorized.admission_mask(events)
        cursor = vectorized.cursor(mask, len(events))
        assert ([cursor.admits(e) for e in events]
                == [vectorized.admits(e) for e in events])


# ----------------------------------------------------------------------
# Cached vs uncached: bit-identical results
# ----------------------------------------------------------------------
class TestCachedEqualsUncached:
    def test_serial(self):
        relation = make_relation()
        clear_plan_cache()
        fresh = compile(PATTERN, cache=False).match(relation)
        for _ in range(3):
            again = match(PATTERN, relation)
            assert canonical(again) == canonical(fresh)
            assert again.stats.events_read == fresh.stats.events_read
            assert (again.stats.transitions_fired
                    == fresh.stats.transitions_fired)

    def test_streaming(self):
        relation = make_relation()
        clear_plan_cache()
        uncached = compile(PATTERN, cache=False)
        baseline = uncached.stream()
        baseline.push_many(relation)
        baseline.close()
        cached = repro.compile(PATTERN).stream()
        cached.push_many(relation)
        cached.close()
        assert ([bindings(s) for s in cached.matches]
                == [bindings(s) for s in baseline.matches])

    def test_workers(self):
        relation = make_relation()
        fresh = compile(PATTERN, cache=False).match(relation, workers=2)
        cached = repro.compile(PATTERN).match(relation, workers=2)
        assert canonical(cached) == canonical(fresh)

    def test_plan_match_agrees_with_legacy_match(self):
        relation = make_relation()
        plan = repro.compile(PATTERN)
        assert (canonical(plan.match(relation))
                == canonical(match(PATTERN, relation)))


# ----------------------------------------------------------------------
# Option spelling shims
# ----------------------------------------------------------------------
class TestDeprecatedSpellings:
    def test_matcher_consume_mode_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.Matcher(PATTERN, consume_mode="greedy")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "consume=" in str(deprecations[0].message)

    def test_partitioned_attribute_warns_once(self):
        from repro.automaton.optimizations import PartitionedMatcher
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            PartitionedMatcher(PATTERN, attribute="ID")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "partition_by=" in str(deprecations[0].message)

    def test_pool_obs_warns_once(self):
        from repro.parallel import ParallelPartitionedMatcher
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ParallelPartitionedMatcher(PATTERN, workers=1, obs=None)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []  # None means "unset", no warning

    def test_sharded_shards_spelling_warns_once(self):
        from repro.parallel.sharded import ShardedStreamMatcher
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ValueError):
                ShardedStreamMatcher(PATTERN, shards=0)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "workers=" in str(deprecations[0].message)

    def test_both_spellings_is_an_error(self):
        with pytest.raises(TypeError):
            repro.Matcher(PATTERN, consume="greedy", consume_mode="greedy")

    def test_new_spellings_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            repro.Matcher(PATTERN, consume="greedy")
            repro.compile(PATTERN).match(make_relation(), consume="greedy")
        assert caught == []


# ----------------------------------------------------------------------
# Plan object behaviour
# ----------------------------------------------------------------------
class TestPatternPlan:
    def test_plan_is_immutable(self):
        plan = compile(PATTERN, cache=False)
        with pytest.raises(AttributeError):
            plan.pattern = pattern_with()

    def test_describe_mentions_rewrites(self):
        plan = compile(PATTERN, cache=False)
        text = plan.describe()
        assert plan.fingerprint[:12] in text
        assert "prefilter" in text

    def test_unknown_optimization_rejected(self):
        with pytest.raises(ValueError):
            build_plan(PATTERN, optimizations=("prefilter", "turbo"))

    def test_invalid_workers_rejected(self):
        plan = compile(PATTERN, cache=False)
        with pytest.raises(ValueError):
            plan.match(make_relation(), workers=0)

    def test_prefilter_selectivity_gauge(self):
        from repro.obs import Observability
        obs = Observability()
        relation = make_relation()
        plan = compile(PATTERN, cache=False)
        plan.match(relation, observability=obs)
        snapshot = obs.snapshot()
        assert "ses_prefilter_selectivity" in snapshot
        assert 0.0 <= snapshot["ses_prefilter_selectivity"]["value"] <= 1.0

    def test_isinstance_checks(self):
        assert isinstance(repro.compile(PATTERN), PatternPlan)
