"""Tests for the benchmark regression gate (repro.bench.compare and the
benchmarks/compare_metrics.py wrapper CI calls)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.compare import (compare_snapshots, format_report,
                                 metric_direction, regressions)
from repro.obs import write_jsonl


def gauge(value):
    return {"type": "gauge", "value": value, "max": value}


BASE = {
    "bench_exp1_p1_2_ses_seconds": gauge(0.2),
    "bench_scaling_w2_events_per_second": gauge(1000.0),
    "bench_scaling_w2_speedup": gauge(1.8),
    "bench_exp1_p1_2_ses_instances": gauge(40),
    "tiny_ses_seconds": gauge(0.001),
}


def head_with(**overrides):
    head = {name: dict(record) for name, record in BASE.items()}
    for name, value in overrides.items():
        head[name]["value"] = value
    return head


class TestDirections:
    def test_seconds_lower_is_better(self):
        assert metric_direction("bench_exp1_p1_2_ses_seconds") == "lower"

    def test_rates_higher_is_better(self):
        assert metric_direction("x_events_per_second") == "higher"
        assert metric_direction("x_throughput") == "higher"
        assert metric_direction("x_speedup") == "higher"

    def test_untracked(self):
        assert metric_direction("bench_exp1_p1_2_ses_instances") is None


class TestGate:
    def test_identical_snapshots_pass(self):
        assert regressions(compare_snapshots(BASE, head_with())) == []

    def test_timing_regression_over_threshold_fails(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_exp1_p1_2_ses_seconds=0.2 * 1.30))
        bad = regressions(deltas)
        assert [d.name for d in bad] == ["bench_exp1_p1_2_ses_seconds"]
        assert bad[0].change == pytest.approx(0.30)

    def test_timing_regression_under_threshold_passes(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_exp1_p1_2_ses_seconds=0.2 * 1.20))
        assert regressions(deltas) == []

    def test_throughput_drop_fails(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_scaling_w2_events_per_second=600.0))
        assert [d.name for d in regressions(deltas)] == [
            "bench_scaling_w2_events_per_second"]

    def test_improvements_never_fail(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_exp1_p1_2_ses_seconds=0.01,
            bench_scaling_w2_events_per_second=9000.0,
            bench_scaling_w2_speedup=3.9))
        assert regressions(deltas) == []

    def test_noise_floor_skips_micro_timings(self):
        # 10x slower, but both sides are far below the noise floor.
        deltas = compare_snapshots(BASE, head_with(tiny_ses_seconds=0.01))
        assert regressions(deltas) == []

    def test_untracked_metrics_never_gate(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_exp1_p1_2_ses_instances=4000))
        assert regressions(deltas) == []

    def test_metrics_in_only_one_snapshot_are_ignored(self):
        head = head_with()
        head["brand_new_seconds"] = gauge(99.0)
        base = dict(BASE, removed_seconds=gauge(0.1))
        names = {d.name for d in compare_snapshots(base, head)}
        assert "brand_new_seconds" not in names
        assert "removed_seconds" not in names


class TestReport:
    def test_fail_verdict_lists_regressions(self):
        deltas = compare_snapshots(BASE, head_with(
            bench_exp1_p1_2_ses_seconds=0.3))
        report = format_report(deltas)
        assert "FAIL" in report
        assert "bench_exp1_p1_2_ses_seconds" in report
        assert "REGRESSED" in report

    def test_ok_verdict(self):
        report = format_report(compare_snapshots(BASE, head_with()))
        assert "OK: no tracked metric" in report


class TestWrapperScript:
    SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "compare_metrics.py"

    def run_compare(self, tmp_path, base, head):
        base_path = write_jsonl(base, tmp_path / "base.jsonl")
        head_path = write_jsonl(head, tmp_path / "head.jsonl")
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), str(base_path),
             str(head_path)],
            capture_output=True, text=True)

    def test_exit_zero_when_clean(self, tmp_path):
        proc = self.run_compare(tmp_path, BASE, head_with())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_exit_one_on_regression(self, tmp_path):
        proc = self.run_compare(
            tmp_path, BASE, head_with(bench_exp1_p1_2_ses_seconds=0.5))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout
