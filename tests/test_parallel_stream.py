"""Tests for the sharded streaming front-end: equivalence with the
single-process partitioned stream matcher, flush/close semantics, crash
detection, and shard metrics."""

import multiprocessing

import pytest

from repro import Event, SESPattern
from repro.parallel import ShardedStreamMatcher, WorkerCrashed
from repro.stream import PartitionedContinuousMatcher

from conftest import bindings

#: Every variable equi-joins on ID (sound to shard on ID).
JOINED = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)

UNJOINED = SESPattern(
    sets=[["a"], ["b"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'"],
    tau=50,
)


def stream_events(n_keys=5, reps=2):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return events


def match_set(substitutions):
    return {bindings(s) for s in substitutions}


def reference_matches(events):
    matcher = PartitionedContinuousMatcher(JOINED, attribute="ID")
    reported = []
    for event in events:
        reported.extend(matcher.push(event))
    reported.extend(matcher.close())
    return reported


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_same_matches_as_single_process(self, shards):
        events = stream_events()
        expected = match_set(reference_matches(events))
        with ShardedStreamMatcher(JOINED, shards=shards) as matcher:
            assert matcher.attribute == "ID"
            matcher.push_many(events)
        assert match_set(matcher.matches) == expected
        assert len(matcher.matches) == len(expected)

    def test_matches_ordered_by_start_timestamp(self):
        with ShardedStreamMatcher(JOINED, shards=2) as matcher:
            matcher.push_many(stream_events())
        starts = [s.min_ts() for s in matcher.matches]
        assert starts == sorted(starts)


class TestFlushClose:
    def test_flush_is_a_barrier(self):
        events = stream_events()
        matcher = ShardedStreamMatcher(JOINED, shards=3)
        try:
            matcher.push_many(events)
            matcher.flush()
            # Every routed event has been processed once flush returns.
            assert sum(matcher.events_routed) == len(events)
            assert sum(matcher._events_processed) == len(events)
            # The stream is still open: more events still match.
            extra_ts = events[-1].ts
            matcher.push_many([
                Event(ts=extra_ts + 1, eid="xa", kind="A", ID=77),
                Event(ts=extra_ts + 2, eid="xb", kind="B", ID=77),
                Event(ts=extra_ts + 3, eid="xc", kind="C", ID=77),
            ])
        finally:
            matcher.close()
        assert len(matcher.matches) == len(reference_matches(events)) + 1

    def test_close_is_idempotent_and_seals_the_stream(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push_many(stream_events(n_keys=2, reps=1))
        matcher.close()
        assert matcher.close() == []
        with pytest.raises(RuntimeError, match="closed"):
            matcher.push(Event(ts=1, kind="A", ID=0))
        with pytest.raises(RuntimeError, match="closed"):
            matcher.flush()

    def test_context_manager_closes(self):
        with ShardedStreamMatcher(JOINED, shards=2) as matcher:
            matcher.push_many(stream_events(n_keys=2, reps=1))
        assert matcher._closed
        assert multiprocessing.active_children() == []

    def test_on_match_callbacks(self):
        seen = []
        with ShardedStreamMatcher(JOINED, shards=2) as matcher:
            matcher.on_match(seen.append)
            matcher.push_many(stream_events(n_keys=3, reps=1))
        assert match_set(seen) == match_set(matcher.matches)


class TestValidation:
    def test_rejects_pattern_without_partition_attribute(self):
        with pytest.raises(ValueError, match="equi-join"):
            ShardedStreamMatcher(UNJOINED, shards=2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedStreamMatcher(JOINED, shards=0)

    def test_rejects_bad_queue_size(self):
        with pytest.raises(ValueError):
            ShardedStreamMatcher(JOINED, shards=1, queue_size=0)


class Bomb:
    """An attribute value whose comparison raises inside a shard."""

    __hash__ = object.__hash__

    def __eq__(self, other):
        raise RuntimeError("boom condition")

    def __reduce__(self):
        return (Bomb, ())


class TestCrashDetection:
    def test_crashed_shard_surfaces_instead_of_hanging(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push(Event(ts=1, eid="p", kind=Bomb(), ID=4))
        with pytest.raises(WorkerCrashed, match="boom condition"):
            # The crash is asynchronous; the flush barrier must observe it.
            matcher.flush()
        assert multiprocessing.active_children() == []
        # The matcher is unusable but further calls still fail cleanly.
        with pytest.raises(RuntimeError):
            matcher.push(Event(ts=2, kind="A", ID=0))

    def test_stop_terminates_without_results(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push_many(stream_events(n_keys=2, reps=1))
        matcher.stop()
        assert multiprocessing.active_children() == []


class TestShardMetrics:
    def test_queue_depths_and_shard_gauges(self):
        from repro.obs import Observability
        obs = Observability()
        events = stream_events(n_keys=4, reps=1)
        with ShardedStreamMatcher(JOINED, shards=2, obs=obs) as matcher:
            matcher.push_many(events)
            assert len(matcher.queue_depths) == 2
        snapshot = obs.snapshot()
        processed = [snapshot[f"ses_shard{i}_events_total"]["value"]
                     for i in range(2)]
        assert sum(processed) == len(events)
        assert all(snapshot[f"ses_shard{i}_queue_depth"]["value"] == 0
                   for i in range(2))


class TestShardFlightDump:
    def test_crash_ships_flight_dump(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push_many(stream_events(n_keys=4, reps=1))
        matcher.push(Event(ts=90, eid="poison", kind=Bomb(), ID=4))
        with pytest.raises(WorkerCrashed) as excinfo:
            matcher.flush()
        dump = excinfo.value.flight_dump
        assert dump is not None and dump["steps"]
        last = dump["steps"][-1]
        assert last["kind"] == "crash"
        assert last["event"] == "poison"

    def test_flight_capacity_zero_still_reports_crash(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2, flight_capacity=0)
        matcher.push(Event(ts=1, eid="p", kind=Bomb(), ID=4))
        with pytest.raises(WorkerCrashed) as excinfo:
            matcher.flush()
        assert excinfo.value.flight_dump is None


class TestHealth:
    def test_healthy_while_running(self):
        with ShardedStreamMatcher(JOINED, shards=2) as matcher:
            matcher.push_many(stream_events(n_keys=2, reps=1))
            matcher.flush()
            report = matcher.health()
            assert report["status"] == "ok"
            assert report["closed"] is False
            assert report["attribute"] == "ID"
            assert len(report["shards"]) == 2
            for shard in report["shards"]:
                assert shard["alive"] is True
                assert shard["events_processed"] >= 0

    def test_ok_after_clean_close(self):
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push_many(stream_events(n_keys=2, reps=1))
        matcher.close()
        report = matcher.health()
        assert report["status"] == "ok"
        assert report["closed"] is True

    def test_failed_after_unsupervised_shard_death(self):
        # Without a supervisor nothing will restart the shard: that is a
        # hard failure, not a degraded-but-serving state.
        matcher = ShardedStreamMatcher(JOINED, shards=2)
        matcher.push(Event(ts=1, eid="p", kind=Bomb(), ID=4))
        with pytest.raises(WorkerCrashed):
            matcher.flush()
        assert matcher.health()["status"] == "failed"
