"""Unit tests for repro.core.conditions."""

import pytest

from repro import Event
from repro.core.conditions import (Attr, Condition, Const, attr, const,
                                   parse_condition)
from repro.core.variables import group, var

C = var("c")
D = var("d")
P = group("p")


def cond(left_var, attribute, op, right):
    return Condition(Attr(left_var, attribute), op, right)


class TestOperands:
    def test_attr_equality(self):
        assert Attr(C, "L") == Attr(C, "L")
        assert Attr(C, "L") != Attr(D, "L")
        assert Attr(C, "L") != Attr(C, "V")

    def test_const_equality(self):
        assert Const(5) == Const(5)
        assert Const(5) != Const(6)

    def test_attr_requires_variable(self):
        with pytest.raises(TypeError):
            Attr("c", "L")

    def test_helpers(self):
        assert attr(C, "L") == Attr(C, "L")
        assert const(3) == Const(3)


class TestConditionConstruction:
    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            cond(C, "L", "~", Const(1))

    def test_left_must_be_attr(self):
        with pytest.raises(TypeError):
            Condition(Const(1), "=", Const(1))

    def test_right_must_be_operand(self):
        with pytest.raises(TypeError):
            Condition(Attr(C, "L"), "=", "raw string")

    def test_is_constant(self):
        assert cond(C, "L", "=", Const("C")).is_constant
        assert not cond(C, "ID", "=", Attr(D, "ID")).is_constant

    def test_variables(self):
        assert cond(C, "L", "=", Const("C")).variables == {C}
        assert cond(C, "ID", "=", Attr(D, "ID")).variables == {C, D}

    def test_mentions(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        assert c.mentions(C) and c.mentions(D)
        assert not c.mentions(P)

    def test_other_variable(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        assert c.other_variable(C) == D
        assert c.other_variable(D) == C
        assert c.other_variable(P) is None
        assert cond(C, "L", "=", Const("C")).other_variable(C) is None


class TestNormalisation:
    def test_already_anchored(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        assert c.normalised_for(C) is c

    def test_mirrors_operator(self):
        c = cond(C, "V", "<", Attr(D, "V"))
        flipped = c.normalised_for(D)
        assert flipped.left == Attr(D, "V")
        assert flipped.op == ">"
        assert flipped.right == Attr(C, "V")

    def test_mirror_table_complete(self):
        for op, mirrored in [("=", "="), ("!=", "!="), ("<", ">"),
                             ("<=", ">="), (">", "<"), (">=", "<=")]:
            c = cond(C, "V", op, Attr(D, "V"))
            assert c.normalised_for(D).op == mirrored

    def test_unrelated_variable_raises(self):
        c = cond(C, "L", "=", Const("C"))
        with pytest.raises(ValueError):
            c.normalised_for(D)


class TestEvaluation:
    def test_constant_condition(self):
        c = cond(C, "L", "=", Const("C"))
        assert c.evaluate({C: Event(ts=1, L="C")})
        assert not c.evaluate({C: Event(ts=1, L="D")})

    def test_two_variable_condition(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        e1, e2 = Event(ts=1, ID=1), Event(ts=2, ID=1)
        e3 = Event(ts=3, ID=2)
        assert c.evaluate({C: e1, D: e2})
        assert not c.evaluate({C: e1, D: e3})

    def test_comparison_operators(self):
        e = Event(ts=1, V=5)
        assert cond(C, "V", "<", Const(6)).evaluate({C: e})
        assert cond(C, "V", "<=", Const(5)).evaluate({C: e})
        assert cond(C, "V", ">", Const(4)).evaluate({C: e})
        assert cond(C, "V", ">=", Const(5)).evaluate({C: e})
        assert cond(C, "V", "!=", Const(4)).evaluate({C: e})
        assert not cond(C, "V", "=", Const(4)).evaluate({C: e})

    def test_time_attribute(self):
        c = cond(C, "T", "<", Attr(D, "T"))
        assert c.evaluate({C: Event(ts=1), D: Event(ts=2)})
        assert not c.evaluate({C: Event(ts=2), D: Event(ts=2)})

    def test_incomparable_values_false(self):
        c = cond(C, "V", "<", Const("text"))
        assert c.evaluate({C: Event(ts=1, V=5)}) is False

    def test_missing_binding_raises(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        with pytest.raises(KeyError):
            c.evaluate({C: Event(ts=1, ID=1)})

    def test_evaluate_events(self):
        c = cond(C, "ID", "=", Attr(D, "ID"))
        assert c.evaluate_events(Event(ts=1, ID=1), Event(ts=2, ID=1))
        with pytest.raises(ValueError):
            c.evaluate_events(Event(ts=1, ID=1))

    def test_equality_and_hash(self):
        a = cond(C, "L", "=", Const("C"))
        b = cond(C, "L", "=", Const("C"))
        assert a == b and hash(a) == hash(b)


class TestParsing:
    VARS = {"c": C, "d": D, "p": P}

    def test_parse_constant_string(self):
        c = parse_condition("c.L = 'C'", self.VARS)
        assert c == cond(C, "L", "=", Const("C"))

    def test_parse_double_quotes(self):
        c = parse_condition('c.L = "C"', self.VARS)
        assert c.right == Const("C")

    def test_parse_int_and_float(self):
        assert parse_condition("c.V = 5", self.VARS).right == Const(5)
        assert parse_condition("c.V = 5.5", self.VARS).right == Const(5.5)

    def test_parse_two_variable(self):
        c = parse_condition("c.ID = d.ID", self.VARS)
        assert c == cond(C, "ID", "=", Attr(D, "ID"))

    def test_parse_group_variable_with_plus(self):
        c = parse_condition("p+.L = 'P'", self.VARS)
        assert c.left.variable == P

    def test_parse_group_variable_without_plus(self):
        c = parse_condition("p.L = 'P'", self.VARS)
        assert c.left.variable == P

    def test_parse_all_operators(self):
        for text, op in [("c.V < 1", "<"), ("c.V <= 1", "<="),
                         ("c.V > 1", ">"), ("c.V >= 1", ">="),
                         ("c.V != 1", "!="), ("c.V <> 1", "!="),
                         ("c.V = 1", "=")]:
            assert parse_condition(text, self.VARS).op == op

    def test_parse_no_operator_raises(self):
        with pytest.raises(ValueError):
            parse_condition("c.L 'C'", self.VARS)

    def test_parse_left_constant_raises(self):
        with pytest.raises(ValueError):
            parse_condition("5 = c.V", self.VARS)

    def test_parse_bare_word_constant(self):
        c = parse_condition("c.L = C", self.VARS)
        assert c.right == Const("C")
