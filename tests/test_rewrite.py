"""Tests for semantics-preserving pattern rewrites (join closure)."""

import pytest

from repro import EventRelation, SESPattern, match
from repro.baseline import naive_match
from repro.core.rewrite import close_equality_joins, implied_equalities

from conftest import eids, ev


CHAIN = SESPattern(
    sets=[["a", "b", "m"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "m.kind = 'M'",
                "c.kind = 'C'",
                "a.tag = m.tag", "m.tag = b.tag", "b.tag = c.tag"],
    tau=100,
)

HIJACK_EVENTS = EventRelation([
    ev(1, "A", eid="aX", tag="X"),
    ev(2, "B", eid="bY", tag="Y"),
    ev(3, "B", eid="bX", tag="X"),
    ev(4, "M", eid="mX", tag="X"),
    ev(5, "C", eid="cX", tag="X"),
])


class TestImpliedEqualities:
    def test_chain_closure(self):
        implied = implied_equalities(CHAIN)
        rendered = {repr(c) for c in implied}
        # a-m, m-b, b-c given; implied: a-b, a-c, m-c.
        assert rendered == {"a.tag = b.tag", "a.tag = c.tag",
                            "c.tag = m.tag"} \
            or len(implied) == 3

    def test_no_joins_nothing_implied(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        assert implied_equalities(pattern) == []

    def test_complete_graph_nothing_implied(self):
        pattern = SESPattern(
            sets=[["a", "b", "c"]],
            conditions=["a.t = b.t", "a.t = c.t", "b.t = c.t"],
            tau=10,
        )
        assert implied_equalities(pattern) == []

    def test_cross_attribute_chains(self):
        """a.x = b.y and b.y = c.z implies a.x = c.z."""
        pattern = SESPattern(
            sets=[["a", "b", "c"]],
            conditions=["a.x = b.y", "b.y = c.z"],
            tau=10,
        )
        implied = implied_equalities(pattern)
        assert len(implied) == 1
        assert repr(implied[0]) in ("a.x = c.z", "c.z = a.x")

    def test_separate_components_not_mixed(self):
        pattern = SESPattern(
            sets=[["a", "b", "c", "d"]],
            conditions=["a.t = b.t", "c.t = d.t"],
            tau=10,
        )
        assert implied_equalities(pattern) == []


class TestCloseEqualityJoins:
    def test_identity_without_joins(self):
        pattern = SESPattern(sets=[["a"]], conditions=["a.kind = 'A'"], tau=5)
        assert close_equality_joins(pattern) is pattern

    def test_idempotent(self):
        closed = close_equality_joins(CHAIN)
        assert close_equality_joins(closed) == closed

    def test_preserves_structure(self):
        closed = close_equality_joins(CHAIN)
        assert closed.sets == CHAIN.sets
        assert closed.tau == CHAIN.tau
        assert set(CHAIN.conditions) <= set(closed.conditions)

    def test_recovers_hijacked_match(self):
        """The headline property: the chain pattern loses its match to a
        greedy hijack; the closed pattern does not."""
        intended = frozenset({"aX", "bX", "mX", "cX"})
        plain = [eids(m) for m in match(CHAIN, HIJACK_EVENTS)]
        closed = [eids(m) for m in match(close_equality_joins(CHAIN),
                                         HIJACK_EVENTS)]
        assert intended not in plain
        assert intended in closed

    def test_same_declarative_semantics(self):
        """Definition 2 results are identical for pattern and closure."""
        original = naive_match(CHAIN, HIJACK_EVENTS)
        closed = naive_match(close_equality_joins(CHAIN), HIJACK_EVENTS)
        assert [frozenset(m.bindings) for m in original] == \
            [frozenset(m.bindings) for m in closed]

    def test_greedy_closed_equals_exhaustive_original(self):
        """On this input, closing the joins recovers exactly what the
        exhaustive mode finds on the original pattern."""
        closed = match(close_equality_joins(CHAIN), HIJACK_EVENTS).matches
        exhaustive = match(CHAIN, HIJACK_EVENTS,
                           consume_mode="exhaustive").matches
        assert [frozenset(m.bindings) for m in closed] == \
            [frozenset(m.bindings) for m in exhaustive]

    def test_q1_unaffected(self, q1, figure1):
        closed = close_equality_joins(q1)
        assert match(closed, figure1).matches == match(q1, figure1).matches
