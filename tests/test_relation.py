"""Unit tests for repro.core.relation."""

import pytest

from repro import Event, EventRelation, EventSchema
from repro.core.events import SchemaError

from conftest import ev


class TestConstruction:
    def test_sorts_by_timestamp(self):
        r = EventRelation([ev(3), ev(1), ev(2)])
        assert [e.ts for e in r] == [1, 2, 3]

    def test_stable_on_ties(self):
        a, b = ev(1, eid="first"), ev(1, eid="second")
        r = EventRelation([a, b])
        assert [e.eid for e in r] == ["first", "second"]

    def test_schema_validation(self):
        schema = EventSchema(["kind"])
        r = EventRelation(schema=schema)
        r.append(ev(1))
        with pytest.raises(SchemaError):
            r.append(Event(ts=2, other="x"))

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            EventRelation(["not an event"])


class TestMutation:
    def test_append_in_order(self):
        r = EventRelation([ev(1)])
        r.append(ev(2))
        assert len(r) == 2

    def test_append_out_of_order_rejected(self):
        r = EventRelation([ev(5)])
        with pytest.raises(ValueError):
            r.append(ev(1))

    def test_append_tie_allowed(self):
        r = EventRelation([ev(5)])
        r.append(ev(5, eid="tie"))
        assert len(r) == 2

    def test_insert_places_chronologically(self):
        r = EventRelation([ev(1), ev(3)])
        r.insert(ev(2))
        assert [e.ts for e in r] == [1, 2, 3]

    def test_extend_resorts(self):
        r = EventRelation([ev(2)])
        r.extend([ev(1), ev(3)])
        assert [e.ts for e in r] == [1, 2, 3]


class TestAccess:
    def test_len_iter_getitem(self):
        r = EventRelation([ev(1), ev(2)])
        assert len(r) == 2
        assert r[0].ts == 1
        assert [e.ts for e in r] == [1, 2]

    def test_slice_returns_relation(self):
        r = EventRelation([ev(1), ev(2), ev(3)])
        sub = r[1:]
        assert isinstance(sub, EventRelation)
        assert len(sub) == 2

    def test_contains(self):
        e = ev(1)
        r = EventRelation([e])
        assert e in r
        assert ev(2) not in r

    def test_timespan(self):
        r = EventRelation([ev(3), ev(10)])
        assert r.timespan() == (3, 10)

    def test_timespan_empty_raises(self):
        with pytest.raises(ValueError):
            EventRelation().timespan()

    def test_equality(self):
        assert EventRelation([ev(1)]) == EventRelation([ev(1)])
        assert EventRelation([ev(1)]) != EventRelation([ev(2)])


class TestDerivations:
    def test_filter(self):
        r = EventRelation([ev(1, "A"), ev(2, "B")])
        only_a = r.filter(lambda e: e["kind"] == "A")
        assert len(only_a) == 1
        assert only_a[0]["kind"] == "A"

    def test_between_is_closed(self):
        r = EventRelation([ev(1), ev(2), ev(3), ev(4)])
        sliced = r.between(2, 3)
        assert [e.ts for e in sliced] == [2, 3]

    def test_partition_by(self):
        r = EventRelation([ev(1, pid=1), ev(2, pid=2), ev(3, pid=1)])
        parts = r.partition_by("pid")
        assert sorted(parts) == [1, 2]
        assert [e.ts for e in parts[1]] == [1, 3]
        assert [e.ts for e in parts[2]] == [2]

    def test_duplicated_counts(self):
        r = EventRelation([ev(1), ev(2)])
        d3 = r.duplicated(3)
        assert len(d3) == 6
        assert [e.ts for e in d3] == [1, 1, 1, 2, 2, 2]

    def test_duplicated_events_distinct(self):
        r = EventRelation([ev(1, eid="x")])
        d2 = r.duplicated(2)
        assert len({e.eid for e in d2}) == 2

    def test_duplicated_identity(self):
        r = EventRelation([ev(1)])
        assert len(r.duplicated(1)) == 1

    def test_duplicated_invalid_factor(self):
        with pytest.raises(ValueError):
            EventRelation([ev(1)]).duplicated(0)


class TestWindowSize:
    def test_empty_relation(self):
        assert EventRelation().window_size(10) == 0

    def test_all_in_one_window(self):
        r = EventRelation([ev(1), ev(2), ev(3)])
        assert r.window_size(10) == 3

    def test_window_is_closed(self):
        # Paper Example 9: tau=264 spans e1 (T=57) .. e14 (T=321) inclusive.
        r = EventRelation([ev(0), ev(264)])
        assert r.window_size(264) == 2

    def test_sliding(self):
        r = EventRelation([ev(0), ev(5), ev(6), ev(7), ev(20)])
        assert r.window_size(2) == 3  # events at 5, 6, 7

    def test_zero_tau_counts_ties(self):
        r = EventRelation([ev(1), ev(1, eid="dup"), ev(2)])
        assert r.window_size(0) == 2

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            EventRelation([ev(1)]).window_size(-1)

    def test_duplication_scales_window(self):
        """D2-D5 construction: duplication multiplies W (Section 5.1)."""
        r = EventRelation([ev(t) for t in range(20)])
        w1 = r.window_size(5)
        for factor in (2, 3, 4, 5):
            assert r.duplicated(factor).window_size(5) == factor * w1

    def test_paper_example9(self, figure1):
        assert figure1.window_size(264) == 14
