"""Tests for the unified observability layer (repro.obs)."""

import json
import logging

import pytest

from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.automaton.filtering import EventFilter
from repro.core.matcher import Matcher, match
from repro.obs import (NULL_REGISTRY, Counter, Gauge, Histogram,
                       MetricsRegistry, NullRegistry, Observability,
                       SpanTracer, configure_logging, get_logger, read_jsonl,
                       to_chrome_trace, to_jsonl, to_prometheus,
                       verbosity_level, write_chrome_trace, write_jsonl)
from repro.stream.partitioned import PartitionedContinuousMatcher
from repro.stream.runner import ContinuousMatcher

from conftest import ev, rel


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_increments(self):
        c = Counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1)

    def test_merge(self):
        a, b = Counter("x"), Counter("x")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge("omega")
        g.set(7)
        g.set(3)
        assert g.value == 3
        assert g.max_value == 7

    def test_inc_dec(self):
        g = Gauge("omega")
        g.inc(5)
        g.dec(2)
        assert g.value == 3
        assert g.max_value == 5

    def test_merge_sums_values_and_peaks(self):
        a, b = Gauge("omega"), Gauge("omega")
        a.set(2)
        b.set(5)
        a.merge(b)
        assert a.value == 7
        assert a.max_value == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            h.observe(value)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == 555.5

    def test_boundary_is_inclusive_upper(self):
        h = Histogram("lat", buckets=(1, 10))
        h.observe(1)
        assert h.counts == [1, 0, 0]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10, 1))

    def test_merge_requires_same_bounds(self):
        a = Histogram("lat", buckets=(1, 2))
        b = Histogram("lat", buckets=(1, 3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge(self):
        a = Histogram("lat", buckets=(1, 2))
        b = Histogram("lat", buckets=(1, 2))
        a.observe(0.5)
        b.observe(1.5)
        a.merge(b)
        assert a.count == 2
        assert a.counts == [1, 1, 0]


class TestRegistry:
    def test_get_or_create_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert len(r) == 1

    def test_kind_conflict(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError):
            r.gauge("a")

    def test_snapshot_sorted(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.gauge("a").set(2)
        snap = r.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"] == {"type": "counter", "help": "", "value": 1}

    def test_merge_disjoint_and_overlapping(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("only_b").inc(7)
        a.merge(b)
        assert a.counter("shared").value == 3
        assert a.counter("only_b").value == 7
        # merge deep-copies: b's counters are not aliased into a
        a.counter("only_b").inc()
        assert b.counter("only_b").value == 7

    def test_merged_classmethod(self):
        regs = []
        for _ in range(3):
            r = MetricsRegistry()
            r.counter("n").inc(2)
            regs.append(r)
        assert MetricsRegistry.merged(regs).counter("n").value == 6


class TestNullRegistry:
    def test_disabled_and_silent(self):
        r = NullRegistry()
        assert not r.enabled
        r.counter("a").inc()
        r.gauge("b").set(9)
        r.histogram("c").observe(1.0)
        assert r.snapshot() == {}

    def test_shared_singleton(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSpanTracer:
    def test_times_with_injected_clock(self):
        clock = FakeClock()
        spans = SpanTracer(clock=clock)
        with spans.span("work"):
            clock.now = 2.0
        stats = spans.stages()["work"]
        assert stats.count == 1
        assert stats.total_seconds == 2.0
        assert stats.self_seconds == 2.0

    def test_nesting_self_vs_total(self):
        clock = FakeClock()
        spans = SpanTracer(clock=clock)
        with spans.span("outer"):
            clock.now = 1.0
            with spans.span("inner"):
                clock.now = 4.0
            clock.now = 5.0
        outer = spans.stages()["outer"]
        assert outer.total_seconds == 5.0
        assert outer.self_seconds == 2.0  # 5 total - 3 in inner
        assert spans.stages()["inner"].total_seconds == 3.0

    def test_depth_and_records(self):
        spans = SpanTracer(keep_records=True)
        with spans.span("a"):
            assert spans.depth == 1
            with spans.span("b"):
                assert spans.depth == 2
        assert spans.depth == 0
        names = [(s.name, s.depth) for s in spans.records]
        assert names == [("b", 1), ("a", 0)]  # children close first

    def test_no_records_by_default(self):
        spans = SpanTracer()
        with spans.span("a"):
            pass
        assert spans.records == []

    def test_merge(self):
        clock = FakeClock()
        a, b = SpanTracer(clock=clock), SpanTracer(clock=clock)
        with a.span("s"):
            clock.now += 1.0
        with b.span("s"):
            clock.now += 2.0
        a.merge(b)
        assert a.stages()["s"].count == 2
        assert a.stages()["s"].total_seconds == 3.0

    def test_total_seconds_unseen_stage(self):
        assert SpanTracer().total_seconds("nope") == 0.0

    def test_exception_still_closes_span(self):
        spans = SpanTracer()
        with pytest.raises(RuntimeError):
            with spans.span("boom"):
                raise RuntimeError()
        assert spans.depth == 0
        assert spans.stages()["boom"].count == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
@pytest.fixture
def sample_snapshot():
    r = MetricsRegistry()
    r.counter("events_total", help="events read").inc(10)
    r.gauge("omega").set(4)
    h = r.histogram("latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    snap = r.snapshot()
    snap["repro_stage_filter"] = {"type": "stage", "count": 3,
                                  "total_seconds": 0.5, "self_seconds": 0.5}
    return snap


class TestJsonl:
    def test_round_trip(self, sample_snapshot, tmp_path):
        path = write_jsonl(sample_snapshot, tmp_path / "m.jsonl")
        assert read_jsonl(path) == sample_snapshot

    def test_one_json_object_per_line(self, sample_snapshot):
        lines = to_jsonl(sample_snapshot).strip().splitlines()
        assert len(lines) == len(sample_snapshot)
        for line in lines:
            assert "name" in json.loads(line)

    def test_append_last_wins(self, sample_snapshot, tmp_path):
        path = tmp_path / "m.jsonl"
        write_jsonl(sample_snapshot, path)
        newer = {"events_total": {"type": "counter", "help": "", "value": 99}}
        write_jsonl(newer, path, append=True)
        assert read_jsonl(path)["events_total"]["value"] == 99

    def test_empty_snapshot(self, tmp_path):
        path = write_jsonl({}, tmp_path / "empty.jsonl")
        assert read_jsonl(path) == {}


class TestPrometheus:
    def test_counter_gauge_lines(self, sample_snapshot):
        text = to_prometheus(sample_snapshot)
        assert "# TYPE events_total counter" in text
        assert "events_total 10" in text
        assert "# HELP events_total events read" in text
        assert "omega 4" in text
        assert "omega_max 4" in text

    def test_histogram_cumulative_buckets(self, sample_snapshot):
        text = to_prometheus(sample_snapshot)
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text

    def test_stage_rendering(self, sample_snapshot):
        text = to_prometheus(sample_snapshot)
        assert "repro_stage_filter_seconds_total 0.5" in text
        assert "repro_stage_filter_calls_total 3" in text

    def test_name_sanitisation(self):
        text = to_prometheus(
            {"a.b-c": {"type": "counter", "value": 1}})
        assert "a_b_c 1" in text

    def test_histogram_inf_bucket_equals_count(self, sample_snapshot):
        """The cumulative invariant: +Inf must equal _count exactly."""
        text = to_prometheus(sample_snapshot)
        buckets = {}
        count = None
        for line in text.splitlines():
            if line.startswith('latency_bucket{le="'):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = int(line.rsplit(" ", 1)[1])
            elif line.startswith("latency_count "):
                count = int(line.rsplit(" ", 1)[1])
        assert buckets["+Inf"] == count == 3
        # monotonic cumulative series
        values = list(buckets.values())
        assert values == sorted(values)

    def test_histogram_without_overflow_field_stays_consistent(self):
        """A record lacking "overflow" (e.g. a hand-written or truncated
        snapshot) must still render +Inf == _count, derived from the
        bucket counts rather than trusting the redundant "count"."""
        snap = {"latency": {"type": "histogram",
                            "buckets": [[0.1, 1], [1.0, 1]],
                            "sum": 5.0, "count": 7}}
        text = to_prometheus(snap)
        assert 'latency_bucket{le="+Inf"} 7' in text
        assert "latency_count 7" in text

    def test_histogram_count_below_buckets_never_regresses(self):
        """+Inf is never smaller than the last finite bucket, even when
        the redundant "count" field disagrees with the bucket counts."""
        snap = {"latency": {"type": "histogram",
                            "buckets": [[0.1, 2], [1.0, 3]],
                            "sum": 5.0, "count": 1}}
        text = to_prometheus(snap)
        assert 'latency_bucket{le="1.0"} 5' in text
        assert 'latency_bucket{le="+Inf"} 5' in text
        assert "latency_count 5" in text

    def test_help_text_escaped(self):
        snap = {"weird": {"type": "counter", "value": 1,
                          "help": "line one\nback\\slash"}}
        text = to_prometheus(snap)
        assert "# HELP weird line one\\nback\\\\slash" in text
        assert "\nline one" not in text  # no raw newline leaks into HELP


class TestPrometheusLabels:
    def test_label_values_escaped(self):
        snap = {"m[x]": {"type": "counter", "value": 3,
                         "metric": "m",
                         "labels": {"pattern": 'he said "hi" \\ bye\nend'}}}
        text = to_prometheus(snap)
        assert ('m{pattern="he said \\"hi\\" \\\\ bye\\nend"} 3'
                in text)
        assert "\nend\"}" not in text  # no raw newline inside the sample

    def test_labeled_series_group_under_one_header(self):
        snap = {
            "m[a]": {"type": "counter", "value": 1, "help": "per pattern",
                     "metric": "m", "labels": {"pattern": "a"}},
            "m[b]": {"type": "counter", "value": 2,
                     "metric": "m", "labels": {"pattern": "b"}},
        }
        text = to_prometheus(snap)
        assert text.count("# TYPE m counter") == 1
        assert 'm{pattern="a"} 1' in text
        assert 'm{pattern="b"} 2' in text

    def test_labels_sorted_deterministically(self):
        snap = {"m": {"type": "gauge", "value": 1,
                      "labels": {"zeta": "z", "alpha": "a"}}}
        text = to_prometheus(snap)
        assert 'm{alpha="a",zeta="z"} 1' in text

    def test_labeled_histogram_buckets_merge_le(self):
        snap = {"h": {"type": "histogram", "help": "",
                      "buckets": [[0.1, 1], [1.0, 1]], "overflow": 0,
                      "sum": 0.6, "count": 2,
                      "labels": {"pattern": "p"}}}
        text = to_prometheus(snap)
        assert 'h_bucket{pattern="p",le="0.1"} 1' in text
        assert 'h_bucket{pattern="p",le="+Inf"} 2' in text
        assert 'h_count{pattern="p"} 2' in text

    def test_registry_round_trip_keeps_labels(self):
        registry = MetricsRegistry()
        registry.counter("m[a]", labels={"pattern": "a"}, metric="m").inc(2)
        merged = MetricsRegistry()
        merged.merge_snapshot(registry.snapshot())
        record = merged.snapshot()["m[a]"]
        assert record["labels"] == {"pattern": "a"}
        assert record["metric"] == "m"


class TestQuantiles:
    def test_linear_interpolation_within_bucket(self):
        h = Histogram("lat", buckets=(10, 20))
        for _ in range(4):
            h.observe(5)  # all in the first bucket
        # rank 2 of 4 -> halfway through [0, 10]
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_median_across_buckets(self):
        h = Histogram("lat", buckets=(1, 2, 3))
        for value in (0.5, 1.5, 2.5):
            h.observe(value)
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) == pytest.approx(3.0)

    def test_overflow_clamps_to_highest_bound(self):
        h = Histogram("lat", buckets=(1, 2))
        h.observe(100)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_is_none(self):
        assert Histogram("lat", buckets=(1,)).quantile(0.5) is None

    def test_rejects_out_of_range(self):
        h = Histogram("lat", buckets=(1,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_snapshot_quantile_matches_live(self):
        from repro.obs import snapshot_quantile
        h = Histogram("lat", buckets=(1, 2, 5))
        for value in (0.1, 0.9, 1.1, 3.0, 7.0):
            h.observe(value)
        record = h.snapshot()
        for q in (0.5, 0.95, 0.99):
            assert snapshot_quantile(record, q) == pytest.approx(
                h.quantile(q))

    def test_snapshot_quantile_ignores_non_histograms(self):
        from repro.obs import snapshot_quantile
        assert snapshot_quantile({"type": "counter", "value": 1}, 0.5) is None


# ----------------------------------------------------------------------
# Observability bundle + engine integration
# ----------------------------------------------------------------------
class TestObservability:
    def test_stage_rows_pipeline_order(self):
        clock = FakeClock()
        obs = Observability(spans=SpanTracer(clock=clock))
        for name in ("select", "consume", "filter"):
            with obs.span(name):
                clock.now += 1.0
        assert [row[0] for row in obs.stage_rows()] == [
            "filter", "consume", "select"]

    def test_merged(self):
        bundles = []
        for _ in range(2):
            obs = Observability()
            obs.omega(3)
            obs.event_seconds(0.001)
            bundles.append(obs)
        merged = Observability.merged(bundles)
        assert merged.registry.gauge("ses_omega_instances").max_value == 6
        assert merged.registry.histogram(
            "ses_event_latency_seconds").count == 2

    def test_snapshot_includes_stages(self):
        obs = Observability()
        with obs.span("filter"):
            pass
        assert "repro_stage_filter" in obs.snapshot()


class TestExecutorIntegration:
    def test_stage_timings_and_counters(self, kind_pattern):
        obs = Observability()
        result = match(kind_pattern,
                       rel(ev(1, "A"), ev(2, "B"), ev(3, "X"), ev(4, "C")),
                       obs=obs)
        assert len(result) == 1
        stages = obs.spans.stages()
        assert set(stages) == {"filter", "consume", "select"}
        assert stages["filter"].count == 4      # every event is filtered
        assert stages["consume"].count == 3     # X is rejected pre-loop
        assert stages["select"].count == 1
        snap = obs.snapshot()
        assert snap["ses_events_read_total"]["value"] == 4
        assert snap["ses_filter_rejected_total"]["value"] == 1
        assert snap["ses_matches_total"]["value"] == 1
        assert snap["ses_event_latency_seconds"]["count"] == 4

    def test_omega_gauge_matches_stats_peak(self, kind_pattern):
        obs = Observability()
        result = match(kind_pattern, rel(*[ev(t, "A") for t in range(1, 6)]),
                       obs=obs)
        gauge = obs.registry.gauge("ses_omega_instances")
        assert gauge.max_value == result.stats.max_simultaneous_instances

    def test_lifetime_observed_on_expiry(self, kind_pattern):
        obs = Observability()
        # 'a' binds at T=1; T=200 > tau=100 expires the instance.
        match(kind_pattern, rel(ev(1, "A"), ev(200, "B")), obs=obs)
        lifetime = obs.registry.histogram("ses_instance_lifetime")
        assert lifetime.count >= 1
        assert lifetime.sum >= 199

    def test_uninstrumented_executor_has_no_obs(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        assert executor.obs is None
        result = executor.run([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert len(result) == 1

    def test_filter_counters_bound_once(self, kind_pattern):
        obs = Observability()
        matcher = Matcher(kind_pattern, obs=obs)
        matcher.run(rel(ev(1, "A"), ev(2, "Z")))
        snap = obs.snapshot()
        assert (snap["ses_filter_admitted_total"]["value"]
                + snap["ses_filter_rejected_total"]["value"]) == 2

    def test_filter_unbound_by_default(self, kind_pattern):
        event_filter = EventFilter(kind_pattern)
        assert event_filter.admits(ev(1, "A"))
        assert event_filter._admitted_counter is None


class TestStreamIntegration:
    def test_continuous_matcher_counts_reports(self, kind_pattern):
        obs = Observability()
        matcher = ContinuousMatcher(kind_pattern, obs=obs)
        matcher.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        matcher.close()
        counter = obs.registry.counter("ses_stream_matches_reported_total")
        assert counter.value == len(matcher.matches) == 1

    def test_partitioned_aggregation(self):
        from repro.core.pattern import SESPattern
        pattern = SESPattern(
            sets=[["a", "b"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "a.key = b.key"],
            tau=100,
        )
        obs = Observability()
        pm = PartitionedContinuousMatcher(pattern, attribute="key", obs=obs)
        pm.push_many([
            ev(1, "A", key=1), ev(2, "B", key=1),
            ev(3, "A", key=2), ev(4, "B", key=2),
        ])
        pm.close()
        assert obs.registry.gauge("ses_stream_partitions").value == 2
        agg = pm.aggregate()
        snap = agg.snapshot()
        assert snap["ses_events_read_total"]["value"] == 4
        assert snap["ses_stream_matches_reported_total"]["value"] == 2

    def test_collect_folds_metrics_into_root(self):
        from repro.core.pattern import SESPattern
        pattern = SESPattern(
            sets=[["a"]], conditions=["a.kind = 'A'", "a.key = a.key"],
            tau=10,
        )
        obs = Observability()
        pm = PartitionedContinuousMatcher(pattern, attribute="key", obs=obs)
        pm.push(ev(1, "Z", key=1))  # filtered; partition stays idle
        collected = pm.collect(now=1000)
        assert collected == 1
        # The dead partition's events_read counter survives in the root.
        assert pm.aggregate().snapshot()["ses_events_read_total"]["value"] == 1

    def test_unobserved_partitioned_matcher(self):
        from repro.core.pattern import SESPattern
        pattern = SESPattern(
            sets=[["a"]], conditions=["a.kind = 'A'", "a.key = a.key"],
            tau=10,
        )
        pm = PartitionedContinuousMatcher(pattern, attribute="key")
        pm.push(ev(1, "A", key=1))
        assert pm.aggregate() is None


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_get_logger_anchors_names(self):
        assert get_logger("bench").name == "repro.bench"
        assert get_logger("repro.automaton.executor").name == (
            "repro.automaton.executor")
        assert get_logger().name == "repro"

    def test_verbosity_mapping(self):
        assert verbosity_level(-1) == logging.ERROR
        assert verbosity_level(0) == logging.WARNING
        assert verbosity_level(1) == logging.INFO
        assert verbosity_level(2) == logging.DEBUG
        assert verbosity_level(5) == logging.DEBUG

    def test_configure_is_idempotent(self):
        root = configure_logging(1)
        configure_logging(2)
        ours = [h for h in root.handlers
                if getattr(h, "_repro_configured", False)]
        assert len(ours) == 1
        assert root.level == logging.DEBUG
        root.removeHandler(ours[0])
        root.setLevel(logging.NOTSET)

    def test_executor_logs_run_summary(self, kind_pattern, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            match(kind_pattern, rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        assert any("run complete" in r.message for r in caplog.records)


class TestBenchHarnessObs:
    def test_measured_returns_bundle(self):
        from repro.bench import measured
        result, obs = measured(sum, [1, 2, 3])
        assert result == 6
        assert obs.spans.stages()["run"].count == 1

    def test_rows_to_snapshot(self):
        from repro.bench import rows_to_snapshot
        rows = [{"pattern": "P1", "n_vars": 3, "ses_seconds": 0.5,
                 "ses_instances": 12}]
        snap = rows_to_snapshot("exp1", rows)
        assert snap["bench_exp1_p1_3_ses_seconds"]["value"] == 0.5
        assert snap["bench_exp1_p1_3_ses_instances"]["value"] == 12
        assert "bench_exp1_p1_3_n_vars" not in snap


# ----------------------------------------------------------------------
# Chrome trace export (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
class TestChromeTrace:
    def run_traced(self, kind_pattern):
        from repro.obs import FlightRecorder
        from repro.plan.cache import compile as compile_plan
        obs = Observability(spans=SpanTracer(keep_records=True))
        flight = FlightRecorder()
        plan = compile_plan(kind_pattern)
        plan.executor(observability=obs, flight=flight).run(
            rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        return obs, flight

    def test_spans_become_duration_events(self, kind_pattern):
        obs, _ = self.run_traced(kind_pattern)
        doc = to_chrome_trace(spans=obs.spans)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        for event in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["pid"] == 1
            assert event["dur"] >= 0
        assert {"filter", "consume"} <= {e["name"] for e in xs}

    def test_lifecycles_become_async_pairs(self, kind_pattern):
        _, flight = self.run_traced(kind_pattern)
        doc = to_chrome_trace(flight=flight)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) > 0
        for b, e in zip(begins, ends):
            assert b["id"] == e["id"]
            assert b["pid"] == e["pid"] == 2
            assert b["ts"] <= e["ts"]

    def test_document_is_json_with_required_fields(self, kind_pattern):
        obs, flight = self.run_traced(kind_pattern)
        doc = json.loads(json.dumps(
            to_chrome_trace(spans=obs.spans, flight=flight)))
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert "ph" in event and "pid" in event
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))

    def test_tracer_steps_accepted(self, kind_pattern):
        from repro.automaton.trace import Tracer
        from repro.plan.cache import compile as compile_plan
        tracer = Tracer()
        compile_plan(kind_pattern).executor(tracer=tracer).run(
            rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        doc = to_chrome_trace(steps=tracer)
        assert any(e["ph"] == "b" for e in doc["traceEvents"])

    def test_empty_inputs_yield_metadata_only(self):
        doc = to_chrome_trace()
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_write_chrome_trace(self, kind_pattern, tmp_path):
        obs, flight = self.run_traced(kind_pattern)
        path = write_chrome_trace(tmp_path / "trace.json",
                                  spans=obs.spans, flight=flight)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) > 2
