"""Tests for the plain-text chart renderers."""

import pytest

from repro.bench import bar_chart, series_chart


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart(["a", "b"], [10, 20], width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 10, "peak fills the width"
        assert lines[0].count("█") == 5

    def test_title(self):
        text = bar_chart(["a"], [1], title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_values_rendered(self):
        text = bar_chart(["a"], [1234], unit=" ops")
        assert "1234 ops" in text

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0, 5])
        assert "█" in text  # the nonzero bar
        lines = text.splitlines()
        assert "█" not in lines[0]

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [10, 1000], width=30)
        log = bar_chart(["a", "b"], [10, 1000], width=30, log=True)
        small_linear = linear.splitlines()[0].count("█")
        small_log = log.splitlines()[0].count("█")
        assert small_log > small_linear

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_labels_aligned(self):
        text = bar_chart(["x", "longer"], [1, 2])
        # All bars start at the same column.
        bar_columns = [line.find("█") for line in text.splitlines()
                       if "█" in line]
        assert len(set(bar_columns)) == 1


class TestSeriesChart:
    def test_shared_scale_across_series(self):
        text = series_chart(["x1", "x2"],
                            [("big", [100, 200]), ("small", [10, 20])],
                            width=20)
        lines = text.splitlines()
        big_peak = max(line.count("█") for line in lines[1:3])
        small_peak = max(line.count("█") for line in lines[4:6])
        assert big_peak == 20
        assert small_peak == 2

    def test_series_names_present(self):
        text = series_chart(["x"], [("alpha", [1]), ("beta", [2])])
        assert "alpha:" in text and "beta:" in text

    def test_empty_series(self):
        assert series_chart([], [], title="t") == "t"

    def test_unit_suffix(self):
        text = series_chart(["x"], [("s", [1.5])], unit=" s")
        assert "1.5 s" in text
