"""Edge-case tests for construction and execution."""

import pytest

from repro import Event, EventRelation, SESPattern, match
from repro.automaton.builder import build_automaton
from repro.baseline import naive_match

from conftest import eids, ev


class TestGroupInLastSet:
    """A group variable in the final set loops at the accepting state."""

    PATTERN = SESPattern(
        sets=[["a"], ["b+"]],
        conditions=["a.kind = 'A'", "b.kind = 'B'"],
        tau=20,
    )

    def test_loop_at_accepting_state(self):
        automaton = build_automaton(self.PATTERN)
        loops = automaton.loops_at(automaton.accepting)
        assert len(loops) == 1
        assert loops[0].variable.name == "b"

    def test_greedy_extends_at_accepting(self):
        result = match(self.PATTERN, [ev(1, "A"), ev(2, "B"), ev(3, "B")])
        assert [eids(m) for m in result] == [frozenset({"a1", "b2", "b3"})]

    def test_emission_waits_for_expiry(self):
        """The match is only emitted once no further b can belong to it."""
        from repro.automaton.executor import SESExecutor
        executor = SESExecutor(build_automaton(self.PATTERN))
        executor.feed(ev(1, "A"))
        executor.feed(ev(2, "B"))
        emitted = executor.feed(ev(3, "B"))
        assert emitted == [], "still extendable"
        emitted = executor.feed(ev(100, "X"))
        assert len(emitted) == 1
        assert len(emitted[0]) == 3

    def test_agrees_with_oracle(self):
        events = [ev(1, "A"), ev(2, "B"), ev(5, "B"), ev(30, "B")]
        assert (match(self.PATTERN, events).matches
                == naive_match(self.PATTERN, events))


class TestManySets:
    def test_four_phases(self):
        pattern = SESPattern(
            sets=[["a"], ["b"], ["c"], ["d"]],
            conditions=[f"{v}.kind = '{v.upper()}'" for v in "abcd"],
            tau=50,
        )
        events = [ev(1, "A"), ev(2, "B"), ev(3, "C"), ev(4, "D")]
        assert len(match(pattern, events)) == 1
        scrambled = [ev(1, "B"), ev(2, "A"), ev(3, "C"), ev(4, "D")]
        assert match(pattern, scrambled).matches == []

    def test_group_in_middle_set(self):
        pattern = SESPattern(
            sets=[["a"], ["p+"], ["z"]],
            conditions=["a.kind = 'A'", "p.kind = 'P'", "z.kind = 'Z'"],
            tau=50,
        )
        events = [ev(1, "A"), ev(2, "P"), ev(3, "P"), ev(4, "Z")]
        result = match(pattern, events)
        assert [eids(m) for m in result] == [
            frozenset({"a1", "p2", "p3", "z4"})
        ]

    def test_middle_group_cannot_extend_after_next_set(self):
        pattern = SESPattern(
            sets=[["a"], ["p+"], ["z"]],
            conditions=["a.kind = 'A'", "p.kind = 'P'", "z.kind = 'Z'"],
            tau=50,
        )
        events = [ev(1, "A"), ev(2, "P"), ev(3, "Z"), ev(4, "P"), ev(5, "Z")]
        result = match(pattern, events)
        assert [eids(m) for m in result] == [frozenset({"a1", "p2", "z3"})]


class TestDegeneratePatterns:
    def test_single_singleton(self):
        pattern = SESPattern(sets=[["a"]], conditions=["a.kind = 'A'"], tau=0)
        result = match(pattern, [ev(1, "A"), ev(2, "A")])
        assert len(result) == 2

    def test_single_group_tau_zero(self):
        pattern = SESPattern(sets=[["p+"]], conditions=["p.kind = 'P'"], tau=0)
        # tau=0: only simultaneous events share a match.
        events = [ev(1, "P"), ev(1, "P", eid="p1b"), ev(2, "P")]
        result = match(pattern, events)
        assert [eids(m) for m in result] == [
            frozenset({"p1", "p1b"}), frozenset({"p2"})
        ]

    def test_no_conditions_at_all(self):
        pattern = SESPattern(sets=[["x"], ["y"]], tau=10)
        result = match(pattern, [ev(1, "A"), ev(2, "B")])
        assert len(result) == 1

    def test_empty_relation(self, q1):
        assert match(q1, EventRelation()).matches == []

    def test_relation_shorter_than_pattern(self, q1, figure1):
        assert match(q1, figure1[:2]).matches == []


class TestTimestampDomains:
    def test_float_timestamps(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=1.5)
        events = [Event(ts=0.25, eid="a", kind="A"),
                  Event(ts=1.75, eid="b", kind="B")]
        assert len(match(pattern, events)) == 1
        too_late = [Event(ts=0.25, eid="a", kind="A"),
                    Event(ts=2.0, eid="b", kind="B")]
        assert match(pattern, too_late).matches == []

    def test_negative_timestamps(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=10)
        events = [ev(-5, "A"), ev(-1, "B")]
        assert len(match(pattern, events)) == 1


class TestConditionShapes:
    def test_user_written_time_condition(self):
        """Users may constrain T directly (e.g. minimum gaps)."""
        pattern = SESPattern(
            sets=[["a"], ["b"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "b.V > a.V"],
            tau=10,
        )
        rising = [ev(1, "A", V=1), ev(2, "B", V=5)]
        falling = [ev(1, "A", V=5), ev(2, "B", V=1)]
        assert len(match(pattern, rising)) == 1
        assert match(pattern, falling).matches == []

    def test_inequality_between_set_members(self):
        pattern = SESPattern(
            sets=[["lo", "hi"]],
            conditions=["lo.kind = 'N'", "hi.kind = 'N'", "lo.V < hi.V"],
            tau=10,
        )
        events = [ev(1, "N", V=3), ev(2, "N", V=8)]
        result = match(pattern, events, selection="all-starts")
        assert len(result) == 1
        substitution = result.matches[0]
        lo = pattern.variable("lo")
        assert substitution.events_of(lo)[0]["V"] == 3

    def test_group_self_spanning_condition(self):
        """A condition between a group variable and a singleton applies to
        every group binding."""
        pattern = SESPattern(
            sets=[["base", "p+"]],
            conditions=["base.kind = 'X'", "p.kind = 'P'",
                        "p.V >= base.V"],
            tau=10,
        )
        events = [ev(1, "X", V=5), ev(2, "P", V=7), ev(3, "P", V=3),
                  ev(4, "P", V=9)]
        result = match(pattern, events)
        assert len(result) == 1
        p = pattern.variable("p")
        values = [e["V"] for e in result.matches[0].events_of(p)]
        assert values == [7, 9], "the V=3 event fails p.V >= base.V"
