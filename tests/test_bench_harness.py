"""Tests for the benchmark harness, report rendering, and experiments."""

import pytest

from repro.bench import (PROFILES, format_table, resolve_profile,
                         run_experiment1, run_experiment2, run_experiment3,
                         timed)
from repro.data import generate_chemo


@pytest.fixture(scope="module")
def tiny_relation():
    return generate_chemo(patients=2, cycles=1, seed=5)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"quick", "default", "large"}

    def test_resolve_by_name(self):
        assert resolve_profile("quick").name == "quick"

    def test_resolve_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "large")
        assert resolve_profile().name == "large"

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert resolve_profile().name == "default"

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            resolve_profile("galactic")

    def test_profile_relations_deterministic(self):
        profile = resolve_profile("quick")
        assert profile.exp1_relation().events == profile.exp1_relation().events
        assert len(profile.exp23_base()) > 0

    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0


class TestReport:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["short", 1], ["a-longer-name", 123456]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1, "columns aligned"

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.001234], [12.3456], [4567.8]])
        assert "0.001" in text
        assert "12.35" in text
        assert "4568" in text


class TestExperimentRunners:
    def test_experiment1_rows(self, tiny_relation):
        rows = run_experiment1(tiny_relation, max_vars=3)
        assert {r["pattern"] for r in rows} == {"P1", "P2"}
        assert {r["n_vars"] for r in rows} == {2, 3}
        for row in rows:
            assert row["ses_instances"] >= 0
            assert row["bf_instances"] >= 0
            assert row["ratio"] > 0

    def test_experiment1_exclusive_only(self, tiny_relation):
        rows = run_experiment1(tiny_relation, max_vars=2, exclusive_only=True)
        assert {r["pattern"] for r in rows} == {"P1"}

    def test_experiment2_rows(self, tiny_relation):
        rows = run_experiment2(tiny_relation, factors=(1, 2))
        assert [r["dataset"] for r in rows] == ["D1", "D2"]
        assert rows[1]["window"] == 2 * rows[0]["window"]
        assert rows[1]["p3_instances"] >= rows[0]["p3_instances"]

    def test_experiment3_rows(self, tiny_relation):
        rows = run_experiment3(tiny_relation, factors=(1,))
        row = rows[0]
        assert row["dataset"] == "D1"
        for key in ("p5_without", "p5_with", "p6_without", "p6_with"):
            assert row[key] >= 0
        assert row["p5_filtered_events"] > 0

    def test_printers_do_not_crash(self, tiny_relation, capsys):
        from repro.bench import (print_experiment1, print_experiment2,
                                 print_experiment3)
        print_experiment1(run_experiment1(tiny_relation, max_vars=2))
        print_experiment2(run_experiment2(tiny_relation, factors=(1,)))
        print_experiment3(run_experiment3(tiny_relation, factors=(1,)))
        out = capsys.readouterr().out
        assert "Experiment 1" in out
        assert "Experiment 2" in out
        assert "Experiment 3" in out
        assert "Table 1" in out


class TestBenchMain:
    def test_main_quick_profile(self, capsys, monkeypatch):
        import repro.bench.__main__ as bench_main
        # Shrink the quick profile further for test speed.
        from repro.bench.harness import PROFILES, Profile
        monkeypatch.setitem(PROFILES, "quick", Profile(
            "quick", exp1_patients=2, exp1_cycles=1, exp1_max_vars=2,
            exp23_patients=2, exp23_cycles=1, factors=(1,)))
        code = bench_main.main(["quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile: quick" in out
        assert "Experiment 3" in out


class TestScaling:
    def test_workers_ladder(self):
        from repro.bench.scaling import workers_ladder
        assert workers_ladder(1) == [1]
        assert workers_ladder(4) == [1, 2, 4]
        assert workers_ladder(6) == [1, 2, 4, 6]
        with pytest.raises(ValueError):
            workers_ladder(0)

    def test_run_scaling_rows_and_snapshot(self, tiny_relation):
        from repro.bench.scaling import run_scaling, scaling_snapshot
        rows = run_scaling(tiny_relation, workers=(1, 2))
        assert [row["workers"] for row in rows] == [1, 2]
        assert rows[0]["speedup"] == 1.0
        assert len({row["matches"] for row in rows}) == 1
        snapshot = scaling_snapshot(rows)
        assert snapshot["bench_scaling_w2_speedup"]["type"] == "gauge"
        assert snapshot["bench_scaling_w1_seconds"]["value"] > 0
