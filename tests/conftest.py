"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import pytest

from repro import Event, EventRelation, SESPattern
from repro.data.paper_events import figure1_relation, query_q1


def ev(ts: int, kind: str = "A", eid: str = None, **attrs) -> Event:
    """Shorthand event constructor used throughout the tests."""
    attrs.setdefault("kind", kind)
    return Event(ts=ts, eid=eid or f"{kind.lower()}{ts}", **attrs)


def rel(*events: Event) -> EventRelation:
    """Build a relation from events (sorted automatically)."""
    return EventRelation(events)


def eids(substitution) -> frozenset:
    """The set of event ids bound by a substitution."""
    return frozenset(e.eid for e in substitution.events())


def bindings(substitution) -> frozenset:
    """Bindings as ``"v/eid"`` strings, order-independent."""
    return frozenset(f"{v!r}/{e.eid}" for v, e in substitution.bindings)


@pytest.fixture
def figure1():
    """The paper's Figure 1 relation."""
    return figure1_relation()


@pytest.fixture
def q1():
    """The paper's Query Q1 pattern."""
    return query_q1()


@pytest.fixture
def kind_pattern():
    """A simple two-set pattern over 'kind' attributes: {a, b} then {c}."""
    return SESPattern(
        sets=[["a", "b"], ["c"]],
        conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'"],
        tau=100,
    )
