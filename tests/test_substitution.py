"""Unit tests for repro.core.substitution."""

import pytest

from repro import Event, SESPattern, Substitution
from repro.core.conditions import parse_condition
from repro.core.variables import group, var

C, D, B = var("c"), var("d"), var("b")
P = group("p")


def e(ts, eid, **attrs):
    return Event(ts=ts, eid=eid, **attrs)


class TestConstruction:
    def test_empty(self):
        g = Substitution()
        assert len(g) == 0
        assert not g

    def test_single_binding(self):
        g = Substitution([(C, e(1, "e1"))])
        assert len(g) == 1
        assert (C, e(1, "e1")) in g

    def test_singleton_variable_single_binding_enforced(self):
        with pytest.raises(ValueError):
            Substitution([(C, e(1, "e1")), (C, e(2, "e2"))])

    def test_group_variable_multiple_bindings(self):
        g = Substitution([(P, e(1, "e1")), (P, e(2, "e2"))])
        assert len(g) == 2
        assert [x.eid for x in g.events_of(P)] == ["e1", "e2"]

    def test_duplicate_binding_collapsed(self):
        ev = e(1, "e1")
        g = Substitution([(C, ev), (C, ev)])
        assert len(g) == 1

    def test_from_mapping(self):
        g = Substitution.from_mapping({C: e(1, "e1"), P: [e(2, "e2"), e(3, "e3")]})
        assert len(g) == 3

    def test_extend_returns_new(self):
        g = Substitution([(C, e(1, "e1"))])
        g2 = g.extend(D, e(2, "e2"))
        assert len(g) == 1
        assert len(g2) == 2


class TestAccess:
    def test_variables(self):
        g = Substitution([(C, e(1, "e1")), (P, e(2, "e2"))])
        assert g.variables == {C, P}

    def test_events_chronological(self):
        g = Substitution([(P, e(3, "x")), (C, e(1, "y")), (D, e(2, "z"))])
        assert [x.eid for x in g.events()] == ["y", "z", "x"]

    def test_events_of_missing_variable(self):
        assert Substitution().events_of(C) == ()

    def test_iteration_ordered_by_time(self):
        g = Substitution([(D, e(2, "z")), (C, e(1, "y"))])
        assert [ev.eid for _, ev in g] == ["y", "z"]


class TestTemporal:
    def test_min_max_span(self):
        g = Substitution([(C, e(5, "a")), (D, e(12, "b"))])
        assert g.min_ts() == 5
        assert g.max_ts() == 12
        assert g.span() == 7

    def test_min_binding(self):
        g = Substitution([(C, e(5, "a")), (D, e(12, "b"))])
        v, ev = g.min_binding()
        assert (v, ev.eid) == (C, "a")

    def test_empty_temporal_raises(self):
        with pytest.raises(ValueError):
            Substitution().min_ts()
        with pytest.raises(ValueError):
            Substitution().max_ts()
        with pytest.raises(ValueError):
            Substitution().min_binding()


class TestDecomposition:
    def test_example3_decomposition(self):
        """Paper Example 3: two bindings for p+ give two decompositions."""
        g = Substitution([
            (C, e(1, "e1")), (D, e(3, "e3")),
            (P, e(4, "e4")), (P, e(9, "e9")), (B, e(12, "e12")),
        ])
        decomposed = list(g.decompose())
        assert len(decomposed) == 2
        p_events = sorted(d.events_of(P)[0].eid for d in decomposed)
        assert p_events == ["e4", "e9"]
        for d in decomposed:
            assert len(d.events_of(P)) == 1
            assert d.events_of(C)[0].eid == "e1"

    def test_two_group_variables_product(self):
        q = group("q")
        g = Substitution([(P, e(1, "a")), (P, e(2, "b")),
                          (q, e(3, "x")), (q, e(4, "y"))])
        assert len(list(g.decompose())) == 4


class TestSatisfies:
    VARS = {"c": C, "d": D, "p": P, "b": B}

    def cond(self, text):
        return parse_condition(text, self.VARS)

    def test_constant_condition(self):
        g = Substitution([(C, e(1, "e1", L="C"))])
        assert g.satisfies([self.cond("c.L = 'C'")])
        assert not g.satisfies([self.cond("c.L = 'D'")])

    def test_group_condition_checks_every_binding(self):
        good = Substitution([(P, e(1, "a", L="P")), (P, e(2, "b", L="P"))])
        bad = Substitution([(P, e(1, "a", L="P")), (P, e(2, "b", L="X"))])
        cond = self.cond("p.L = 'P'")
        assert good.satisfies([cond])
        assert not bad.satisfies([cond])

    def test_cross_variable_condition_all_combinations(self):
        cond = self.cond("c.ID = p.ID")
        good = Substitution([(C, e(1, "c", ID=1)),
                             (P, e(2, "p1", ID=1)), (P, e(3, "p2", ID=1))])
        bad = Substitution([(C, e(1, "c", ID=1)),
                            (P, e(2, "p1", ID=1)), (P, e(3, "p2", ID=2))])
        assert good.satisfies([cond])
        assert not bad.satisfies([cond])

    def test_unbound_variables_skipped(self):
        g = Substitution([(C, e(1, "c", ID=1))])
        assert g.satisfies([self.cond("c.ID = p.ID")])

    def test_is_total_for(self):
        pattern = SESPattern(sets=[["c", "p+"], ["b"]], tau=10)
        partial = Substitution([(C, e(1, "c"))])
        total = Substitution([(C, e(1, "c")), (P, e(2, "p")), (B, e(3, "b"))])
        assert not partial.is_total_for(pattern)
        assert total.is_total_for(pattern)


class TestSetAlgebra:
    def test_subset(self):
        small = Substitution([(C, e(1, "a"))])
        big = Substitution([(C, e(1, "a")), (D, e(2, "b"))])
        assert small.issubset(big)
        assert small <= big
        assert small < big
        assert not big.issubset(small)

    def test_equality_and_hash(self):
        a = Substitution([(C, e(1, "a")), (D, e(2, "b"))])
        b = Substitution([(D, e(2, "b")), (C, e(1, "a"))])
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets(self):
        a = Substitution([(C, e(1, "a"))])
        b = Substitution([(C, e(1, "a"))])
        assert len({a, b}) == 1

    def test_repr(self):
        g = Substitution([(C, e(1, "e1"))])
        assert "c/e1" in repr(g)
