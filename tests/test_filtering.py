"""Tests for event pre-filtering (Section 4.5)."""

import pytest

from repro import Event, SESPattern, match
from repro.automaton.filtering import EventFilter

from conftest import ev


class TestPaperMode:
    def test_passes_events_satisfying_some_constant_condition(self, q1):
        f = EventFilter(q1, mode="paper")
        assert f.is_effective
        assert f.admits(Event(ts=1, L="C", ID=1))
        assert f.admits(Event(ts=1, L="B", ID=1))

    def test_drops_irrelevant_events(self, q1):
        f = EventFilter(q1, mode="paper")
        assert not f.admits(Event(ts=1, L="Z", ID=1))

    def test_disables_itself_with_unconstrained_variable(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        f = EventFilter(pattern, mode="paper")
        assert not f.is_effective
        assert f.admits(Event(ts=1, kind="ZZZ"))


class TestConjunctiveMode:
    def test_default_mode(self, q1):
        assert EventFilter(q1).mode == "conjunctive"

    def test_passes_variable_satisfying_all_its_conditions(self, q1):
        f = EventFilter(q1)
        assert f.admits(Event(ts=1, L="P", ID=1))
        assert not f.admits(Event(ts=1, L="Z", ID=1))

    def test_sound_with_unconstrained_variable(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        f = EventFilter(pattern)
        assert f.is_effective
        assert f.admits(Event(ts=1, kind="ZZZ")), \
            "b has no constant conditions, so any event may bind to it"

    def test_stronger_than_paper_mode(self):
        # Variable with two constant conditions: kind and level.
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.kind = 'A'", "a.level > 5"],
            tau=10,
        )
        conj = EventFilter(pattern, mode="conjunctive")
        paper = EventFilter(pattern, mode="paper")
        half_matching = Event(ts=1, kind="A", level=1)
        assert paper.admits(half_matching), "satisfies at least one condition"
        assert not conj.admits(half_matching), "fails the conjunction for a"

    def test_missing_attribute_fails_condition(self, q1):
        f = EventFilter(q1)
        assert not f.admits(Event(ts=1, other="x"))


class TestFilterNeutrality:
    """Filtering must not change the match set (paper Section 4.5)."""

    @pytest.mark.parametrize("mode", ["paper", "conjunctive"])
    def test_same_matches_with_and_without_filter(self, q1, figure1, mode):
        unfiltered = match(q1, figure1, use_filter=False)
        filtered = match(q1, figure1, use_filter=True, filter_mode=mode)
        assert unfiltered.matches == filtered.matches

    def test_filter_reduces_processed_events(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=100)
        noisy = [ev(t, "X") for t in range(0, 50, 2)]
        noisy += [ev(1, "A"), ev(3, "B")]
        unfiltered = match(pattern, sorted(noisy, key=lambda e: e.ts),
                           use_filter=False)
        filtered = match(pattern, sorted(noisy, key=lambda e: e.ts))
        assert filtered.matches == unfiltered.matches
        assert filtered.stats.events_filtered == 25
        assert filtered.stats.events_processed == 2

    def test_invalid_mode(self, q1):
        with pytest.raises(ValueError):
            EventFilter(q1, mode="bogus")

    def test_repr(self, q1):
        assert "conjunctive" in repr(EventFilter(q1))
