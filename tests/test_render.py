"""Tests for rendering patterns back to PERMUTE query text."""

import pytest

from repro import SESPattern
from repro.lang import parse_pattern, render_pattern


def round_trips(pattern: SESPattern) -> bool:
    return parse_pattern(render_pattern(pattern)) == pattern


class TestRenderPattern:
    def test_q1(self, q1):
        text = render_pattern(q1)
        assert text.startswith("PATTERN PERMUTE(c, d, p+) THEN PERMUTE(b)")
        assert text.endswith("WITHIN 264")
        assert round_trips(q1)

    def test_no_conditions(self):
        pattern = SESPattern(sets=[["a"]], tau=5)
        assert render_pattern(pattern) == "PATTERN PERMUTE(a) WITHIN 5"
        assert round_trips(pattern)

    def test_string_with_quote_escaped(self):
        # Quote escaping is a lexer feature; build through the language.
        pattern = parse_pattern("PATTERN a WHERE a.name = 'it''s' WITHIN 5")
        assert pattern.conditions[0].right.value == "it's"
        text = render_pattern(pattern)
        assert "'it''s'" in text
        assert round_trips(pattern)

    def test_numeric_constants(self):
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.x = 5", "a.y >= 2.5", "a.z != 0"],
            tau=7,
        )
        text = render_pattern(pattern)
        assert "a.x = 5" in text
        assert "a.y >= 2.5" in text
        assert round_trips(pattern)

    def test_all_operators_round_trip(self):
        conditions = [f"a.v {op} 1" for op in ("=", "!=", "<", "<=", ">", ">=")]
        pattern = SESPattern(sets=[["a"]], conditions=conditions, tau=1)
        assert round_trips(pattern)

    def test_two_variable_conditions(self):
        pattern = SESPattern(
            sets=[["a", "b"]],
            conditions=["a.x < b.y"],
            tau=3,
        )
        assert "a.x < b.y" in render_pattern(pattern)
        assert round_trips(pattern)

    def test_group_variables_rendered_with_plus(self):
        pattern = SESPattern(sets=[["p+", "q"]], tau=2)
        text = render_pattern(pattern)
        assert "PERMUTE(p+, q)" in text
        assert round_trips(pattern)

    def test_multi_set_order_preserved(self):
        pattern = SESPattern(sets=[["z"], ["a"]], tau=4)
        text = render_pattern(pattern)
        assert text.index("PERMUTE(z)") < text.index("PERMUTE(a)")
        assert round_trips(pattern)
