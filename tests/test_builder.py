"""Tests for automaton construction (Section 4.2, Figures 3-5 and 10)."""

import pytest

from repro import SESPattern
from repro.automaton.builder import (build_automaton, build_set_automaton,
                                     concatenate)
from repro.automaton.states import make_state, state_label
from repro.core.conditions import Attr, Condition, Const
from repro.core.variables import group, var

C, D, B = var("c"), var("d"), var("b")
P = group("p")


def transition_map(automaton):
    """{(source_label, variable_repr): condition set} for easy assertions."""
    out = {}
    for t in automaton.transitions:
        out[(state_label(t.source), repr(t.variable))] = set(t.conditions)
    return out


class TestFigure3:
    """SES automaton for P = (<{b}>, {b.L = 'B'}, 264)."""

    def test_structure(self):
        pattern = SESPattern(sets=[["b"]], conditions=["b.L = 'B'"], tau=264)
        automaton = build_automaton(pattern)
        assert automaton.states == {make_state(), make_state([B])}
        assert automaton.start == make_state()
        assert automaton.accepting == make_state([B])
        assert automaton.tau == 264
        assert len(automaton.transitions) == 1
        t = automaton.transitions[0]
        assert t.variable == B
        assert set(t.conditions) == {Condition(Attr(B, "L"), "=", Const("B"))}


class TestFigure4N1:
    """Automaton N1 for V1 = {c, p+, d} of the running example."""

    @pytest.fixture
    def n1(self, q1):
        return build_set_automaton(q1, 0)

    def test_states_are_powerset(self, n1):
        assert len(n1.states) == 8
        labels = {state_label(s) for s in n1.states}
        assert labels == {"∅", "c", "d", "p+", "cd", "cp+", "dp+", "cdp+"}

    def test_start_and_accepting(self, n1):
        assert n1.start == make_state()
        assert n1.accepting == make_state([C, D, P])

    def test_transition_count(self, n1):
        # 3 from ∅, 2 from c, 2 from d, 3 from p+ (incl. loop), 1 from cd,
        # 2 from cp+ (incl. loop), 2 from dp+ (incl. loop), 1 loop at cdp+.
        assert len(n1.transitions) == 16

    def test_loop_transitions(self, n1):
        loops = [t for t in n1.transitions if t.is_loop]
        assert len(loops) == 4
        assert all(t.variable == P for t in loops)
        loop_sources = {state_label(t.source) for t in loops}
        assert loop_sources == {"p+", "cp+", "dp+", "cdp+"}

    def test_theta_routing_matches_figure4(self, q1, n1):
        tm = transition_map(n1)
        def L(v, k):
            return Condition(Attr(v, "L"), "=", Const(k))

        def ID(a, b):
            return Condition(Attr(a, "ID"), "=", Attr(b, "ID"))

        # Θ1-Θ3: transitions from the start state carry only constant conditions.
        assert tm[("∅", "c")] == {L(C, "C")}
        assert tm[("∅", "d")] == {L(D, "D")}
        assert tm[("∅", "p+")] == {L(P, "P")}
        # Θ4, Θ5: from state {c} partner conditions with c are available.
        assert tm[("c", "d")] == {L(D, "D"), ID(C, D)}
        assert tm[("c", "p+")] == {L(P, "P"), ID(C, P)}
        # Θ9, Θ10: from state {d} (no c yet) — d-p have no shared condition.
        assert tm[("d", "c")] == {L(C, "C"), ID(C, D)}
        assert tm[("d", "p+")] == {L(P, "P")}
        # Θ7, Θ8: from {p+}.
        assert tm[("p+", "c")] == {L(C, "C"), ID(C, P)}
        assert tm[("p+", "d")] == {L(D, "D")}
        # Θ11-Θ16.
        assert tm[("cd", "p+")] == {L(P, "P"), ID(C, P)}
        assert tm[("cp+", "d")] == {L(D, "D"), ID(C, D)}
        assert tm[("dp+", "c")] == {L(C, "C"), ID(C, D), ID(C, P)}
        assert tm[("cdp+", "p+")] == {L(P, "P"), ID(C, P)}

    def test_loop_condition_at_p_state(self, q1, n1):
        # Θ7 at state {p+}: loop carries only p.L='P' (c not bound yet).
        p_loop = [t for t in n1.transitions
                  if t.is_loop and state_label(t.source) == "p+"]
        assert set(p_loop[0].conditions) == {
            Condition(Attr(P, "L"), "=", Const("P"))
        }


class TestFigure5Concatenation:
    """The concatenated automaton for the full Query Q1."""

    @pytest.fixture
    def automaton(self, q1):
        return build_automaton(q1)

    def test_state_count(self, automaton):
        # 8 states from N1 plus {cdp+b}; N2's start merges with N1's accept.
        assert len(automaton.states) == 9

    def test_accepting_state(self, automaton):
        assert state_label(automaton.accepting) == "bcdp+"
        assert automaton.accepting == make_state([B, C, D, P])

    def test_transition_count(self, automaton):
        assert len(automaton.transitions) == 17

    def test_theta17_prime(self, automaton):
        """The b transition carries θ4, θ7 and the inter-set time constraints."""
        tm = transition_map(automaton)
        expected = {
            Condition(Attr(B, "L"), "=", Const("B")),
            Condition(Attr(D, "ID"), "=", Attr(B, "ID")),
            Condition(Attr(C, "T"), "<", Attr(B, "T")),
            Condition(Attr(D, "T"), "<", Attr(B, "T")),
            Condition(Attr(P, "T"), "<", Attr(B, "T")),
        }
        assert tm[("cdp+", "b")] == expected

    def test_no_loop_at_accepting(self, automaton):
        assert automaton.loops_at(automaton.accepting) == ()

    def test_n1_transitions_unchanged(self, q1, automaton):
        n1 = build_set_automaton(q1, 0)
        full_map = transition_map(automaton)
        for key, conditions in transition_map(n1).items():
            assert full_map[key] == conditions


class TestFigure10:
    """Singleton-only variant (<{c,p,d},{b}>) used by the BF comparison."""

    def test_ses_automaton_shape(self):
        pattern = SESPattern(
            sets=[["c", "p", "d"], ["b"]],
            conditions=["c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'"],
            tau=264,
        )
        automaton = build_automaton(pattern)
        assert len(automaton.states) == 9
        assert len(automaton.transitions) == 13
        assert not any(t.is_loop for t in automaton.transitions)


class TestConcatenate:
    def test_three_sets(self):
        pattern = SESPattern(sets=[["a"], ["b"], ["c"]], tau=5)
        automaton = build_automaton(pattern)
        labels = {state_label(s) for s in automaton.states}
        assert labels == {"∅", "a", "ab", "abc"}
        tm = transition_map(automaton)
        A, Bv, Cv = var("a"), var("b"), var("c")
        # The c transition constrains against both preceding variables.
        assert tm[("ab", "c")] == {
            Condition(Attr(A, "T"), "<", Attr(Cv, "T")),
            Condition(Attr(Bv, "T"), "<", Attr(Cv, "T")),
        }

    def test_concatenate_preserves_tau(self, q1):
        n1 = build_set_automaton(q1, 0)
        n2 = build_set_automaton(q1, 1)
        assert concatenate(n1, n2).tau == 264

    def test_group_loop_survives_merge(self, q1):
        """The p+ loop must exist at the merged state cdp+ (Figure 5)."""
        automaton = build_automaton(q1)
        merged = make_state([C, D, P])
        loops = automaton.loops_at(merged)
        assert len(loops) == 1
        assert loops[0].variable == P


class TestStateSpaceSize:
    @pytest.mark.parametrize("n,expected", [(1, 2), (2, 4), (3, 8), (4, 16)])
    def test_powerset_states(self, n, expected):
        names = [chr(ord("a") + i) for i in range(n)]
        pattern = SESPattern(sets=[names], tau=1)
        automaton = build_automaton(pattern)
        assert len(automaton.states) == expected

    def test_multi_set_state_count(self):
        pattern = SESPattern(sets=[["a", "b"], ["c", "d"]], tau=1)
        automaton = build_automaton(pattern)
        # 2^2 + 2^2 - 1 merged
        assert len(automaton.states) == 7
