"""Tests for the execution algorithm (Section 4.3, Algorithms 1-2)."""

import pytest

from repro import Event, EventRelation, SESPattern, match
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor, execute
from repro.automaton.filtering import EventFilter

from conftest import bindings, eids, ev


def run(pattern, events, **kwargs):
    return execute(build_automaton(pattern), events, **kwargs)


class TestBasicMatching:
    def test_single_variable(self):
        pattern = SESPattern(sets=[["a"]], conditions=["a.kind = 'A'"], tau=10)
        result = run(pattern, [ev(1, "A"), ev(2, "B")])
        assert [eids(m) for m in result.matches] == [frozenset({"a1"})]

    def test_permutation_within_set(self, kind_pattern):
        forward = run(kind_pattern, [ev(1, "A"), ev(2, "B"), ev(3, "C")])
        backward = run(kind_pattern, [ev(1, "B"), ev(2, "A"), ev(3, "C")])
        assert len(forward.matches) == 1
        assert len(backward.matches) == 1

    def test_order_across_sets_enforced(self, kind_pattern):
        result = run(kind_pattern, [ev(1, "C"), ev(2, "A"), ev(3, "B")])
        assert result.matches == []

    def test_strict_order_across_sets_on_ties(self, kind_pattern):
        result = run(kind_pattern, [ev(1, "A"), ev(2, "B"), ev(2, "C")])
        assert result.matches == []

    def test_window_enforced(self, kind_pattern):
        result = run(kind_pattern, [ev(0, "A"), ev(1, "B"), ev(200, "C")])
        assert result.matches == []

    def test_window_boundary_inclusive(self, kind_pattern):
        result = run(kind_pattern, [ev(0, "A"), ev(1, "B"), ev(100, "C")])
        assert len(result.matches) == 1

    def test_skip_till_next_match_ignores_noise(self, kind_pattern):
        noisy = [ev(1, "A"), ev(2, "X"), ev(3, "B"), ev(4, "Y"), ev(5, "C")]
        result = run(kind_pattern, noisy)
        assert [eids(m) for m in result.matches] == [
            frozenset({"a1", "b3", "c5"})
        ]


class TestGroupVariables:
    PATTERN = SESPattern(
        sets=[["p+"], ["b"]],
        conditions=["p.kind = 'P'", "b.kind = 'B'"],
        tau=50,
    )

    def test_greedy_collects_all(self):
        result = run(self.PATTERN, [ev(1, "P"), ev(2, "P"), ev(3, "P"), ev(4, "B")])
        assert [eids(m) for m in result.matches] == [
            frozenset({"p1", "p2", "p3", "b4"})
        ]

    def test_one_binding_is_enough(self):
        result = run(self.PATTERN, [ev(1, "P"), ev(2, "B")])
        assert len(result.matches) == 1

    def test_zero_bindings_do_not_match(self):
        result = run(self.PATTERN, [ev(1, "B")])
        assert result.matches == []

    def test_interleaved_group_bindings(self, q1, figure1):
        """p+ bindings need not be consecutive: e4 and e9 for patient 1."""
        result = match(q1, figure1)
        assert frozenset({"e1", "e3", "e4", "e9", "e12"}) in [
            eids(m) for m in result.matches
        ]


class TestAlgorithmOneMechanics:
    def test_fresh_instance_every_event(self, kind_pattern):
        """Matches may start at any event (line 4 of Algorithm 1)."""
        events = [ev(1, "A"), ev(2, "B"), ev(3, "C"),
                  ev(11, "A"), ev(12, "B"), ev(13, "C")]
        result = run(kind_pattern, events)
        assert len(result.matches) == 2

    def test_expiry_emits_accepting_buffer(self, kind_pattern):
        """A match is reported when its window expires mid-stream."""
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.reset()
        for event in [ev(1, "A"), ev(2, "B"), ev(3, "C")]:
            assert executor.feed(event) == []
        emitted = executor.feed(ev(500, "X"))
        assert len(emitted) == 1

    def test_expired_nonaccepting_dropped_silently(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.feed(ev(1, "A"))
        assert executor.active_instances == 1
        emitted = executor.feed(ev(500, "X"))
        assert emitted == []
        assert executor.active_instances == 0
        assert executor.stats.expired_instances == 1

    def test_finish_flushes_accepting(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        for event in [ev(1, "A"), ev(2, "B"), ev(3, "C")]:
            executor.feed(event)
        flushed = executor.finish()
        assert len(flushed) == 1
        assert executor.active_instances == 0

    def test_start_state_instance_dropped_on_no_fire(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.feed(ev(1, "X"))
        assert executor.active_instances == 0

    def test_nonstart_instance_survives_no_fire(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.feed(ev(1, "A"))
        executor.feed(ev(2, "X"))
        assert executor.active_instances == 1

    def test_out_of_order_events_rejected(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.feed(ev(5, "A"))
        with pytest.raises(ValueError):
            executor.feed(ev(1, "B"))

    def test_reset_clears_state(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        executor.feed(ev(1, "A"))
        executor.reset()
        assert executor.active_instances == 0
        assert executor.stats.events_read == 0
        executor.feed(ev(0, "A"))  # earlier ts fine after reset


class TestNondeterminism:
    AMBIGUOUS = SESPattern(
        sets=[["x", "y"]],
        conditions=["x.kind = 'M'", "y.kind = 'M'"],
        tau=50,
    )

    def test_branching_counts(self):
        result = run(self.AMBIGUOUS, [ev(1, "M"), ev(2, "M")])
        assert result.stats.branchings >= 1

    def test_both_roles_matched(self):
        result = run(self.AMBIGUOUS, [ev(1, "M"), ev(2, "M")],
                     selection="all-starts")
        assert len(result.matches) == 2
        all_bindings = {frozenset(bindings(m)) for m in result.matches}
        assert all_bindings == {
            frozenset({"x/m1", "y/m2"}),
            frozenset({"x/m2", "y/m1"}),
        }


class TestExample8Trace:
    """The seven selected steps of Figure 6 (patient 1's instance)."""

    def test_trace(self, q1, figure1):
        from repro.automaton.states import state_label

        executor = SESExecutor(build_automaton(q1))
        events = {e.eid: e for e in figure1}

        def instance_by_first_binding(eid):
            for inst in executor._omega:
                from repro.core.variables import var
                events_c = inst.buffer.events_of(var("c"))
                if events_c and events_c[0].eid == eid:
                    return inst
            return None

        executor.feed(events["e1"])  # (b) binds c/e1
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "c"

        executor.feed(events["e2"])  # (c) ignored
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "c"

        executor.feed(events["e3"])  # (d) matched
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "cd"

        executor.feed(events["e4"])  # (e) p+ matched
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "cdp+"

        for eid in ("e5", "e6", "e7", "e8"):
            executor.feed(events[eid])  # (f) ignored (other patient)
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "cdp+"

        executor.feed(events["e9"])  # (g) repetition matched
        inst = instance_by_first_binding("e1")
        from repro.core.variables import group
        assert [e.eid for e in inst.buffer.events_of(group("p"))] == ["e4", "e9"]

        for eid in ("e10", "e11"):
            executor.feed(events[eid])
        executor.feed(events["e12"])  # (h) accepting state reached
        inst = instance_by_first_binding("e1")
        assert state_label(inst.state) == "bcdp+"


class TestSelectionModes:
    def test_accepted_mode_returns_raw(self, q1, figure1):
        result = match(q1, figure1, selection="accepted")
        assert len(result.matches) == 3  # includes the e7-start suffix

    def test_all_starts_mode(self, q1, figure1):
        result = match(q1, figure1, selection="all-starts")
        assert len(result.matches) == 3

    def test_paper_mode_suppresses_overlap(self, q1, figure1):
        result = match(q1, figure1, selection="paper")
        assert len(result.matches) == 2

    def test_invalid_selection(self, q1):
        with pytest.raises(ValueError):
            SESExecutor(build_automaton(q1), selection="bogus")


class TestStats:
    def test_event_counters(self, q1, figure1):
        result = match(q1, figure1, use_filter=False)
        assert result.stats.events_read == 14
        assert result.stats.events_processed == 14
        assert result.stats.events_filtered == 0

    def test_omega_tracking(self, kind_pattern):
        result = run(kind_pattern, [ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert result.stats.max_simultaneous_instances >= 1

    def test_matches_counter(self, q1, figure1):
        result = match(q1, figure1)
        assert result.stats.matches == len(result.matches) == 2

    def test_match_result_iterable(self, q1, figure1):
        result = match(q1, figure1)
        assert len(list(result)) == len(result) == 2
