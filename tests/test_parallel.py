"""Tests for the parallel batch matcher: equivalence with the serial
partitioned matcher, deterministic merging, the wire codec, and robust
pool shutdown on worker crashes and interrupts."""

import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Event, EventRelation, SESPattern
from repro.automaton.optimizations import PartitionedMatcher
from repro.parallel import (ParallelPartitionedMatcher, WorkerCrashed,
                            decode_event, decode_substitution, encode_event,
                            encode_substitution)
from repro.parallel.pool import chunk_partitions

from conftest import bindings

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Every variable equi-joins on ID, so partitioning on ID is sound.
JOINED = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)

#: No joins: partition_attribute() is None.
UNJOINED = SESPattern(
    sets=[["a"], ["b"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'"],
    tau=50,
)


def make_relation(n_keys=6, reps=2):
    """``reps`` A/B/C triples per key, interleaved across keys."""
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return EventRelation(events)


def canon(result):
    """Order-preserving canonical form of a result's matches."""
    return [bindings(s) for s in result.matches]


def assert_same_result(parallel, serial):
    assert canon(parallel) == canon(serial)
    assert ([bindings(s) for s in parallel.accepted]
            == [bindings(s) for s in serial.accepted])
    for field in ("events_read", "events_filtered", "events_processed",
                  "instances_created", "transitions_fired", "matches",
                  "max_simultaneous_instances", "accepted_buffers"):
        assert getattr(parallel.stats, field) == getattr(serial.stats, field), \
            field


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_partitioned_matcher(self, workers):
        relation = make_relation()
        serial = PartitionedMatcher(JOINED).run(relation)
        parallel = ParallelPartitionedMatcher(JOINED, workers=workers)
        assert parallel.attribute == "ID"
        assert_same_result(parallel.run(relation), serial)

    def test_repeated_runs_are_deterministic(self):
        relation = make_relation()
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        first, second = matcher.run(relation), matcher.run(relation)
        assert canon(first) == canon(second)
        assert first.stats.transitions_fired == second.stats.transitions_fired

    def test_accepted_selection(self):
        relation = make_relation(n_keys=3, reps=1)
        serial = PartitionedMatcher(JOINED, selection="accepted").run(relation)
        parallel = ParallelPartitionedMatcher(
            JOINED, workers=2, selection="accepted").run(relation)
        assert canon(parallel) == canon(serial)

    def test_serial_fallback_without_partition_attribute(self, caplog):
        relation = make_relation(n_keys=2, reps=1)
        with caplog.at_level("WARNING", logger="repro.parallel.pool"):
            matcher = ParallelPartitionedMatcher(UNJOINED, workers=4)
        assert matcher.attribute is None
        assert "falls back" in caplog.text
        from repro import match
        assert canon(matcher.run(relation)) == canon(match(UNJOINED, relation))

    @settings(max_examples=10, deadline=None)
    @given(
        spec=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 3),
                      st.sampled_from("ABC")),
            max_size=30),
        workers=st.sampled_from([1, 2, 4]),
    )
    def test_property_parallel_equals_serial(self, spec, workers):
        events = [Event(ts=ts, eid=f"e{i}", kind=kind, ID=key)
                  for i, (ts, key, kind) in enumerate(spec)]
        relation = EventRelation(events)
        serial = PartitionedMatcher(JOINED).run(relation)
        parallel = ParallelPartitionedMatcher(JOINED, workers=workers)
        assert_same_result(parallel.run(relation), serial)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelPartitionedMatcher(JOINED, workers=0)

    def test_unknown_selection(self):
        with pytest.raises(ValueError):
            ParallelPartitionedMatcher(JOINED, selection="nope")

    def test_chunks_per_worker_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelPartitionedMatcher(JOINED, chunks_per_worker=0)


class TestChunking:
    def test_near_even_contiguous(self):
        chunks = chunk_partitions(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_fewer_items_than_chunks(self):
        assert chunk_partitions([1, 2], 5) == [[1], [2]]

    def test_empty(self):
        assert chunk_partitions([], 3) == [[]]


class TestCodec:
    def test_event_round_trip(self):
        event = Event(ts=7, eid="x7", kind="A", ID=3, note="hi")
        decoded = decode_event(encode_event(event))
        assert decoded == event
        assert decoded.ts == 7 and decoded.eid == "x7"
        assert decoded.get("note") == "hi"

    def test_substitution_round_trip(self):
        relation = make_relation(n_keys=1, reps=1)
        original = PartitionedMatcher(JOINED).run(relation).matches[0]
        decoded = decode_substitution(encode_substitution(original))
        assert bindings(decoded) == bindings(original)
        assert decoded.min_ts() == original.min_ts()
        assert decoded.max_ts() == original.max_ts()


class Bomb:
    """An attribute value whose comparison raises mid-condition."""

    __hash__ = object.__hash__

    def __eq__(self, other):
        raise RuntimeError("boom condition")

    def __reduce__(self):
        return (Bomb, ())


class Exiter:
    """An attribute value that kills the worker process outright."""

    __hash__ = object.__hash__

    def __eq__(self, other):
        os._exit(3)

    def __reduce__(self):
        return (Exiter, ())


def _relation_with(poison):
    events = list(make_relation(n_keys=4, reps=1))
    events.append(Event(ts=100, eid="poison", kind=poison, ID=9))
    events.append(Event(ts=101, eid="b101", kind="B", ID=9))
    return EventRelation(events)


def _interrupting_chunk(chunk):
    raise KeyboardInterrupt


class TestShutdown:
    """Exception paths must join every worker — no leaked children."""

    def assert_no_leaked_children(self):
        leaked = [p for p in multiprocessing.active_children()
                  if not p.name.startswith("SyncManager")]
        assert leaked == []

    def test_crashing_condition_propagates_and_joins(self):
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        with pytest.raises(RuntimeError, match="boom condition"):
            matcher.run(_relation_with(Bomb()))
        self.assert_no_leaked_children()

    def test_dead_worker_raises_worker_crashed(self):
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        with pytest.raises(WorkerCrashed):
            matcher.run(_relation_with(Exiter()))
        self.assert_no_leaked_children()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_keyboard_interrupt_joins_workers(self, monkeypatch):
        # Fork workers inherit the patched module, so every chunk raises.
        monkeypatch.setattr("repro.parallel.pool._run_chunk",
                            _interrupting_chunk)
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        with pytest.raises(KeyboardInterrupt):
            matcher.run(make_relation())
        self.assert_no_leaked_children()


class TestObservability:
    def test_pool_metrics_published(self):
        from repro.obs import Observability
        obs = Observability()
        matcher = ParallelPartitionedMatcher(JOINED, workers=2, obs=obs)
        result = matcher.run(make_relation())
        snapshot = obs.snapshot()
        assert snapshot["ses_pool_workers"]["value"] == 2
        assert snapshot["ses_pool_partitions_total"]["value"] == 6
        worker_events = [record["value"] for name, record in snapshot.items()
                         if name.startswith("ses_pool_worker")
                         and name.endswith("_events_total")]
        assert sum(worker_events) == result.stats.events_read
        # Worker-side stage timings merged back into the parent bundle.
        assert any(name.startswith("repro_stage_") for name in snapshot)

    def test_serial_fallback_publishes_single_worker(self):
        from repro.obs import Observability
        obs = Observability()
        ParallelPartitionedMatcher(JOINED, workers=1, obs=obs).run(
            make_relation(n_keys=2, reps=1))
        snapshot = obs.snapshot()
        assert snapshot["ses_pool_workers"]["value"] == 1


class TestPlanShipping:
    """Workers receive the parent's pickled plan — they never rebuild."""

    def test_accepts_a_compiled_plan(self):
        import repro
        relation = make_relation()
        plan = repro.compile(JOINED)
        serial = PartitionedMatcher(plan).run(relation)
        parallel = ParallelPartitionedMatcher(plan, workers=2)
        assert parallel.plan is plan
        assert_same_result(parallel.run(relation), serial)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_workers_never_rebuild_the_automaton(self, monkeypatch):
        """With the automaton builder booby-trapped after the parent
        compiled, a forked worker that tried to rebuild would crash; the
        run succeeding proves every worker reused the shipped plan."""
        import repro
        from repro.plan import clear_plan_cache
        relation = make_relation()
        clear_plan_cache()
        expected = canon(PartitionedMatcher(JOINED).run(relation))
        plan = repro.compile(JOINED)

        def explode(pattern):
            raise AssertionError(
                "build_automaton called after the plan was compiled")

        monkeypatch.setattr("repro.plan.plan.build_automaton", explode)
        monkeypatch.setattr("repro.automaton.builder.build_automaton",
                            explode)
        matcher = ParallelPartitionedMatcher(plan, workers=2,
                                             start_method="fork")
        assert canon(matcher.run(relation)) == expected

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_seeding_hits_the_plan_cache(self):
        """_init_worker seeds the worker-global cache with the shipped
        plan: a second compile of an equal pattern in the worker is a
        hit, not a rebuild."""
        from repro.parallel.pool import _init_worker
        from repro.plan import clear_plan_cache, compile, plan_cache
        clear_plan_cache()
        plan = compile(JOINED)
        clear_plan_cache()  # simulate a fresh worker process
        _init_worker(plan, True, "greedy", False)
        assert plan.fingerprint in plan_cache()
        before = plan_cache().stats()["misses"]
        assert compile(JOINED) is plan_cache().seed(plan)
        assert plan_cache().stats()["misses"] == before


class TestFlightDumpOnCrash:
    """A soft worker crash must ship the flight-recorder tail back."""

    def test_bomb_crash_carries_flight_dump(self):
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        with pytest.raises(WorkerCrashed) as excinfo:
            matcher.run(_relation_with(Bomb()))
        dump = excinfo.value.flight_dump
        assert dump is not None
        assert dump["steps"], "flight dump must retain execution steps"
        # The dump's last record names the poisoned event.
        last = dump["steps"][-1]
        assert last["kind"] == "crash"
        assert last["event"] == "poison"
        assert "boom condition" in last["error"]

    def test_hard_crash_has_no_dump(self):
        # os._exit gives the worker no chance to capture evidence; the
        # parent must still raise WorkerCrashed, with flight_dump=None.
        matcher = ParallelPartitionedMatcher(JOINED, workers=2)
        with pytest.raises(WorkerCrashed) as excinfo:
            matcher.run(_relation_with(Exiter()))
        assert excinfo.value.flight_dump is None

    def test_flight_capacity_zero_disables_recording(self):
        matcher = ParallelPartitionedMatcher(JOINED, workers=2,
                                             flight_capacity=0)
        with pytest.raises(RuntimeError, match="boom condition"):
            matcher.run(_relation_with(Bomb()))

    def test_worker_crashed_pickles_with_dump(self):
        import pickle
        original = WorkerCrashed("it died", flight_dump={"steps": [1]})
        clone = pickle.loads(pickle.dumps(original))
        assert str(clone) == "it died"
        assert clone.flight_dump == {"steps": [1]}


class TestMergeSnapshotPartial:
    """A partial snapshot from a crashed worker must not corrupt the
    parent's aggregated histogram state."""

    def make_obs_with_history(self):
        from repro.obs import Observability
        obs = Observability()
        histogram = obs.registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        return obs, histogram

    def test_partial_histogram_record_raises_without_mutation(self):
        obs, histogram = self.make_obs_with_history()
        partial = {"lat": {"type": "histogram",
                           "buckets": [[1.0, 4], [2.0, 4]]}}  # no sum/count
        before = (list(histogram.counts), histogram.sum, histogram.count)
        with pytest.raises(ValueError, match="partial histogram"):
            obs.registry.merge_snapshot(partial)
        assert (list(histogram.counts), histogram.sum,
                histogram.count) == before

    def test_truncated_buckets_raise_without_mutation(self):
        obs, histogram = self.make_obs_with_history()
        partial = {"lat": {"type": "histogram", "buckets": [[1.0, 4]],
                           "sum": 1.0, "count": 4}}
        before = (list(histogram.counts), histogram.sum, histogram.count)
        with pytest.raises(ValueError):
            obs.registry.merge_snapshot(partial)
        assert (list(histogram.counts), histogram.sum,
                histogram.count) == before

    def test_partial_counter_and_gauge_raise(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="partial counter"):
            registry.merge_snapshot({"c": {"type": "counter"}})
        with pytest.raises(ValueError, match="partial gauge"):
            registry.merge_snapshot({"g": {"type": "gauge"}})

    def test_complete_snapshot_still_merges(self):
        obs, histogram = self.make_obs_with_history()
        obs.registry.merge_snapshot(
            {"lat": {"type": "histogram",
                     "buckets": [[1.0, 3], [2.0, 2]], "overflow": 1,
                     "sum": 9.0, "count": 6}})
        assert histogram.counts == [4, 3, 1]
        assert histogram.count == 8
        assert histogram.sum == 11.0
