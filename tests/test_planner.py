"""Tests for the cost-informed query planner."""

import pytest

from repro import SESPattern, match
from repro.data import base_dataset, pattern_p3, query_q1
from repro.planner import DataProfile, QueryPlan, plan_query, profile_relation

from conftest import ev


@pytest.fixture(scope="module")
def relation():
    return base_dataset(patients=6, cycles=2)


class TestProfile:
    def test_measures_relation(self, q1, relation):
        profile = profile_relation(q1, relation)
        assert profile.events == len(relation)
        assert profile.window == relation.window_size(264)
        assert 0.0 <= profile.filter_selectivity <= 1.0
        assert profile.filter_selectivity > 0.5, \
            "lab events dominate the chemo relation"

    def test_selectivity_zero_without_constants(self, relation):
        pattern = SESPattern(sets=[["a", "b"]], tau=10)
        profile = profile_relation(pattern, relation)
        assert profile.filter_selectivity == 0.0

    def test_describe(self, q1, relation):
        text = profile_relation(q1, relation).describe()
        assert "events" in text and "W =" in text


class TestPlanDecisions:
    def test_filter_on_when_selective(self, q1, relation):
        plan = plan_query(q1, relation)
        assert plan.use_filter

    def test_filter_off_when_unselective(self, relation):
        pattern = SESPattern(sets=[["a", "b"]], tau=10)
        plan = plan_query(pattern, relation)
        assert not plan.use_filter
        assert plan.executor == "indexed", \
            "no filter -> state indexing recovers the savings"

    def test_exact_mode_never_partitions(self, relation):
        plan = plan_query(pattern_p3(), relation, exact=True)
        assert plan.executor != "partitioned"
        assert any("exact" in r for r in plan.rationale)

    def test_relaxed_mode_partitions_heavy_patterns(self, relation):
        plan = plan_query(pattern_p3(), relation, exact=False)
        assert plan.executor == "partitioned"
        assert plan.partition_on == "ID"

    def test_relaxed_mode_skips_partitioning_for_light_patterns(self, q1,
                                                                relation):
        plan = plan_query(q1, relation, exact=False)
        # Q1 is mutually exclusive: tiny bound, partitioning not worth it.
        assert plan.executor == "plain"

    def test_warns_on_heavy_nonexclusive_patterns(self, relation):
        plan = plan_query(pattern_p3(), relation)
        assert any("warning" in r for r in plan.rationale)

    def test_complexity_attached(self, q1, relation):
        plan = plan_query(q1, relation)
        assert plan.complexity.window == relation.window_size(264)
        assert plan.complexity.mutually_exclusive


class TestPlanExecution:
    def test_plain_plan_matches_direct_match(self, q1, relation):
        plan = plan_query(q1, relation)
        assert plan.execute(relation).matches == match(q1, relation).matches

    def test_indexed_plan_matches_direct_match(self, relation):
        pattern = SESPattern(
            sets=[["c", "d"], ["b"]],
            conditions=["c.L = 'C'", "d.L = 'D'", "b.L = 'B'"],
            tau=264,
        )
        plan = plan_query(pattern, relation)
        direct = match(pattern, relation, use_filter=plan.use_filter)
        assert plan.execute(relation).matches == direct.matches

    def test_partitioned_plan_runs(self, relation):
        plan = plan_query(pattern_p3(), relation, exact=False)
        result = plan.execute(relation)
        assert len(result) > 0
        # Superset recall: at least everything the plain engine reports.
        plain = match(pattern_p3(), relation)
        assert len(result) >= len(plain)

    def test_selection_forwarded(self, q1, relation):
        plan = plan_query(q1, relation, selection="accepted")
        result = plan.execute(relation)
        assert len(result.matches) == len(result.accepted)


class TestExplain:
    def test_explain_mentions_decisions(self, q1, relation):
        text = plan_query(q1, relation).explain()
        assert "executor: plain" in text
        assert "event filter: on" in text
        assert "rationale:" in text
        assert "Theorem 1" in text

    def test_explain_partitioned(self, relation):
        text = plan_query(pattern_p3(), relation, exact=False).explain()
        assert "partitioned on 'ID'" in text
