"""Tests for the live HTTP observability endpoint (repro.obs.live)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import FlightRecorder, Observability, ObsServer, parse_listen


def get(url):
    """GET ``url``, returning ``(status, body)`` even for error codes."""
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def post(url):
    request = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(request, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


class TestParseListen:
    def test_host_and_port(self):
        assert parse_listen("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_bare_port_means_localhost(self):
        assert parse_listen(":8080") == ("127.0.0.1", 8080)

    @pytest.mark.parametrize("spec", ["8080", "host:", "host:abc", ""])
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_listen(spec)


class TestRoutes:
    @pytest.fixture
    def obs(self):
        bundle = Observability()
        bundle.registry.counter("ses_events_read_total",
                                help="events read").inc(42)
        return bundle

    def test_metrics_is_prometheus_exposition(self, obs):
        with ObsServer(snapshot=obs.snapshot) as server:
            status, body = get(server.url + "/metrics")
        assert status == 200
        assert "# TYPE ses_events_read_total counter" in body
        assert "ses_events_read_total 42" in body

    def test_varz_is_the_json_snapshot(self, obs):
        with ObsServer(snapshot=obs.snapshot) as server:
            status, body = get(server.url + "/varz")
        assert status == 200
        assert json.loads(body)["ses_events_read_total"]["value"] == 42

    def test_healthz_defaults_to_ok(self):
        with ObsServer() as server:
            status, body = get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_503_when_degraded(self):
        detail = {"status": "degraded", "shards": [{"shard": 0,
                                                    "alive": False}]}
        with ObsServer(health=lambda: (False, detail)) as server:
            status, body = get(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "degraded"

    def test_flight_route_serves_the_dump(self):
        recorder = FlightRecorder(capacity=4)
        recorder.sample_omega(3, 7)
        with ObsServer(flight=recorder) as server:
            status, body = get(server.url + "/debug/flight")
        assert status == 200
        assert json.loads(body)["omega"] == [[3, 7]]

    def test_flight_route_accepts_a_callable(self):
        with ObsServer(flight=lambda: {"steps": []}) as server:
            status, body = get(server.url + "/debug/flight")
        assert status == 200
        assert json.loads(body) == {"steps": []}

    def test_flight_404_without_recorder(self):
        with ObsServer() as server:
            status, _ = get(server.url + "/debug/flight")
        assert status == 404

    def test_root_lists_routes(self):
        with ObsServer(flight=FlightRecorder()) as server:
            status, body = get(server.url + "/")
        assert status == 200
        routes = json.loads(body)["routes"]
        assert "/metrics" in routes and "/debug/flight" in routes

    def test_unknown_route_404(self):
        with ObsServer() as server:
            status, _ = get(server.url + "/nope")
        assert status == 404

    def test_broken_provider_returns_500_and_survives(self):
        def broken():
            raise RuntimeError("boom")

        with ObsServer(snapshot=broken) as server:
            status, body = get(server.url + "/metrics")
            assert status == 500
            assert "boom" in body
            # the server must still answer after a provider failure
            status, _ = get(server.url + "/healthz")
            assert status == 200

    def test_quit_invokes_callback(self):
        import threading
        stop = threading.Event()
        with ObsServer(on_quit=stop.set) as server:
            status, body = get(server.url + "/healthz")
            assert status == 200
            status, body = post(server.url + "/quitquitquit")
            assert status == 200
            assert json.loads(body) == {"quitting": True}
        assert stop.is_set()

    def test_post_unknown_route_404(self):
        with ObsServer() as server:
            status, _ = post(server.url + "/nope")
        assert status == 404


class TestExplainRoute:
    def test_debug_explain_serves_the_report(self):
        provider = lambda: {"fingerprint": "abc123", "pattern": "P"}  # noqa: E731
        with ObsServer(explain=provider) as server:
            status, body = get(server.url + "/debug/explain")
            assert status == 200
            assert json.loads(body)["fingerprint"] == "abc123"
            _, root = get(server.url + "/")
        assert "/debug/explain" in json.loads(root)["routes"]

    def test_debug_explain_404_without_provider(self):
        with ObsServer() as server:
            status, body = get(server.url + "/debug/explain")
        assert status == 404
        assert "explain" in json.loads(body)["error"]


class TestLiveSnapshot:
    """Regression tests for the enriched /varz snapshot: plan-cache
    counters, the derived prefilter selectivity, and the per-pattern
    sections — asserted against the live endpoint, not just the dict."""

    @pytest.fixture(autouse=True)
    def fresh_state(self, monkeypatch):
        from repro.explain import clear_stats_store
        monkeypatch.delenv("REPRO_STATS_PATH", raising=False)
        monkeypatch.delenv("REPRO_STATS_DISABLE", raising=False)
        clear_stats_store()
        yield
        clear_stats_store()

    def test_plan_cache_counters_on_varz(self):
        import repro
        from repro import SESPattern
        from repro.obs import live_snapshot
        from repro.plan.cache import plan_cache
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=9)
        before = plan_cache().stats()["hits"]
        repro.compile(pattern)
        repro.compile(pattern)  # guaranteed hit
        with ObsServer(snapshot=live_snapshot) as server:
            status, body = get(server.url + "/varz")
        assert status == 200
        varz = json.loads(body)
        assert varz["ses_plan_cache_hits_total"]["value"] >= before + 1
        assert varz["ses_plan_cache_size"]["value"] >= 1
        for name in ("ses_plan_cache_misses_total",
                     "ses_plan_cache_evictions_total"):
            assert varz[name]["type"] == "counter"

    def test_prefilter_selectivity_derived_from_counters(self):
        from repro.obs import live_snapshot
        obs = Observability()
        obs.registry.counter("ses_events_read_total").inc(100)
        obs.registry.counter("ses_events_filtered_total").inc(25)
        with ObsServer(snapshot=lambda: live_snapshot(obs)) as server:
            status, body = get(server.url + "/varz")
        assert status == 200
        record = json.loads(body)["ses_prefilter_selectivity"]
        assert record["type"] == "gauge"
        assert record["value"] == pytest.approx(0.25)

    def test_per_pattern_sections_from_stats_store(self):
        from repro.obs import live_snapshot
        from repro.explain import stats_store
        stats_store().observe("fp1", runs=2, events=40, matches=3,
                              filter_seen=40, filter_admitted=10)
        with ObsServer(snapshot=live_snapshot) as server:
            _, varz_body = get(server.url + "/varz")
            _, metrics_body = get(server.url + "/metrics")
        varz = json.loads(varz_body)
        runs = varz["ses_pattern_runs_total[fp1]"]
        assert runs["value"] == 2
        assert runs["labels"] == {"pattern": "fp1"}
        assert runs["metric"] == "ses_pattern_runs_total"
        selectivity = varz["ses_pattern_prefilter_selectivity[fp1]"]
        assert selectivity["value"] == pytest.approx(0.75)
        # the Prometheus exposition renders them as one labeled family
        assert ('ses_pattern_runs_total{pattern="fp1"} 2'
                in metrics_body)
        assert "# TYPE ses_pattern_runs_total counter" in metrics_body


class TestLifecycle:
    def test_ephemeral_port_bound_and_reported(self):
        with ObsServer() as server:
            assert server.port > 0
            assert str(server.port) in server.url

    def test_stop_is_idempotent(self):
        server = ObsServer().start()
        server.stop()
        server.stop()

    def test_stop_without_start(self):
        ObsServer().stop()

    def test_snapshot_reflects_live_state(self):
        obs = Observability()
        counter = obs.registry.counter("ticks")
        with ObsServer(snapshot=obs.snapshot) as server:
            _, before = get(server.url + "/varz")
            counter.inc(5)
            _, after = get(server.url + "/varz")
        assert json.loads(before)["ticks"]["value"] == 0
        assert json.loads(after)["ticks"]["value"] == 5


class TestHandlerTimeout:
    """A stalled client must not pin an ObsServer handler thread forever."""

    def test_default_timeout_is_installed(self):
        from repro.obs.live import DEFAULT_HANDLER_TIMEOUT, _Handler
        assert _Handler.timeout == DEFAULT_HANDLER_TIMEOUT
        assert DEFAULT_HANDLER_TIMEOUT == 30.0

    def test_stalled_connection_is_closed_and_serving_continues(self):
        import socket
        import time

        with ObsServer(handler_timeout=0.5) as server:
            sock = socket.create_connection((server.host, server.port),
                                            timeout=5)
            try:
                # A partial request line, then silence: the per-connection
                # timeout must close the socket rather than wait forever.
                sock.sendall(b"GET /varz HTT")
                sock.settimeout(5)
                start = time.monotonic()
                assert sock.recv(1024) == b""
                assert time.monotonic() - start < 4
            finally:
                sock.close()
            # the server itself survives the stalled client
            status, _ = get(server.url + "/healthz")
            assert status == 200

    def test_custom_timeout_does_not_leak_to_other_servers(self):
        from repro.obs.live import DEFAULT_HANDLER_TIMEOUT, _Handler
        with ObsServer(handler_timeout=0.25):
            assert _Handler.timeout == DEFAULT_HANDLER_TIMEOUT
