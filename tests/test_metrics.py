"""Tests for execution statistics and the Ω history instrumentation."""

import pytest

from repro.automaton import sparkline
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.automaton.metrics import ExecutionStats

from conftest import ev


class TestExecutionStats:
    def test_observe_omega_tracks_max(self):
        stats = ExecutionStats()
        for size in (1, 5, 3):
            stats.observe_omega(size)
        assert stats.max_simultaneous_instances == 5

    def test_history_disabled_by_default(self):
        stats = ExecutionStats()
        stats.observe_omega(3)
        assert stats.omega_history is None

    def test_history_records_with_timestamps(self):
        stats = ExecutionStats()
        stats.enable_history()
        stats.observe_event(10)
        stats.observe_omega(2)
        stats.observe_omega(4)
        stats.observe_event(11)
        stats.observe_omega(1)
        assert stats.omega_history == [(10, 2), (10, 4), (11, 1)]

    def test_enable_history_idempotent(self):
        stats = ExecutionStats()
        stats.enable_history()
        stats.observe_omega(1)
        stats.enable_history()
        assert len(stats.omega_history) == 1


class TestSparkline:
    def test_empty_history(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        history = [(t, t) for t in range(1, 9)]
        line = sparkline(history, width=8)
        assert len(line) == 8
        assert line[-1] == "█"
        assert list(line) == sorted(line, key="  ▁▂▃▄▅▆▇█".index)

    def test_bucketing_to_width(self):
        history = [(t, 1) for t in range(1000)]
        assert len(sparkline(history, width=40)) == 40

    def test_all_zero_history(self):
        assert set(sparkline([(1, 0), (2, 0)])) <= {" "}


class TestExecutorHistory:
    def test_record_history_flag(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern),
                               record_history=True)
        result = executor.run([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert result.stats.omega_history is not None
        # Two samples per processed event (after line 4 and after the loop).
        assert len(result.stats.omega_history) == 6
        timestamps = [ts for ts, _ in result.stats.omega_history]
        assert timestamps == [1, 1, 2, 2, 3, 3]

    def test_history_survives_reset(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern),
                               record_history=True)
        executor.run([ev(1, "A")])
        executor.reset()
        executor.feed(ev(1, "A"))
        assert executor.stats.omega_history

    def test_history_off_by_default(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        result = executor.run([ev(1, "A")])
        assert result.stats.omega_history is None
