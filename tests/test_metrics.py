"""Tests for execution statistics and the Ω history instrumentation."""

import pytest

from repro.automaton import sparkline
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.automaton.metrics import ExecutionStats

from conftest import ev


class TestExecutionStats:
    def test_observe_omega_tracks_max(self):
        stats = ExecutionStats()
        for size in (1, 5, 3):
            stats.observe_omega(size)
        assert stats.max_simultaneous_instances == 5

    def test_history_disabled_by_default(self):
        stats = ExecutionStats()
        stats.observe_omega(3)
        assert stats.omega_history is None

    def test_history_records_with_timestamps(self):
        stats = ExecutionStats()
        stats.enable_history()
        stats.observe_event(10)
        stats.observe_omega(2)
        stats.observe_omega(4)
        stats.observe_event(11)
        stats.observe_omega(1)
        assert stats.omega_history == [(10, 2), (10, 4), (11, 1)]

    def test_enable_history_idempotent(self):
        stats = ExecutionStats()
        stats.enable_history()
        stats.observe_omega(1)
        stats.enable_history()
        assert len(stats.omega_history) == 1


class TestHistoryCap:
    def test_cap_bounds_memory(self):
        stats = ExecutionStats()
        stats.enable_history(max_samples=64)
        for t in range(10_000):
            stats.observe_event(t)
            stats.observe_omega(t % 7)
        assert len(stats.omega_history) <= 64
        assert stats.max_simultaneous_instances == 6

    def test_downsampled_history_spans_whole_run(self):
        stats = ExecutionStats()
        stats.enable_history(max_samples=16)
        for t in range(1000):
            stats.observe_event(t)
            stats.observe_omega(1)
        timestamps = [ts for ts, _ in stats.omega_history]
        assert timestamps[0] == 0
        assert timestamps[-1] >= 900  # coarse samples still reach the tail
        assert timestamps == sorted(timestamps)

    def test_downsampling_is_uniform(self):
        stats = ExecutionStats()
        stats.enable_history(max_samples=8)
        for t in range(64):
            stats.observe_event(t)
            stats.observe_omega(t)
        timestamps = [ts for ts, _ in stats.omega_history]
        strides = {b - a for a, b in zip(timestamps, timestamps[1:])}
        assert len(strides) == 1  # equally spaced samples

    def test_no_cap_keeps_everything(self):
        stats = ExecutionStats()
        stats.enable_history()
        for _ in range(500):
            stats.observe_omega(1)
        assert len(stats.omega_history) == 500

    def test_cap_too_small_rejected(self):
        stats = ExecutionStats()
        with pytest.raises(ValueError):
            stats.enable_history(max_samples=1)

    def test_max_tracking_unaffected_by_downsampling(self):
        stats = ExecutionStats()
        stats.enable_history(max_samples=4)
        sizes = [1, 9, 2, 3, 1, 2, 4, 1, 1, 2]
        for t, size in enumerate(sizes):
            stats.observe_event(t)
            stats.observe_omega(size)
        # The peak (9) may be dropped from the *history*, never from max.
        assert stats.max_simultaneous_instances == 9


class TestSparkline:
    def test_empty_history(self):
        assert sparkline([]) == ""

    def test_width_one(self):
        history = [(t, t) for t in range(10)]
        line = sparkline(history, width=1)
        assert len(line) == 1
        assert line == "█"  # single bucket holds the peak

    def test_width_below_one_rejected(self):
        with pytest.raises(ValueError):
            sparkline([(1, 1)], width=0)

    def test_constant_series(self):
        line = sparkline([(t, 5) for t in range(20)], width=10)
        assert len(line) == 10
        assert set(line) == {"█"}  # constant at its own peak

    def test_history_shorter_than_width(self):
        history = [(1, 1), (2, 2), (3, 3)]
        line = sparkline(history, width=60)
        assert len(line) == 3  # one column per sample, no padding

    def test_single_sample(self):
        assert sparkline([(1, 4)]) == "█"

    def test_monotone_ramp(self):
        history = [(t, t) for t in range(1, 9)]
        line = sparkline(history, width=8)
        assert len(line) == 8
        assert line[-1] == "█"
        assert list(line) == sorted(line, key="  ▁▂▃▄▅▆▇█".index)

    def test_bucketing_to_width(self):
        history = [(t, 1) for t in range(1000)]
        assert len(sparkline(history, width=40)) == 40

    def test_all_zero_history(self):
        assert set(sparkline([(1, 0), (2, 0)])) <= {" "}

    def test_trailing_samples_never_dropped(self):
        # len = width + 1: integer bucketing must fold the extra sample
        # into the last bucket, not round it away — the peak sits at the
        # very end of the history.
        width = 10
        history = [(t, 1) for t in range(width)] + [(width, 100)]
        line = sparkline(history, width=width)
        assert len(line) == width
        assert line[-1] == "█"  # the trailing peak survives bucketing

    def test_width_one_sees_trailing_peak(self):
        history = [(t, 1) for t in range(7)] + [(7, 50)]
        assert sparkline(history, width=1) == "█"

    def test_last_bucket_absorbs_remainder(self):
        # 13 samples over width 5: buckets of 2 plus a final bucket of 5;
        # a peak anywhere in the tail must land in the last column.
        history = [(t, 1) for t in range(12)] + [(12, 9)]
        line = sparkline(history, width=5)
        assert len(line) == 5
        assert line[-1] == "█"
        assert set(line[:-1]) != {"█"}

    def test_empty_history_any_width(self):
        assert sparkline([], width=1) == ""


class TestExecutorHistory:
    def test_record_history_flag(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern),
                               record_history=True)
        result = executor.run([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert result.stats.omega_history is not None
        # Two samples per processed event (after line 4 and after the loop).
        assert len(result.stats.omega_history) == 6
        timestamps = [ts for ts, _ in result.stats.omega_history]
        assert timestamps == [1, 1, 2, 2, 3, 3]

    def test_history_survives_reset(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern),
                               record_history=True)
        executor.run([ev(1, "A")])
        executor.reset()
        executor.feed(ev(1, "A"))
        assert executor.stats.omega_history

    def test_history_off_by_default(self, kind_pattern):
        executor = SESExecutor(build_automaton(kind_pattern))
        result = executor.run([ev(1, "A")])
        assert result.stats.omega_history is None
