"""Unit tests for repro.core.events."""

import pytest

from repro.core.events import Attribute, Event, EventSchema, SchemaError


class TestAttribute:
    def test_name_and_dtype(self):
        a = Attribute("ID", int)
        assert a.name == "ID"
        assert a.dtype is int

    def test_untyped_accepts_anything(self):
        a = Attribute("X")
        assert a.validate("foo") == "foo"
        assert a.validate(3.5) == 3.5

    def test_validate_coerces(self):
        a = Attribute("V", float)
        assert a.validate(3) == 3.0
        assert isinstance(a.validate(3), float)

    def test_validate_rejects_uncoercible(self):
        a = Attribute("V", float)
        with pytest.raises(SchemaError):
            a.validate("not a number")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_time_attribute_name_reserved(self):
        with pytest.raises(SchemaError):
            Attribute("T")

    def test_equality_and_hash(self):
        assert Attribute("A", int) == Attribute("A", int)
        assert Attribute("A", int) != Attribute("A", str)
        assert hash(Attribute("A", int)) == hash(Attribute("A", int))

    def test_repr(self):
        assert "ID" in repr(Attribute("ID", int))
        assert "int" in repr(Attribute("ID", int))


class TestEventSchema:
    def test_from_names(self):
        s = EventSchema(["ID", "L"])
        assert s.attribute_names == ("ID", "L")

    def test_from_attributes(self):
        s = EventSchema([Attribute("ID", int)])
        assert s["ID"].dtype is int

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            EventSchema(["A", "A"])

    def test_contains_includes_time(self):
        s = EventSchema(["ID"])
        assert "ID" in s
        assert "T" in s
        assert "missing" not in s

    def test_getitem_unknown_raises(self):
        s = EventSchema(["ID"])
        with pytest.raises(SchemaError):
            s["nope"]

    def test_validate_missing_attribute(self):
        s = EventSchema(["ID", "L"])
        with pytest.raises(SchemaError):
            s.validate({"ID": 1})

    def test_validate_unknown_attribute(self):
        s = EventSchema(["ID"])
        with pytest.raises(SchemaError):
            s.validate({"ID": 1, "extra": 2})

    def test_validate_coerces_values(self):
        s = EventSchema([Attribute("V", float)])
        assert s.validate({"V": 2}) == {"V": 2.0}

    def test_invalid_declaration(self):
        with pytest.raises(SchemaError):
            EventSchema([42])

    def test_equality(self):
        assert EventSchema(["A"]) == EventSchema(["A"])
        assert EventSchema(["A"]) != EventSchema(["B"])

    def test_len(self):
        assert len(EventSchema(["A", "B"])) == 2


class TestEvent:
    def test_attribute_access(self):
        e = Event(ts=5, eid="e1", L="C", V=1.5)
        assert e["L"] == "C"
        assert e["V"] == 1.5
        assert e.ts == 5

    def test_time_attribute_item_access(self):
        e = Event(ts=7, L="X")
        assert e["T"] == 7

    def test_missing_attribute_raises_keyerror(self):
        e = Event(ts=1, L="C")
        with pytest.raises(KeyError):
            e["missing"]

    def test_get_with_default(self):
        e = Event(ts=1, L="C")
        assert e.get("missing", 42) == 42
        assert e.get("L") == "C"
        assert e.get("T") == 1

    def test_contains(self):
        e = Event(ts=1, L="C")
        assert "L" in e
        assert "T" in e
        assert "X" not in e

    def test_ts_must_not_be_passed_as_attribute(self):
        with pytest.raises(SchemaError):
            Event(ts=1, T=5)

    def test_attrs_mapping_and_kwargs_merge(self):
        e = Event(ts=1, attrs={"A": 1}, B=2)
        assert e["A"] == 1
        assert e["B"] == 2

    def test_replace(self):
        e = Event(ts=1, eid="x", L="C")
        e2 = e.replace(ts=9, L="D")
        assert e2.ts == 9
        assert e2["L"] == "D"
        assert e2.eid == "x"
        assert e.ts == 1, "original unchanged"

    def test_equality_and_hash(self):
        a = Event(ts=1, eid="e", L="C")
        b = Event(ts=1, eid="e", L="C")
        c = Event(ts=1, eid="e", L="D")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_events_usable_in_sets(self):
        a = Event(ts=1, eid="e", L="C")
        b = Event(ts=1, eid="e", L="C")
        assert len({a, b}) == 1

    def test_repr_contains_eid(self):
        assert "e9" in repr(Event(ts=1, eid="e9", L="C"))

    def test_keys(self):
        e = Event(ts=1, A=1, B=2)
        assert sorted(e.keys()) == ["A", "B"]

    def test_attributes_view_is_copy(self):
        e = Event(ts=1, A=1)
        view = e.attributes
        view["A"] = 99
        assert e["A"] == 1
