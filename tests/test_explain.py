"""Tests for EXPLAIN / EXPLAIN ANALYZE (repro.explain).

Covers the static report, the counting-automaton analysis and its exact
reconciliation with executor metrics under serial, pooled and sharded
execution, the three renderers, the CLI surface, and the analyze-off
overhead gate (the production hot path must not pay for the explain
machinery).
"""

import json
import multiprocessing
import time

import pytest

import repro
from repro import Event, EventRelation, SESPattern
from repro.automaton.transitions import Transition
from repro.core.matcher import Matcher
from repro.explain import (CountingTransition, clear_stats_store,
                           counting_automaton, explain, explain_analyze,
                           stats_store)
from repro.explain.stats import stats_key
from repro.obs import Observability

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Every variable equi-joins on ID, so the pattern partitions/shards.
JOINED = SESPattern(
    sets=[["a", "b"], ["c"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.ID = b.ID", "a.ID = c.ID", "b.ID = c.ID"],
    tau=50,
)


def make_events(n_keys=6, reps=2):
    events = []
    ts = 0
    for _ in range(reps):
        for key in range(n_keys):
            for kind in ("A", "B", "C"):
                ts += 1
                events.append(Event(ts=ts, eid=f"e{ts}", kind=kind, ID=key))
    return events


@pytest.fixture
def relation():
    return EventRelation(make_events())


@pytest.fixture(autouse=True)
def fresh_stats(monkeypatch):
    """Isolate the process-global statistics store per test."""
    monkeypatch.delenv("REPRO_STATS_PATH", raising=False)
    monkeypatch.delenv("REPRO_STATS_DISABLE", raising=False)
    clear_stats_store()
    yield
    clear_stats_store()


def passes_sum(report):
    return sum(t["passes"] for t in report.analysis["transitions"])


class TestStaticExplain:
    def test_report_sections(self, q1):
        report = explain(q1)
        data = report.to_dict()
        for section in ("fingerprint", "pattern", "automaton", "transitions",
                        "prefilter", "complexity", "cache"):
            assert section in data, section
        assert data["automaton"]["states"] >= 2
        assert data["transitions"], "no transition entries"

    def test_prefilter_predicates_listed(self, q1):
        report = explain(q1)
        conjunctive = report.prefilter["conjunctive"]
        assert conjunctive["predicates"], "Q1 has constant conditions"

    def test_no_side_effects_on_production_plan(self, q1):
        explain(q1)
        plan = repro.compile(q1)
        for transition in plan.automaton.transitions:
            assert not isinstance(transition, CountingTransition)

    def test_cache_provenance(self, q1):
        repro.compile(q1)
        report = explain(q1)
        assert report.cache["cached"] is True


class TestCountingAutomaton:
    def test_shadow_counts_production_does_not(self, q1):
        plan = repro.compile(q1)
        shadow, counting = counting_automaton(plan.automaton)
        assert counting and all(isinstance(t, CountingTransition)
                                for t in counting)
        # the original automaton's transitions are untouched
        for transition in plan.automaton.transitions:
            assert not isinstance(transition, CountingTransition)

    def test_base_admits_is_uninstrumented(self):
        """Structural half of the overhead gate: the production
        ``Transition.admits`` must not reference any counting state."""
        names = Transition.admits.__code__.co_names
        for counter in ("evaluations", "passes", "seconds",
                        "condition_evaluations", "condition_passes"):
            assert counter not in names


class TestAnalyzeReconciliation:
    def test_serial(self, relation):
        report = explain_analyze(JOINED, relation)
        analysis = report.analysis
        assert analysis["reconciles"] is True
        assert passes_sum(report) == analysis["transitions_fired"]
        assert analysis["transition_passes"] == analysis["transitions_fired"]
        # ... and with the live executor metric of an ordinary run
        obs = Observability()
        Matcher(JOINED, observability=obs).run(relation)
        fired = obs.registry.snapshot()["ses_transitions_fired_total"]
        assert passes_sum(report) == fired["value"]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_workers(self, relation):
        from repro.parallel import ParallelPartitionedMatcher
        report = explain_analyze(JOINED, relation)
        obs = Observability()
        ParallelPartitionedMatcher(JOINED, workers=2,
                                   observability=obs).run(relation)
        fired = obs.registry.snapshot()["ses_transitions_fired_total"]
        assert passes_sum(report) == fired["value"]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_sharded_stream(self, relation):
        from repro.parallel import ShardedStreamMatcher
        report = explain_analyze(JOINED, relation)
        obs = Observability()
        matcher = ShardedStreamMatcher(JOINED, workers=2, observability=obs)
        for event in relation:
            matcher.push(event)
        matcher.close()
        fired = obs.registry.snapshot()["ses_transitions_fired_total"]
        assert passes_sum(report) == fired["value"]

    def test_analysis_event_accounting(self, relation):
        report = explain_analyze(JOINED, relation)
        analysis = report.analysis
        assert analysis["events"] == len(relation)
        assert (analysis["events_processed"]
                == analysis["events"] - analysis["events_filtered"])

    def test_records_into_stats_store(self, relation):
        explain_analyze(JOINED, relation)
        record = stats_store().get(stats_key(JOINED))
        assert record is not None
        assert record["runs"] == 1
        assert record["events"] == len(relation)
        assert record["conditions"], "condition tallies missing"

    def test_record_stats_opt_out(self, relation):
        explain_analyze(JOINED, relation, record_stats=False)
        assert stats_store().get(stats_key(JOINED)) is None


class TestRenderers:
    @pytest.fixture
    def analyzed(self, relation):
        return explain_analyze(JOINED, relation)

    def test_text(self, analyzed):
        text = analyzed.to_text()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "reconciled with executor counters" in text
        assert "prefilter" in text

    def test_static_text_is_plain_explain(self, q1):
        assert explain(q1).to_text().startswith("EXPLAIN plan")

    def test_json_round_trips(self, analyzed):
        data = json.loads(analyzed.to_json())
        assert data["analysis"]["reconciles"] is True

    def test_dot_is_graphviz_with_hotness(self, analyzed):
        dot = analyzed.to_dot()
        assert dot.startswith("digraph EXPLAIN {")
        assert dot.rstrip().endswith("}")
        assert "penwidth=" in dot and "color=" in dot

    def test_static_dot_has_no_hotness(self, q1):
        dot = explain(q1).to_dot()
        assert dot.startswith("digraph EXPLAIN {")
        assert "penwidth=" not in dot

    def test_render_rejects_unknown_format(self, analyzed):
        with pytest.raises(ValueError):
            analyzed.render("yaml")


class TestCli:
    QUERY = ("PATTERN PERMUTE(a, b) THEN c "
             "WHERE a.kind = 'A' AND b.kind = 'B' AND c.kind = 'C' "
             "AND a.ID = b.ID AND a.ID = c.ID WITHIN 50")

    @pytest.fixture
    def csv_path(self, tmp_path, relation):
        from repro.storage import save_relation
        path = tmp_path / "events.csv"
        save_relation(relation, path)
        return path

    def test_explain_static(self, capsys):
        from repro.cli import main
        assert main(["explain", "--query", self.QUERY]) == 0
        assert "EXPLAIN plan" in capsys.readouterr().out

    def test_explain_analyze_json(self, csv_path, capsys):
        from repro.cli import main
        code = main(["explain", "--query", self.QUERY, "--analyze",
                     "--data", str(csv_path), "--format", "json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["analysis"]["reconciles"] is True
        assert data["analysis"]["events"] == 36

    def test_explain_dot_to_file(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "plan.dot"
        assert main(["explain", "--query", self.QUERY, "--dot",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("digraph EXPLAIN {")

    def test_analyze_requires_data(self, capsys):
        from repro.cli import main
        assert main(["explain", "--query", self.QUERY, "--analyze"]) != 0


class TestAnalyzeOffOverhead:
    def test_match_unchanged_after_analyze(self, capsys):
        """The analyze-off hot path must not pay for EXPLAIN ANALYZE.

        The counting automaton is a *shadow*: running an analysis must
        leave the shared compiled plan byte-for-byte uninstrumented, so
        a match timed after ``explain_analyze`` runs within 5 % of one
        timed before (interleaved min-of-rounds to shrug off scheduler
        noise).
        """
        from repro.data import experiment1_pattern, generate_chemo
        relation = EventRelation(generate_chemo(patients=25, cycles=4,
                                                seed=7))
        pattern = experiment1_pattern(4, exclusive=True)
        plan = repro.compile(pattern)

        def run_match():
            start = time.perf_counter()
            plan.match(relation, selection="accepted")
            return time.perf_counter() - start

        before = after = float("inf")
        explain_analyze(pattern, relation)
        for transition in plan.automaton.transitions:
            assert not isinstance(transition, CountingTransition)
        for _ in range(9):  # interleave; min cancels thermal/cache drift
            before = min(before, run_match())
            after = min(after, run_match())
        factor = after / before
        with capsys.disabled():
            print(f"\nanalyze-off overhead: before {before:.4f}s, "
                  f"after {after:.4f}s ({factor:.3f}x)")
        assert factor < 1.05
