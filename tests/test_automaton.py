"""Tests for the SESAutomaton container, states and transitions."""

import pytest

from repro import Event, SESPattern
from repro.automaton.automaton import AutomatonError, SESAutomaton
from repro.automaton.buffer import MatchBuffer
from repro.automaton.builder import build_automaton
from repro.automaton.states import make_state, state_label, state_sort_key
from repro.automaton.transitions import Transition
from repro.core.conditions import Attr, Condition, Const
from repro.core.variables import group, var

A, B = var("a"), var("b")
P = group("p")


class TestStates:
    def test_empty_state_label(self):
        assert state_label(make_state()) == "∅"

    def test_label_sorted_concatenation(self):
        assert state_label(make_state([B, A])) == "ab"
        assert state_label(make_state([P, A])) == "ap+"

    def test_sort_key_by_size_then_label(self):
        states = [make_state([A, B]), make_state(), make_state([B])]
        ordered = sorted(states, key=state_sort_key)
        assert [state_label(s) for s in ordered] == ["∅", "b", "ab"]


class TestTransitions:
    def test_target_is_union(self):
        t = Transition(make_state([A]), B)
        assert t.target == make_state([A, B])
        assert not t.is_loop

    def test_loop_for_group_variable_in_source(self):
        t = Transition(make_state([P]), P)
        assert t.is_loop

    def test_admits_constant_condition(self):
        t = Transition(make_state(), A,
                       [Condition(Attr(A, "L"), "=", Const("X"))])
        buffer = MatchBuffer()
        assert t.admits(Event(ts=1, L="X"), buffer)
        assert not t.admits(Event(ts=1, L="Y"), buffer)

    def test_admits_checks_against_all_partner_bindings(self):
        cond = Condition(Attr(P, "ID"), "=", Attr(A, "ID"))
        t = Transition(make_state([A, P]), P, [cond])
        buffer = MatchBuffer().extend(A, Event(ts=1, ID=1))
        assert t.admits(Event(ts=2, ID=1), buffer)
        assert not t.admits(Event(ts=2, ID=2), buffer)

    def test_admits_mirrored_condition(self):
        # Condition written as a.ID = p.ID but transition binds p.
        cond = Condition(Attr(A, "ID"), "=", Attr(P, "ID"))
        t = Transition(make_state([A]), P, [cond])
        buffer = MatchBuffer().extend(A, Event(ts=1, ID=7))
        assert t.admits(Event(ts=2, ID=7), buffer)
        assert not t.admits(Event(ts=2, ID=8), buffer)

    def test_admits_self_condition(self):
        cond = Condition(Attr(A, "V"), "<", Attr(A, "W"))
        t = Transition(make_state(), A, [cond])
        assert t.admits(Event(ts=1, V=1, W=2), MatchBuffer())
        assert not t.admits(Event(ts=1, V=2, W=1), MatchBuffer())

    def test_admits_unbound_partner_passes(self):
        cond = Condition(Attr(A, "ID"), "=", Attr(B, "ID"))
        t = Transition(make_state(), A, [cond])
        assert t.admits(Event(ts=1, ID=1), MatchBuffer())

    def test_equality_and_hash(self):
        t1 = Transition(make_state(), A)
        t2 = Transition(make_state(), A)
        assert t1 == t2 and hash(t1) == hash(t2)
        assert t1 != Transition(make_state(), B)


class TestMatchBuffer:
    def test_extend_immutably(self):
        b0 = MatchBuffer()
        b1 = b0.extend(A, Event(ts=1, eid="x"))
        assert len(b0) == 0
        assert len(b1) == 1
        assert b1.min_ts == 1

    def test_min_ts_is_first_event(self):
        b = MatchBuffer().extend(A, Event(ts=5)).extend(B, Event(ts=9))
        assert b.min_ts == 5

    def test_events_of(self):
        e1, e2 = Event(ts=1, eid="1"), Event(ts=2, eid="2")
        b = MatchBuffer().extend(P, e1).extend(P, e2)
        assert b.events_of(P) == (e1, e2)
        assert b.events_of(A) == ()

    def test_to_substitution(self):
        e1 = Event(ts=1, eid="1")
        sub = MatchBuffer().extend(A, e1).to_substitution()
        assert (A, e1) in sub

    def test_bool(self):
        assert not MatchBuffer()
        assert MatchBuffer().extend(A, Event(ts=1))


class TestSESAutomaton:
    def test_validation_start_state(self):
        with pytest.raises(AutomatonError):
            SESAutomaton(states=[make_state([A])], transitions=[],
                         start=make_state(), accepting=make_state([A]), tau=1)

    def test_validation_accepting_state(self):
        with pytest.raises(AutomatonError):
            SESAutomaton(states=[make_state()], transitions=[],
                         start=make_state(), accepting=make_state([A]), tau=1)

    def test_validation_transition_endpoints(self):
        t = Transition(make_state(), A)
        with pytest.raises(AutomatonError):
            SESAutomaton(states=[make_state()], transitions=[t],
                         start=make_state(), accepting=make_state(), tau=1)

    def test_outgoing_index(self, q1):
        automaton = build_automaton(q1)
        start_out = automaton.outgoing(automaton.start)
        assert {repr(t.variable) for t in start_out} == {"c", "d", "p+"}

    def test_outgoing_unknown_state(self, q1):
        automaton = build_automaton(q1)
        with pytest.raises(AutomatonError):
            automaton.outgoing(make_state([var("zzz")]))

    def test_variables(self, q1):
        automaton = build_automaton(q1)
        assert {v.name for v in automaton.variables} == {"c", "d", "p", "b"}

    def test_is_accepting(self, q1):
        automaton = build_automaton(q1)
        assert automaton.is_accepting(automaton.accepting)
        assert not automaton.is_accepting(automaton.start)

    def test_describe_mentions_all_states(self, q1):
        text = build_automaton(q1).describe()
        for label in ("∅", "cdp+", "bcdp+"):
            assert label in text

    def test_to_dot(self, q1):
        dot = build_automaton(q1).to_dot()
        assert dot.startswith("digraph")
        assert "doublecircle" in dot
        assert dot.endswith("}")

    def test_repr(self, q1):
        assert "SESAutomaton" in repr(build_automaton(q1))
