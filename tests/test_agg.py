"""Online aggregation: the incremental fold engine and its surfaces.

The load-bearing property is **enumerate-then-fold equivalence**: for
any pattern, data set and execution settings, the incremental aggregates
computed inside the executor (no match ever materialised) equal folding
the enumerated ``selection="accepted"`` match set through
:func:`~repro.agg.engine.fold_reference`.  The suites below pin that
with Hypothesis across consume modes, filter settings and window sizes,
plus exact equality across every execution path (serial, process pool,
serial-partitioned, sharded streaming, registry), the snapshot algebra,
checkpoint/restore, plan-cache fingerprinting, and the typed result
surfaces of :func:`repro.query`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Event, EventRelation, Observability, SESPattern
from repro.agg import AggregateSeries, Match, MatchSet
from repro.agg.engine import (empty_snapshot, finalize_snapshot,
                              fold_reference, merge_snapshots)
from repro.agg.spec import Aggregate, AggregateSpec
from repro.lang import (QueryError, parse_query_spec, render_query)
from repro.plan.cache import compile as compile_plan

from conftest import ev, rel

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

SPEC_ALL = AggregateSpec(aggregates=(
    Aggregate("count", alias="n"),
    Aggregate("count", "a", "x"),
    Aggregate("sum", "a", "x"),
    Aggregate("min", "a", "x"),
    Aggregate("max", "b", "x"),
    Aggregate("avg", "a", "x"),
))


def assert_same_values(spec, left: dict, right: dict):
    """Finalised value dicts are equal (floats approximately)."""
    assert set(left) == set(right)
    for label in left:
        a, b = left[label], right[label]
        if isinstance(a, float) or isinstance(b, float):
            assert a == pytest.approx(b), label
        else:
            assert a == b, label


def reference_values(pattern, spec, events, *, use_filter=True,
                     consume="greedy"):
    """Enumerate accepted buffers, then fold them (the ground truth)."""
    plan = compile_plan(pattern)
    result = plan.match(events, use_filter=use_filter,
                        selection="accepted", consume=consume)
    snapshot = fold_reference(spec, list(result))
    return finalize_snapshot(spec, snapshot), snapshot


def incremental_series(pattern, spec, events, *, use_filter=True,
                       consume="greedy", **match_opts):
    plan = compile_plan(pattern, aggregate=spec)
    result = plan.match(events, use_filter=use_filter, consume=consume,
                        **match_opts)
    return result.aggregates


# ----------------------------------------------------------------------
# Language: SELECT parsing, compilation, rendering
# ----------------------------------------------------------------------

class TestLang:
    def test_plain_pattern_text_has_no_spec(self):
        pattern, spec = parse_query_spec(
            "PATTERN PERMUTE(a, b) WHERE a.k = 'x' AND b.k = 'y' WITHIN 5")
        assert spec is None
        assert isinstance(pattern, SESPattern)

    def test_select_clause_parses(self):
        pattern, spec = parse_query_spec(
            "SELECT count(*) AS n, sum(a.x), avg(b.y) AS mean "
            "FROM PATTERN PERMUTE(a, b) "
            "WHERE a.k = 'x' AND b.k = 'y' WITHIN 5")
        assert spec is not None
        assert spec.labels == ("n", "sum(a.x)", "mean")
        assert spec.aggregates[0].is_star
        assert spec.aggregates[1].func == "sum"
        assert spec.aggregates[2].alias == "mean"

    def test_from_keyword_is_required(self):
        with pytest.raises(QueryError):
            parse_query_spec(
                "SELECT count(*) PATTERN PERMUTE(a) WHERE a.k = 'x' WITHIN 5")

    def test_render_round_trip(self):
        text = ("SELECT count(*) AS n, min(a.x), avg(b.y) AS mean "
                "FROM PATTERN PERMUTE(a, b) "
                "WHERE a.k = 'x' AND b.k = 'y' WITHIN 5")
        pattern, spec = parse_query_spec(text)
        rendered = render_query(pattern, spec)
        pattern2, spec2 = parse_query_spec(rendered)
        assert pattern == pattern2
        assert spec.canonical() == spec2.canonical()
        assert spec.labels == spec2.labels

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            parse_query_spec("SELECT median(a.x) FROM PATTERN PERMUTE(a) "
                             "WHERE a.k = 'x' WITHIN 5")

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            parse_query_spec("SELECT sum(*) FROM PATTERN PERMUTE(a) "
                             "WHERE a.k = 'x' WITHIN 5")

    def test_undeclared_variable_rejected_at_compile(self):
        with pytest.raises(QueryError, match="undeclared"):
            parse_query_spec("SELECT sum(z.x) FROM PATTERN PERMUTE(a) "
                             "WHERE a.k = 'x' WITHIN 5")
        # The same guard fires at plan-build time for hand-built specs.
        spec = AggregateSpec(aggregates=(Aggregate("sum", "z", "x"),))
        pattern = SESPattern(sets=[["a"]], conditions=["a.k = 'x'"], tau=5)
        with pytest.raises(ValueError, match="undeclared"):
            compile_plan(pattern, aggregate=spec)

    def test_duplicate_labels_rejected(self):
        with pytest.raises((QueryError, ValueError)):
            parse_query_spec(
                "SELECT count(*) AS n, sum(a.x) AS n "
                "FROM PATTERN PERMUTE(a) WHERE a.k = 'x' WITHIN 5")


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------

class TestSnapshots:
    def test_empty_snapshot_finalises_to_identities(self):
        values = finalize_snapshot(SPEC_ALL, empty_snapshot(SPEC_ALL))
        assert values["n"] == 0
        assert values["count(a.x)"] == 0
        # SQL-flavoured empties: sum/min/max/avg of nothing is NULL.
        assert values["sum(a.x)"] is None
        assert values["min(a.x)"] is None
        assert values["max(b.x)"] is None
        assert values["avg(a.x)"] is None

    def test_merge_is_none_tolerant(self):
        snap = fold_reference(SPEC_ALL, [])
        assert merge_snapshots(SPEC_ALL, None, None) is None
        merged = merge_snapshots(SPEC_ALL, snap, None)
        assert merged["matches"] == 0
        assert merge_snapshots(SPEC_ALL, None, snap)["matches"] == 0

    def test_merge_associative_on_engine_partials(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=10)
        spec = SPEC_ALL
        plan = compile_plan(pattern, aggregate=spec)
        chunks = [
            [ev(1, "A", x=1.0), ev(2, "B", x=2.0)],
            [ev(20, "A", x=3.0), ev(21, "B", x=-1.0)],
            [ev(40, "A", x=0.5), ev(41, "B", x=9.0)],
        ]
        snaps = []
        for chunk in chunks:
            executor = plan.executor()
            executor.run(EventRelation(chunk))
            snaps.append(executor.aggregate_snapshot())
        left = merge_snapshots(
            spec, merge_snapshots(spec, snaps[0], snaps[1]), snaps[2])
        right = merge_snapshots(
            spec, snaps[0], merge_snapshots(spec, snaps[1], snaps[2]))
        assert_same_values(spec, finalize_snapshot(spec, left),
                           finalize_snapshot(spec, right))
        assert left["matches"] == right["matches"] == 3


# ----------------------------------------------------------------------
# Property: incremental == enumerate-then-fold
# ----------------------------------------------------------------------

KINDS = ("A", "B", "C")


@st.composite
def agg_relations(draw, max_events: int = 14):
    """Typed events with a numeric/missing/non-numeric ``x`` attribute."""
    n = draw(st.integers(min_value=0, max_value=max_events))
    timestamps = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=40), min_size=n, max_size=n)))
    events = []
    for i, ts in enumerate(timestamps):
        kind = draw(st.sampled_from(KINDS))
        shape = draw(st.sampled_from(("int", "float", "missing", "text")))
        attrs = {}
        if shape == "int":
            attrs["x"] = draw(st.integers(min_value=-5, max_value=5))
        elif shape == "float":
            attrs["x"] = draw(st.floats(min_value=-4, max_value=4,
                                        allow_nan=False, width=32))
        elif shape == "text":
            attrs["x"] = draw(st.sampled_from(("hi", "lo")))
        events.append(Event(ts=ts, eid=f"e{i}", kind=kind, **attrs))
    return EventRelation(events)


@st.composite
def agg_patterns(draw):
    """One- or two-set patterns, optionally with a group variable."""
    shapes = (
        [["a"], ["b"]],
        [["a", "b"]],
        [["a+"], ["b"]],
        [["a", "b+"]],
        [["a"]],
        [["a+"]],
    )
    sets = draw(st.sampled_from(shapes))
    conditions = []
    names = [v.rstrip("+") for vs in sets for v in vs]
    for name in names:
        kind = draw(st.sampled_from(KINDS))
        conditions.append(f"{name}.kind = '{kind}'")
    tau = draw(st.integers(min_value=0, max_value=50))
    return SESPattern(sets=sets, conditions=conditions, tau=tau)


@st.composite
def agg_specs(draw):
    terms = [Aggregate("count", alias="n")]
    for func in draw(st.sets(st.sampled_from(("count", "sum", "min",
                                              "max", "avg")),
                             max_size=3)):
        variable = draw(st.sampled_from(("a", "b")))
        terms.append(Aggregate(func, variable, "x",
                               alias=f"{func}_{variable}"))
    return AggregateSpec(aggregates=tuple(terms))


class TestEnumerateThenFoldEquivalence:
    @given(pattern=agg_patterns(), relation=agg_relations(),
           spec=agg_specs(),
           use_filter=st.booleans(),
           consume=st.sampled_from(("greedy", "exhaustive")))
    @settings(max_examples=150, deadline=None)
    def test_incremental_equals_reference(self, pattern, relation, spec,
                                          use_filter, consume):
        try:
            spec.validate(pattern)
        except ValueError:
            return  # spec references a variable this pattern lacks
        expected, ref_snapshot = reference_values(
            pattern, spec, relation, use_filter=use_filter, consume=consume)
        series = incremental_series(
            pattern, spec, relation, use_filter=use_filter, consume=consume)
        assert series.matches_folded == ref_snapshot["matches"]
        assert_same_values(spec, series.values, expected)

    @given(relation=agg_relations(max_events=20))
    @settings(max_examples=60, deadline=None)
    def test_group_variables_fold_every_bound_event(self, relation):
        pattern = SESPattern(sets=[["a+"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=30)
        spec = AggregateSpec(aggregates=(
            Aggregate("count", alias="n"),
            Aggregate("count", "a", "x", alias="xs"),
            Aggregate("sum", "a", "x", alias="sx"),
        ))
        expected, _ = reference_values(pattern, spec, relation)
        series = incremental_series(pattern, spec, relation)
        assert_same_values(spec, series.values, expected)


# ----------------------------------------------------------------------
# Path equality: every execution route produces the same aggregates
# ----------------------------------------------------------------------

JOIN_PATTERN = SESPattern(
    sets=[["a"], ["b"]],
    conditions=["a.kind = 'A'", "b.kind = 'B'", "a.pid = b.pid"],
    tau=25)

JOIN_SPEC = AggregateSpec(aggregates=(
    Aggregate("count", alias="n"),
    Aggregate("sum", "a", "x"),
    Aggregate("avg", "b", "x"),
    Aggregate("min", "a", "x"),
    Aggregate("max", "b", "x"),
))


def join_relation(seed: int = 7, n: int = 300) -> EventRelation:
    import random
    rng = random.Random(seed)
    events = []
    for i in range(n):
        events.append(Event(
            ts=i, eid=f"e{i}", kind=rng.choice(("A", "B", "C")),
            pid=rng.randrange(6), x=rng.choice(
                (rng.uniform(-3, 3), rng.randrange(-5, 6)))))
    return EventRelation(events)


class TestPathEquality:
    def test_serial_equals_serial_fold(self):
        events = join_relation()
        expected, _ = reference_values(JOIN_PATTERN, JOIN_SPEC, events)
        series = incremental_series(JOIN_PATTERN, JOIN_SPEC, events)
        assert_same_values(JOIN_SPEC, series.values, expected)

    def test_pool_equals_partitioned_equals_partitioned_fold(self):
        events = join_relation()
        # The partitioned reference: enumerate per partition, then fold.
        plan = compile_plan(JOIN_PATTERN)
        enum = plan.match(events, partition_by="pid", selection="accepted")
        ref = finalize_snapshot(JOIN_SPEC,
                                fold_reference(JOIN_SPEC, list(enum)))
        pooled = incremental_series(JOIN_PATTERN, JOIN_SPEC, events,
                                    workers=2)
        partitioned = incremental_series(JOIN_PATTERN, JOIN_SPEC, events,
                                         partition_by="pid")
        assert_same_values(JOIN_SPEC, pooled.values, ref)
        assert_same_values(JOIN_SPEC, partitioned.values, ref)
        assert pooled.matches_folded == partitioned.matches_folded

    def test_sharded_stream_equals_partitioned(self):
        from repro.parallel.sharded import ShardedStreamMatcher
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        serial = plan.match(events, partition_by="pid").aggregates
        matcher = ShardedStreamMatcher(plan, workers=2)
        with matcher:
            matcher.push_many(events)
        sharded = matcher.aggregates()
        assert sharded.matches_folded == serial.matches_folded
        assert_same_values(JOIN_SPEC, sharded.values, serial.values)

    def test_partitioned_stream_equals_batch_partitioned(self):
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        batch = plan.match(events, partition_by="pid").aggregates
        stream = plan.stream(partition_by="pid")
        for event in events:
            stream.push(event)
        stream.close()
        series = stream.aggregates()
        assert series.matches_folded == batch.matches_folded
        assert_same_values(JOIN_SPEC, series.values, batch.values)


# ----------------------------------------------------------------------
# No materialisation: the whole point
# ----------------------------------------------------------------------

class TestNoMaterialization:
    def test_agg_result_carries_no_matches(self):
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        result = plan.match(events)
        assert len(result) == 0
        assert result.accepted == []
        assert result.aggregates.matches_folded > 0

    def test_zero_ses_matches_total_on_agg_path(self):
        obs = Observability()
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC,
                            observability=obs)
        executor = plan.executor(observability=obs)
        executor.run(events)
        snapshot = obs.snapshot()
        matches = snapshot.get("ses_matches_total")
        assert matches is None or matches["value"] == 0
        folded = snapshot["ses_agg_matches_folded_total"]
        assert folded["value"] == executor.matches_folded > 0

    def test_group_count_stays_far_below_match_count(self):
        # PERMUTE(a+, b+) with constant conditions: the accepted-buffer
        # count explodes combinatorially, the coalesced group population
        # stays linear in the window.
        pattern = SESPattern(sets=[["a+", "b+"]],
                             conditions=["a.L = 'A'", "b.L = 'A'"],
                             tau=100)
        spec = AggregateSpec(aggregates=(Aggregate("count", alias="n"),))
        events = EventRelation([Event(ts=i, eid=f"e{i}", L="A")
                                for i in range(12)])
        plan = compile_plan(pattern, aggregate=spec)
        executor = plan.executor()
        result = executor.run(events)
        series = result.aggregates
        expected, _ = reference_values(pattern, spec, events)
        assert series["n"] == expected["n"]
        assert series["n"] > 1000
        assert executor._agg.max_groups < 100


# ----------------------------------------------------------------------
# Checkpoint / restore
# ----------------------------------------------------------------------

class TestStateRoundtrip:
    def test_stream_checkpoint_restore_preserves_aggregates(self):
        events = join_relation(seed=11, n=200)
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        straight = plan.stream()
        for event in events:
            straight.push(event)
        straight.close()

        first = plan.stream()
        for event in events.events[:100]:
            first.push(event)
        state = first.state_dict()
        second = plan.stream()
        second.load_state(state)
        for event in events.events[100:]:
            second.push(event)
        second.close()
        assert second.matches_folded == straight.matches_folded
        assert_same_values(JOIN_SPEC, second.aggregates().values,
                           straight.aggregates().values)

    def test_partitioned_stream_checkpoint_carries_agg_partials(self):
        events = join_relation(seed=3, n=200)
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        straight = plan.stream(partition_by="pid")
        for event in events:
            straight.push(event)
        straight.close()

        first = plan.stream(partition_by="pid")
        for event in events.events[:120]:
            first.push(event)
        first.collect(now=10**9)  # retire idle partitions into the carry
        state = first.state_dict()
        second = plan.stream(partition_by="pid")
        second.load_state(state)
        for event in events.events[120:]:
            second.push(event)
        second.close()
        assert second.matches_folded == straight.matches_folded
        assert_same_values(JOIN_SPEC, second.aggregates().values,
                           straight.aggregates().values)


# ----------------------------------------------------------------------
# Plan cache fingerprinting
# ----------------------------------------------------------------------

class TestFingerprints:
    def test_agg_plan_is_distinct_from_enum_plan(self):
        enum = compile_plan(JOIN_PATTERN)
        agg = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        assert enum.fingerprint != agg.fingerprint
        assert enum is not agg
        assert agg.aggregate is JOIN_SPEC

    def test_same_spec_hits_the_cache(self):
        assert (compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
                is compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC))

    def test_different_specs_differ(self):
        other = AggregateSpec(aggregates=(Aggregate("count", alias="n"),))
        assert (compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC).fingerprint
                != compile_plan(JOIN_PATTERN,
                                aggregate=other).fingerprint)


# ----------------------------------------------------------------------
# Typed results and the query façade
# ----------------------------------------------------------------------

class TestResultSurfaces:
    def test_match_delegates_to_substitution(self):
        events = rel(ev(1, "A", pid=1, x=2), ev(2, "B", pid=1, x=3))
        matches = repro.query(
            "PATTERN PERMUTE(a, b) WHERE a.kind = 'A' AND b.kind = 'B' "
            "WITHIN 10", events)
        assert isinstance(matches, MatchSet)
        (match,) = list(matches)
        assert isinstance(match, Match)
        assert match.pattern_id is None and match.partition is None
        assert match.min_ts() == 1 and match.max_ts() == 2
        assert [e.eid for e in match.events()] == ["a1", "b2"]
        assert {v.name for v in match.variables} == {"a", "b"}
        assert len(match.bindings) == 2

    def test_aggregate_series_mapping_surface(self):
        series = AggregateSeries(
            JOIN_SPEC, fold_reference(JOIN_SPEC, []))
        assert len(series) == len(JOIN_SPEC)
        assert series["n"] == 0 and series[0] == 0
        assert series.labels == JOIN_SPEC.labels
        assert dict(series)["sum(a.x)"] is None
        rows = series.to_rows()
        assert rows[0] == {"aggregate": "n", "value": 0}

    def test_series_merged_with(self):
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        whole = plan.match(events).aggregates
        half1 = plan.match(EventRelation(events.events[:150])).aggregates
        half2 = plan.match(EventRelation(events.events[150:])).aggregates
        merged = half1.merged_with(half2)
        # Halving at an event boundary may split an in-flight window,
        # so only the counting structure is asserted here.
        assert (merged.matches_folded
                <= whole.matches_folded)
        assert merged.matches_folded == (half1.matches_folded
                                         + half2.matches_folded)

    def test_query_facade_accepts_plan_and_pattern(self):
        events = join_relation()
        plan = compile_plan(JOIN_PATTERN, aggregate=JOIN_SPEC)
        from_plan = repro.query(plan, events)
        assert isinstance(from_plan, AggregateSeries)
        from_pattern = repro.query(JOIN_PATTERN, events)
        assert isinstance(from_pattern, MatchSet)
        with pytest.raises(TypeError):
            repro.query(42, events)


# ----------------------------------------------------------------------
# Registry fan-out
# ----------------------------------------------------------------------

class TestRegistryAggregation:
    QUERY = ("SELECT count(*) AS n, avg(b.x) FROM PATTERN PERMUTE(a, b) "
             "WHERE a.kind = 'A' AND b.kind = 'B' AND a.pid = b.pid "
             "WITHIN 25")

    def test_registry_aggregates_match_standalone_stream(self):
        from repro.registry import PatternRegistry, UnknownPatternError
        events = join_relation(seed=5, n=250)
        obs = Observability()
        registry = PatternRegistry(observability=obs)
        registry.register(self.QUERY, pattern_id="agg")
        registry.register(
            "PATTERN PERMUTE(a, b) WHERE a.kind = 'A' AND b.kind = 'B' "
            "WITHIN 25", pattern_id="enum")
        registry.push_many(events)
        registry.close()

        pattern, spec = parse_query_spec(self.QUERY)
        plan = compile_plan(pattern, aggregate=spec)
        standalone = plan.stream()
        for event in events:
            standalone.push(event)
        standalone.close()

        series = registry.aggregates_of("agg")
        assert series.matches_folded == standalone.matches_folded > 0
        assert_same_values(spec, series.values,
                           standalone.aggregates().values)
        # Enum siblings still enumerate; the agg entry contributes none.
        assert registry.matches_of("agg") == []
        assert len(registry.matches_of("enum")) > 0

        snapshot = obs.snapshot()
        folded = snapshot["ses_agg_matches_folded_total[agg]"]
        assert folded["value"] == series.matches_folded
        with pytest.raises(UnknownPatternError):
            registry.aggregates_of("nope")
