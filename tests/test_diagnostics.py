"""Tests for the static pattern linter."""

import pytest

from repro import SESPattern, match
from repro.core.diagnostics import diagnose

from conftest import ev


def codes(pattern):
    return [d.code for d in diagnose(pattern)]


class TestUnsatisfiableVariable:
    def test_conflicting_constants(self):
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.kind = 'X'", "a.kind = 'Y'"],
            tau=10,
        )
        findings = diagnose(pattern)
        assert findings[0].code == "unsatisfiable-variable"
        assert findings[0].severity == "error"
        assert "a" in findings[0].message

    def test_error_is_truthful(self):
        """An 'error' pattern really never matches."""
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.kind = 'X'", "a.kind = 'Y'"],
            tau=10,
        )
        events = [ev(1, "X"), ev(2, "Y")]
        assert match(pattern, events).matches == []

    def test_range_conflict(self):
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.V < 5", "a.V > 10"],
            tau=10,
        )
        assert "unsatisfiable-variable" in codes(pattern)

    def test_compatible_conditions_clean(self):
        pattern = SESPattern(
            sets=[["a"]],
            conditions=["a.kind = 'X'", "a.V > 5"],
            tau=10,
        )
        assert "unsatisfiable-variable" not in codes(pattern)


class TestZeroWindowMultiSet:
    def test_flagged(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=0)
        assert "zero-window-multi-set" in codes(pattern)

    def test_error_is_truthful(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=0)
        assert match(pattern, [ev(1, "A"), ev(1, "B")]).matches == []

    def test_single_set_zero_tau_fine(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'", "b.kind = 'B'"],
                             tau=0)
        assert "zero-window-multi-set" not in codes(pattern)


class TestOpenJoinGraph:
    def test_chain_flagged(self):
        pattern = SESPattern(
            sets=[["a", "b", "m"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "m.kind = 'M'",
                        "a.tag = m.tag", "m.tag = b.tag"],
            tau=10,
        )
        finding = [d for d in diagnose(pattern)
                   if d.code == "open-join-graph"][0]
        assert finding.severity == "warning"
        assert "close_equality_joins" in finding.message

    def test_closed_graph_clean(self):
        pattern = SESPattern(
            sets=[["a", "b", "m"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "m.kind = 'M'",
                        "a.tag = m.tag", "m.tag = b.tag", "a.tag = b.tag"],
            tau=10,
        )
        assert "open-join-graph" not in codes(pattern)

    def test_q1_flagged_as_open(self, q1):
        """Q1's joins are a star around c plus d-b: closure is missing
        (c-b, p-d etc.), so the linter flags it — consistent with the
        hijack analysis of the running example."""
        assert "open-join-graph" in codes(q1)


class TestUnconstrainedVariable:
    def test_flagged_as_info(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        finding = [d for d in diagnose(pattern)
                   if d.code == "unconstrained-variable"][0]
        assert finding.severity == "info"
        assert "b" in finding.message

    def test_fully_constrained_clean(self, q1):
        assert "unconstrained-variable" not in codes(q1)


class TestHeavySets:
    def test_single_group_flagged(self):
        from repro.data import pattern_p3
        assert "group-in-nonexclusive-set" in codes(pattern_p3())

    def test_multi_group_flagged(self):
        pattern = SESPattern(
            sets=[["p+", "q+"]],
            conditions=["p.kind = 'M'", "q.kind = 'M'"],
            tau=10,
        )
        assert "multiple-groups-in-nonexclusive-set" in codes(pattern)

    def test_exclusive_group_clean(self, q1):
        assert "group-in-nonexclusive-set" not in codes(q1)


class TestOrderingAndRendering:
    def test_errors_first(self):
        pattern = SESPattern(
            sets=[["a"], ["b"]],
            conditions=["a.kind = 'X'", "a.kind = 'Y'"],
            tau=0,
        )
        findings = diagnose(pattern)
        severities = [d.severity for d in findings]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index)

    def test_str_rendering(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.kind = 'A'"], tau=0)
        rendered = [str(d) for d in diagnose(pattern)]
        assert any(s.startswith("[error]") for s in rendered)

    def test_clean_pattern_minimal_findings(self):
        pattern = SESPattern(
            sets=[["a", "b"], ["c"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'"],
            tau=10,
        )
        assert diagnose(pattern) == []
