"""Tests for streaming sources, windows, and the continuous matcher."""

import pytest

from repro import Event, SESPattern
from repro.stream import (ContinuousMatcher, SlidingWindow, from_relation,
                          max_window_population, merge, synthetic, take,
                          window_profile)

from conftest import ev


class TestSources:
    def test_from_relation(self, figure1):
        events = list(from_relation(figure1))
        assert len(events) == 14
        assert events[0].eid == "e1"

    def test_merge_preserves_order(self):
        a = [ev(1), ev(4)]
        b = [ev(2), ev(3)]
        merged = list(merge(a, b))
        assert [e.ts for e in merged] == [1, 2, 3, 4]

    def test_merge_stable_on_ties(self):
        a = [ev(1, eid="left")]
        b = [ev(1, eid="right")]
        assert [e.eid for e in merge(a, b)] == ["left", "right"]

    def test_synthetic_deterministic(self):
        first = take(synthetic(["A", "B"], seed=3), 10)
        second = take(synthetic(["A", "B"], seed=3), 10)
        assert first == second

    def test_synthetic_count(self):
        events = list(synthetic(["A"], count=5))
        assert len(events) == 5
        assert all(e["kind"] == "A" for e in events)

    def test_synthetic_monotone_timestamps(self):
        events = take(synthetic(["A", "B", "C"], seed=1), 50)
        timestamps = [e.ts for e in events]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps), \
            "inter-arrival >= 1 keeps timestamps strictly increasing"

    def test_synthetic_extra_attributes(self):
        events = take(synthetic(["A"], seed=1,
                                make_attrs=lambda rng, kind: {"v": 7}), 3)
        assert all(e["v"] == 7 for e in events)

    def test_synthetic_rate_validation(self):
        with pytest.raises(ValueError):
            take(synthetic(["A"], rate=0), 1)


class TestSlidingWindow:
    def test_eviction(self):
        window = SlidingWindow(10)
        window.push(ev(0))
        window.push(ev(5))
        evicted = window.push(ev(11))
        assert [e.ts for e in evicted] == [0]
        assert len(window) == 2

    def test_boundary_is_closed(self):
        window = SlidingWindow(10)
        window.push(ev(0))
        evicted = window.push(ev(10))
        assert evicted == ()
        assert len(window) == 2

    def test_out_of_order_rejected(self):
        window = SlidingWindow(10)
        window.push(ev(5))
        with pytest.raises(ValueError):
            window.push(ev(4))

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(-1)

    def test_window_profile(self):
        events = [ev(0), ev(1), ev(2), ev(50)]
        profile = [(e.ts, n) for e, n in window_profile(events, 10)]
        assert profile == [(0, 1), (1, 2), (2, 3), (50, 1)]

    def test_max_window_population_matches_relation(self, figure1):
        assert max_window_population(figure1, 264) == \
            figure1.window_size(264) == 14


class TestContinuousMatcher:
    PATTERN = SESPattern(
        sets=[["a", "b"], ["c"]],
        conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'"],
        tau=10,
    )

    def test_matches_emitted_on_expiry(self):
        matcher = ContinuousMatcher(self.PATTERN)
        seen = []
        matcher.on_match(seen.append)
        matcher.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        assert seen == [], "window still open, group-free but not expired"
        matcher.push(ev(100, "X"))
        assert len(seen) == 1

    def test_close_flushes(self):
        matcher = ContinuousMatcher(self.PATTERN)
        matcher.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        flushed = matcher.close()
        assert len(flushed) == 1
        assert len(matcher.matches) == 1

    def test_q1_stream_equals_batch(self, q1, figure1):
        from repro import match
        matcher = ContinuousMatcher(q1)
        matcher.push_many(from_relation(figure1))
        matcher.close()
        assert ([frozenset(m.bindings) for m in matcher.matches]
                == [frozenset(m.bindings) for m in match(q1, figure1).matches])

    def test_overlap_suppression_toggle(self, q1, figure1):
        permissive = ContinuousMatcher(q1, suppress_overlaps=False)
        permissive.push_many(from_relation(figure1))
        permissive.close()
        assert len(permissive.matches) == 3  # includes the suffix match

    def test_callback_decorator_style(self):
        matcher = ContinuousMatcher(self.PATTERN)
        calls = []

        @matcher.on_match
        def record(substitution):
            calls.append(substitution)

        matcher.push_many([ev(1, "A"), ev(2, "B"), ev(3, "C")])
        matcher.close()
        assert len(calls) == 1

    def test_stats_and_instances_exposed(self):
        matcher = ContinuousMatcher(self.PATTERN)
        matcher.push(ev(1, "A"))
        assert matcher.active_instances == 1
        assert matcher.stats.events_read == 1

    def test_repr(self):
        assert "ContinuousMatcher" in repr(ContinuousMatcher(self.PATTERN))

    def test_filter_applied(self):
        matcher = ContinuousMatcher(self.PATTERN)
        matcher.push(ev(1, "ZZZ"))
        assert matcher.stats.events_filtered == 1
