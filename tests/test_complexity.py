"""Tests for the executable complexity analysis (Section 4.4)."""

import math

import pytest

from repro import EventRelation, SESPattern, match
from repro.complexity import (ComplexityCase, all_pairwise_mutually_exclusive,
                              analyze, are_mutually_exclusive, classify_set,
                              conditions_conflict, pattern_instance_bound,
                              set_instance_bound, window_size)
from repro.core.conditions import parse_condition
from repro.core.variables import group, var

from conftest import ev


def cond(text, **variables):
    vs = {name: (group(name[:-1]) if name.endswith("+") else var(name))
          for name in variables or {"v": None, "w": None}}
    vs = {"v": var("v"), "w": var("w")}
    return parse_condition(text, vs)


class TestConditionsConflict:
    def test_distinct_equalities_conflict(self):
        assert conditions_conflict(cond("v.L = 'C'"), cond("w.L = 'D'"))

    def test_same_equality_no_conflict(self):
        assert not conditions_conflict(cond("v.L = 'C'"), cond("w.L = 'C'"))

    def test_different_attributes_no_conflict(self):
        assert not conditions_conflict(cond("v.L = 'C'"), cond("w.ID = 1"))

    def test_equality_vs_range(self):
        assert conditions_conflict(cond("v.V = 5"), cond("w.V > 10"))
        assert not conditions_conflict(cond("v.V = 15"), cond("w.V > 10"))

    def test_equality_vs_not_equal(self):
        assert conditions_conflict(cond("v.V = 5"), cond("w.V != 5"))
        assert not conditions_conflict(cond("v.V = 5"), cond("w.V != 6"))

    def test_disjoint_ranges_conflict(self):
        assert conditions_conflict(cond("v.V < 5"), cond("w.V > 5"))
        assert conditions_conflict(cond("v.V < 5"), cond("w.V >= 5"))
        assert conditions_conflict(cond("v.V <= 5"), cond("w.V > 5"))

    def test_touching_closed_ranges_no_conflict(self):
        assert not conditions_conflict(cond("v.V <= 5"), cond("w.V >= 5"))

    def test_overlapping_ranges_no_conflict(self):
        assert not conditions_conflict(cond("v.V < 10"), cond("w.V > 5"))

    def test_same_direction_no_conflict(self):
        assert not conditions_conflict(cond("v.V < 5"), cond("w.V < 10"))

    def test_not_equal_pairs_never_conflict(self):
        assert not conditions_conflict(cond("v.V != 5"), cond("w.V != 5"))

    def test_incomparable_types_conservative(self):
        assert not conditions_conflict(cond("v.V < 5"), cond("w.V > 'text'"))

    def test_incomparable_equalities_conflict(self):
        assert conditions_conflict(cond("v.V = 5"), cond("w.V = 'five'"))

    def test_variable_conditions_never_conflict(self):
        c1 = parse_condition("v.ID = w.ID", {"v": var("v"), "w": var("w")})
        assert not conditions_conflict(c1, cond("w.L = 'C'"))


class TestMutualExclusivity:
    def test_example10(self, q1):
        """Paper Example 10: all variables of Q1 are pairwise exclusive."""
        assert all_pairwise_mutually_exclusive(q1)

    def test_pairwise_check(self, q1):
        c, d = q1.variable("c"), q1.variable("d")
        assert are_mutually_exclusive(q1, c, d)
        assert not are_mutually_exclusive(q1, c, c)

    def test_same_type_conditions_not_exclusive(self):
        pattern = SESPattern(
            sets=[["x", "y"]],
            conditions=["x.L = 'P'", "y.L = 'P'"],
            tau=10,
        )
        assert not all_pairwise_mutually_exclusive(pattern)

    def test_unconstrained_variable_not_exclusive(self):
        pattern = SESPattern(sets=[["x", "y"]],
                             conditions=["x.L = 'A'"], tau=10)
        assert not all_pairwise_mutually_exclusive(pattern)


class TestClassification:
    def make(self, specs, conditions):
        return SESPattern(sets=[specs], conditions=conditions, tau=10)

    def test_case1(self):
        p = self.make(["x", "y"], ["x.L = 'A'", "y.L = 'B'"])
        assert classify_set(p, 0) is ComplexityCase.MUTUALLY_EXCLUSIVE

    def test_case2(self):
        p = self.make(["x", "y"], ["x.L = 'A'", "y.L = 'A'"])
        assert classify_set(p, 0) is ComplexityCase.FACTORIAL

    def test_case3_single_group(self):
        p = self.make(["x", "y+"], ["x.L = 'A'", "y.L = 'A'"])
        assert classify_set(p, 0) is ComplexityCase.SINGLE_GROUP

    def test_case3_multi_group(self):
        p = self.make(["x+", "y+"], ["x.L = 'A'", "y.L = 'A'"])
        assert classify_set(p, 0) is ComplexityCase.MULTI_GROUP

    def test_exclusive_group_still_case1(self):
        """Theorem 1 has priority: exclusivity precludes nondeterminism."""
        p = self.make(["x", "y+"], ["x.L = 'A'", "y.L = 'B'"])
        assert classify_set(p, 0) is ComplexityCase.MUTUALLY_EXCLUSIVE


class TestBounds:
    def make(self, specs, conditions):
        return SESPattern(sets=[specs], conditions=conditions, tau=10)

    def test_theorem1_bound(self):
        p = self.make(["x", "y"], ["x.L = 'A'", "y.L = 'B'"])
        assert set_instance_bound(p, 0, window=100) == 1

    def test_theorem2_bound(self):
        p = self.make(["x", "y", "z"],
                      ["x.L = 'A'", "y.L = 'A'", "z.L = 'A'"])
        assert set_instance_bound(p, 0, window=100) == math.factorial(3)

    def test_theorem3_single_group(self):
        p = self.make(["x", "y", "z+"],
                      ["x.L = 'A'", "y.L = 'A'", "z.L = 'A'"])
        # (|V1|-1)! * W^|V1| = 2! * 10^3
        assert set_instance_bound(p, 0, window=10) == 2 * 10 ** 3

    def test_theorem3_multi_group(self):
        p = self.make(["x+", "y+"], ["x.L = 'A'", "y.L = 'A'"])
        # k * (|V1|-1)! * k^(W*|V1|) = 2 * 1! * 2^(3*2)
        assert set_instance_bound(p, 0, window=3) == 2 * 2 ** 6

    def test_pattern_bound(self):
        p = SESPattern(
            sets=[["x", "y"], ["z"]],
            conditions=["x.L = 'A'", "y.L = 'A'", "z.L = 'Z'"],
            tau=10,
        )
        # worst per-set bound = 2! ; total = W * 2^2
        assert pattern_instance_bound(p, window=7) == 7 * 4

    def test_negative_window_rejected(self):
        p = self.make(["x"], ["x.L = 'A'"])
        with pytest.raises(ValueError):
            set_instance_bound(p, 0, window=-1)


class TestEmpiricalSoundness:
    """Measured max |Ω| must never exceed the theoretical bounds."""

    def test_case2_bound_holds(self):
        pattern = SESPattern(
            sets=[["x", "y"], ["z"]],
            conditions=["x.kind = 'M'", "y.kind = 'M'", "z.kind = 'Z'"],
            tau=20,
        )
        events = [ev(t, "M") for t in range(10)] + [ev(11, "Z")]
        relation = EventRelation(events)
        result = match(pattern, relation, use_filter=False)
        w = relation.window_size(20)
        assert (result.stats.max_simultaneous_instances
                <= pattern_instance_bound(pattern, w))

    def test_case1_stays_flat(self, q1, figure1):
        result = match(q1, figure1, use_filter=False)
        w = figure1.window_size(264)
        assert (result.stats.max_simultaneous_instances
                <= pattern_instance_bound(q1, w))


class TestAnalyze:
    def test_report_contents(self, q1, figure1):
        report = analyze(q1, window_size(figure1, 264))
        assert report.window == 14
        assert report.mutually_exclusive
        assert report.cases[0] is ComplexityCase.MUTUALLY_EXCLUSIVE
        assert report.set_bounds == (1, 1)
        assert report.total_bound == 14

    def test_describe(self, q1):
        text = analyze(q1, 100).describe()
        assert "W = 100" in text
        assert "Theorem 1" in text

    def test_describe_large_bounds_compact(self):
        p = SESPattern(sets=[["x+", "y+"]],
                       conditions=["x.L = 'A'", "y.L = 'A'"], tau=10)
        text = analyze(p, 50).describe()
        assert "10^" in text
