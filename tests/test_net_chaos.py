"""Deterministic chaos test for the push front-end: a subscriber tailing
a real ``repro serve --subscribe`` process must receive *exactly* the
fault-free match set even when the server is SIGKILLed mid-stream and
restarted against the same delivery WAL — no loss, no duplicates.

The restarted matcher is fed the stream from the beginning (its in-flight
window state died with the process); the hub's WAL-recovered dedup set
suppresses everything already delivered, so the subscriber sees each
match id once.  A second test gates the cost of the zero-subscriber hub
path against the plain matcher (< 1.05x, min-of-rounds idiom).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import repro
from repro import Event
from repro.core.relation import EventRelation
from repro.lang import parse_query_spec
from repro.net import SubscriptionHub
from repro.net.client import push_events, request_quit, subscribe_sse
from repro.obs.lineage import match_id
from repro.plan.cache import compile as compile_plan
from repro.registry import PatternRegistry
from repro.storage import save_relation

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

QUERY = ("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND b.L = 'C' "
         "AND a.ID = b.ID WITHIN 10")


def chaos_stream(pairs, start_ts=100):
    """``pairs`` well-separated B/C pairs joined on ID: one match each,
    so the fault-free set is exactly ``pairs`` distinct match ids."""
    events = []
    for i in range(pairs):
        base = start_ts + 20 * i
        events.append(Event(ts=base, attrs={"L": "B", "ID": i},
                            eid=f"b{i}"))
        events.append(Event(ts=base + 1, attrs={"L": "C", "ID": i},
                            eid=f"c{i}"))
    return events


def fault_free_ids(events):
    """The serial, fault-free match-id set for ``events``."""
    registry = PatternRegistry()
    pattern, aggregate = parse_query_spec(QUERY)
    registry.register(compile_plan(pattern, aggregate=aggregate))
    registry.push_many(events)
    registry.close()
    return {match_id(sub) for sub in registry.matches}


def free_port():
    import socket
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def start_serve(tmp_path, primer_csv, port, wal):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data", str(primer_csv), "--query", QUERY,
         "--listen", "127.0.0.1:0",
         "--subscribe", f"127.0.0.1:{port}",
         "--delivery-wal", str(wal),
         "--heartbeat", "0.5", "--drain-grace", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=str(tmp_path),
        env={**os.environ,
             "PYTHONPATH": SRC_DIR + os.pathsep
             + os.environ.get("PYTHONPATH", "")})
    for _ in range(10):
        line = process.stdout.readline()
        if "serving push endpoint on " in line:
            return process
    process.kill()
    raise AssertionError("serve never announced the push endpoint")


class TestKillResumeChaos:
    def test_sigkill_mid_stream_resume_no_loss_no_dup(self, tmp_path):
        events = chaos_stream(40)
        expected = fault_free_ids(events)
        assert len(expected) == 40

        primer_csv = tmp_path / "primer.csv"
        save_relation(EventRelation(
            [Event(ts=0, attrs={"L": "Z", "ID": -1}, eid="z0"),
             Event(ts=1, attrs={"L": "Z", "ID": -1}, eid="z1")],
            name="primer"), primer_csv)
        wal = tmp_path / "delivery.jsonl"
        port = free_port()
        transcript = tmp_path / "subscriber.jsonl"

        received = []          # (seq, match_id) in delivery order
        notices = []
        done = threading.Event()

        def tail():
            with transcript.open("w") as out:
                for item in subscribe_sse(
                        "127.0.0.1", port, subscriber_id="chaos",
                        resume=-1,  # from the beginning of the stream
                        reconnect=True, reconnect_delay=0.1,
                        max_reconnects=400, stop_on_drain=True,
                        read_timeout=30.0):
                    out.write(json.dumps(item) + "\n")
                    out.flush()
                    if item["event"] == "match":
                        payload = item["data"]
                        received.append((int(item["id"]),
                                         payload["match_id"]))
                    else:
                        notices.append(item["event"])
            done.set()

        proc1 = start_serve(tmp_path, primer_csv, port, wal)
        proc2 = None
        thread = threading.Thread(target=tail, daemon=True)
        thread.start()
        try:
            # First half of the stream, then wait for live deliveries so
            # the kill lands with real progress on both sides of the WAL.
            accepted = push_events("127.0.0.1", port, events[:40])
            assert accepted == 40
            assert wait_for(lambda: len(received) >= 5), \
                "no live matches before the kill"

            os.kill(proc1.pid, signal.SIGKILL)
            proc1.wait(timeout=10)

            # Restart on the same port against the same WAL; the fresh
            # matcher replays the whole stream and the recovered dedup
            # set suppresses what the subscriber already has.
            proc2 = start_serve(tmp_path, primer_csv, port, wal)
            accepted = push_events("127.0.0.1", port, events)
            assert accepted == len(events)
            # All but the final pair (still inside its open WITHIN
            # window) stream live; drain flushes the rest.
            assert wait_for(
                lambda: len({mid for _, mid in received})
                >= len(expected) - 1,
                timeout=30), (
                f"subscriber saw {len({m for _, m in received})} of "
                f"{len(expected)} expected matches")

            request_quit("127.0.0.1", port)
            assert done.wait(timeout=30), "drain never reached subscriber"
            assert proc2.wait(timeout=30) == 0
        finally:
            for process in (proc1, proc2):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
            done.set()

        delivered_ids = [mid for _, mid in received]
        assert set(delivered_ids) == expected, "match loss across restart"
        assert len(delivered_ids) == len(set(delivered_ids)), \
            "duplicate delivery across restart"
        # Cursors are monotonic in delivery order even across the kill.
        seqs = [seq for seq, _ in received]
        assert seqs == sorted(seqs)
        assert "drain" in notices
        assert transcript.exists() and transcript.stat().st_size > 0


class TestDisabledSubscriptionOverhead:
    def test_zero_subscriber_overhead_is_bounded(self, capsys):
        """A hub with no subscribers must cost < 5 % on the serve path
        (same bar and min-of-rounds idiom as the lineage/guard gates)."""
        # A realistic serve workload: every event is a join candidate the
        # matcher must evaluate, but only one aligned pair per hundred
        # events joins — publish cost stays tiny next to matching cost.
        events = []
        for i in range(4000):
            if i % 100 == 0:
                events.append(Event(ts=i, attrs={"L": "B", "ID": i},
                                    eid=f"b{i}"))
            elif i % 100 == 1:
                events.append(Event(ts=i, attrs={"L": "C", "ID": i - 1},
                                    eid=f"c{i}"))
            else:
                events.append(Event(
                    ts=i, attrs={"L": "B" if i % 2 == 0 else "C",
                                 "ID": 100000 + i},
                    eid=f"n{i}"))
        pattern, aggregate = parse_query_spec(QUERY)
        plan = compile_plan(pattern, aggregate=aggregate)

        def run_plain():
            registry = PatternRegistry()
            registry.register(plan)
            start = time.perf_counter()
            registry.push_many(events)
            registry.close()
            return time.perf_counter() - start

        def run_with_hub():
            registry = PatternRegistry()
            registry.register(plan)
            hub = SubscriptionHub(ring_size=256)
            registry.on_match(
                lambda pid, match: hub.publish(match, pattern_id=pid))
            start = time.perf_counter()
            registry.push_many(events)
            registry.close()
            elapsed = time.perf_counter() - start
            assert hub.last_seq >= 0          # the hub really ran
            return elapsed

        plain = with_hub = float("inf")
        for _ in range(9):
            plain = min(plain, run_plain())
            with_hub = min(with_hub, run_with_hub())
        factor = with_hub / plain
        with capsys.disabled():
            print(f"\nzero-subscriber hub overhead: plain {plain:.4f}s, "
                  f"with hub {with_hub:.4f}s ({factor:.3f}x)")
        assert factor < 1.05
