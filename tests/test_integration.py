"""Integration tests: engines against each other, end-to-end pipelines."""

import pytest

from repro import Event, EventRelation, SESPattern, match
from repro.automaton import IndexedExecutor, PartitionedMatcher
from repro.automaton.builder import build_automaton
from repro.baseline import BruteForceMatcher, naive_match
from repro.data import (CHEMO_SCHEMA, EXPECTED_Q1_EIDS, base_dataset,
                        figure1_relation, query_q1)
from repro.lang import parse_pattern, render_pattern
from repro.storage import Database
from repro.stream import ContinuousMatcher, from_relation

from conftest import eids, ev


class TestPaperRunningExample:
    """Example 1's intended results, through every entry point."""

    def test_direct_match(self, q1, figure1):
        result = match(q1, figure1)
        assert [eids(m) for m in result] == [frozenset(s)
                                             for s in EXPECTED_Q1_EIDS]

    def test_exact_bindings(self, q1, figure1):
        """Figure 2's substitution for patient 2, binding for binding."""
        result = match(q1, figure1)
        patient2 = result.matches[1]
        got = {f"{v!r}/{e.eid}" for v, e in patient2.bindings}
        assert got == {"p+/e6", "d/e7", "c/e8", "p+/e10", "p+/e11", "b/e13"}

    def test_through_dsl(self, figure1):
        pattern = parse_pattern(
            "PATTERN PERMUTE(c, p+, d) THEN b "
            "WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B' "
            "AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID WITHIN 11 DAYS")
        assert [eids(m) for m in match(pattern, figure1)] == [
            frozenset(s) for s in EXPECTED_Q1_EIDS]

    def test_through_store(self, q1, figure1):
        db = Database("hospital")
        table = db.create_table("Event", CHEMO_SCHEMA, indexes=["ID"])
        table.insert_many(figure1)
        result = table.query().match(q1)
        assert [eids(m) for m in result] == [frozenset(s)
                                             for s in EXPECTED_Q1_EIDS]

    def test_through_stream(self, q1, figure1):
        matcher = ContinuousMatcher(q1)
        matcher.push_many(from_relation(figure1))
        matcher.close()
        assert [eids(m) for m in matcher.matches] == [
            frozenset(s) for s in EXPECTED_Q1_EIDS]

    def test_oracle_agrees(self, q1, figure1):
        assert [eids(m) for m in naive_match(q1, figure1)] == [
            frozenset(s) for s in EXPECTED_Q1_EIDS]

    def test_render_round_trip_preserves_results(self, q1, figure1):
        rendered = parse_pattern(render_pattern(q1))
        assert match(rendered, figure1).matches == match(q1, figure1).matches


class TestEngineAgreement:
    def test_all_engines_on_singleton_q1(self, figure1):
        pattern = SESPattern(
            sets=[["c", "p", "d"], ["b"]],
            conditions=["c.L = 'C'", "d.L = 'D'", "p.L = 'P'", "b.L = 'B'",
                        "c.ID = p.ID", "c.ID = d.ID", "d.ID = b.ID"],
            tau=264,
        )
        ses = match(pattern, figure1).matches
        bf = BruteForceMatcher(pattern).run(figure1).matches
        oracle = naive_match(pattern, figure1)
        indexed = IndexedExecutor(build_automaton(pattern)).run(figure1).matches
        assert ses == bf == oracle == indexed

    def test_indexed_identical_on_synthetic_data(self):
        relation = base_dataset(patients=4, cycles=2)
        pattern = query_q1()
        plain = match(pattern, relation, selection="accepted")
        indexed = IndexedExecutor(build_automaton(pattern),
                                  selection="accepted").run(relation)
        assert sorted(map(hash, plain.accepted)) == \
            sorted(map(hash, indexed.accepted))

    def test_partitioned_superset_on_synthetic_data(self):
        relation = base_dataset(patients=4, cycles=2)
        pattern = query_q1()
        plain = match(pattern, relation, selection="accepted")
        partitioned = PartitionedMatcher(pattern,
                                         selection="accepted").run(relation)
        assert set(plain.accepted) <= set(partitioned.accepted)


class TestAlgorithmVsDefinition2:
    """Regression for the greedy-hijack gap between Algorithm 1 and the
    declarative Definition 2 (documented in DESIGN.md).

    With star-shaped joins, an instance that bound only the join hub's
    *spoke* can be hijacked by an unrelated event, so the operational
    algorithm misses a match the declarative semantics admits.
    """

    PATTERN = SESPattern(
        sets=[["g", "w"], ["t"]],
        conditions=[
            "g.kind = 'G'", "w.kind = 'W'", "t.kind = 'T'",
            "w.tag = g.tag", "w.tag = t.tag",   # star around w, no g-t edge
        ],
        tau=100,
    )

    EVENTS = [
        ev(1, "G", eid="gB", tag="B"),
        ev(2, "W", eid="wA", tag="A"),   # hijacks the gB instance (g-w check
                                         # needs w bound; w-g is checkable —
                                         # wait: w.tag=g.tag routes at {g}).
        ev(3, "W", eid="wB", tag="B"),
        ev(4, "T", eid="tB", tag="B"),
    ]

    def test_join_routing_prevents_this_hijack(self):
        """Here w.tag = g.tag IS checkable when binding w after g, so the
        operational engine survives — both engines find the match."""
        relation = EventRelation(self.EVENTS)
        operational = match(self.PATTERN, relation)
        declarative = naive_match(self.PATTERN, relation)
        expected = frozenset({"gB", "wB", "tB"})
        assert expected in [eids(m) for m in operational]
        assert expected in [eids(m) for m in declarative]

    def test_unconstrained_binding_hijacks(self):
        """With the star around g (not w), binding w from state {g}... is
        still constrained; the unconstrained direction is binding g from
        state {w}: make the first event a W, then an unrelated G."""
        pattern = SESPattern(
            sets=[["g", "w"], ["t"]],
            conditions=[
                "g.kind = 'G'", "w.kind = 'W'", "t.kind = 'T'",
                "w.tag = t.tag",   # g joins nobody: any G event binds
            ],
            tau=100,
        )
        events = EventRelation([
            ev(1, "W", eid="wB", tag="B"),
            ev(2, "G", eid="gX", tag="X"),   # hijacks nothing: g is free
            ev(3, "G", eid="gB", tag="B"),
            ev(4, "T", eid="tB", tag="B"),
        ])
        operational = [eids(m) for m in match(pattern, events)]
        declarative = [eids(m) for m in naive_match(pattern, events)]
        # The greedy engine binds gX (first G) — and since g is otherwise
        # unconstrained the buffer still completes with tB.  Definition 2's
        # skip-till-next-match makes the same earliest-event choice here.
        assert operational == declarative

    def test_hijack_divergence_documented(self):
        """The genuine divergence: a greedy binding that kills completion."""
        pattern = SESPattern(
            sets=[["a", "b"], ["c"]],
            conditions=[
                "a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'",
                "a.tag = b.tag", "b.tag = c.tag",
            ],
            tau=100,
        )
        events = EventRelation([
            ev(1, "A", eid="a1", tag="X"),
            # From state {a} the b transition checks a.tag = b.tag, so the
            # wrong-tag B cannot hijack...
            ev(2, "B", eid="bY", tag="Y"),
            ev(3, "B", eid="bX", tag="X"),
            ev(4, "C", eid="cX", tag="X"),
        ])
        # ...and both semantics agree on this one.
        assert ([eids(m) for m in match(pattern, events)]
                == [eids(m) for m in naive_match(pattern, events)]
                == [frozenset({"a1", "bX", "cX"})])

        # Reverse the roles: start from b (no incident condition routable
        # when binding a from state {b}?  a.tag = b.tag IS routable).  The
        # unroutable case needs a three-variable chain: start at the end
        # of the chain and hijack the middle.
        chain = SESPattern(
            sets=[["a", "b", "m"], ["c"]],
            conditions=[
                "a.kind = 'A'", "b.kind = 'B'", "m.kind = 'M'",
                "c.kind = 'C'",
                "a.tag = m.tag", "m.tag = b.tag", "b.tag = c.tag",
            ],
            tau=100,
        )
        events = EventRelation([
            ev(1, "A", eid="aX", tag="X"),
            # binding b from state {a}: no a-b condition => wrong tag binds.
            ev(2, "B", eid="bY", tag="Y"),
            ev(3, "B", eid="bX", tag="X"),
            ev(4, "M", eid="mX", tag="X"),
            ev(5, "C", eid="cX", tag="X"),
        ])
        operational = [eids(m) for m in match(chain, events)]
        declarative = [eids(m) for m in naive_match(chain, events)]
        intended = frozenset({"aX", "bX", "mX", "cX"})
        assert intended in declarative, "Definition 2 admits the match"
        assert intended not in operational, (
            "Algorithm 1's greedy instance binds bY and dead-ends — the "
            "documented operational/declarative gap; if this ever starts "
            "matching, DESIGN.md's semantics notes need updating")


class TestCrossSubsystem:
    def test_store_stream_bench_pipeline(self, q1):
        """Generate -> store -> reload -> stream-match, end to end."""
        relation = base_dataset(patients=3, cycles=1)
        db = Database("pipeline")
        table = db.create_table("Event", CHEMO_SCHEMA, indexes=["ID", "L"])
        table.insert_many(relation)

        matcher = ContinuousMatcher(q1)
        matcher.push_many(table.scan())
        matcher.close()
        batch = match(q1, relation)
        assert ([frozenset(m.bindings) for m in matcher.matches]
                == [frozenset(m.bindings) for m in batch.matches])

    def test_duplicated_data_still_matches(self, q1, figure1):
        """D2-style duplication: matches exist and satisfy the window."""
        duplicated = figure1.duplicated(2)
        result = match(q1, duplicated)
        assert len(result) >= 2
        for m in result:
            assert m.span() <= q1.tau


class TestGroupLoopDivergence:
    """Second documented operational/declarative gap: a greedy group-loop
    binding can swallow an event whose timestamp then violates the
    inter-set strict order, killing a match Definition 2 admits."""

    def test_group_loop_hijack(self):
        pattern = SESPattern(
            sets=[["u+"], ["v"]],
            conditions=["u.kind = 'A'", "v.kind = 'B'"],
            tau=1,
        )
        relation = EventRelation([
            ev(0, "A", eid="a0"),
            ev(1, "A", eid="a1"),  # greedy loop binds this ...
            ev(1, "B", eid="b1"),  # ... then u.T < v.T fails on the tie
        ])
        operational = match(pattern, relation).matches
        declarative = naive_match(pattern, relation)
        assert operational == [], "Algorithm 1 misses the match (greedy)"
        assert [eids(m) for m in declarative] == [frozenset({"a0", "b1"})], \
            "Definition 2 admits {u+/a0, v/b1}"


class TestTieDivergence:
    """Third documented operational/declarative gap: timestamp ties.

    With simultaneous events, condition 4's "strictly between" test is
    vacuous, so Definition 2 admits disjoint pairings that the greedy
    engine never forms (every instance binds the first usable event).
    """

    def test_tied_pairings(self):
        pattern = SESPattern(
            sets=[["u", "v"]],
            conditions=["u.kind = 'A'", "v.kind = 'B'"],
            tau=0,
        )
        relation = EventRelation([
            ev(0, "A", eid="a0"), ev(0, "A", eid="a1"),
            ev(0, "B", eid="b0"), ev(0, "B", eid="b1"),
        ])
        operational = [eids(m) for m in match(pattern, relation)]
        declarative = [eids(m) for m in naive_match(pattern, relation)]
        assert operational == [frozenset({"a0", "b0"})]
        assert declarative == [frozenset({"a0", "b0"}),
                               frozenset({"a1", "b1"})]
        # Exhaustive mode recovers the declarative result.
        exhaustive = [eids(m) for m in match(pattern, relation,
                                             consume_mode="exhaustive")]
        assert exhaustive == declarative
