"""Tests for the time domain conversions."""

from datetime import datetime, timedelta

import pytest

from repro.core.timedomain import (DayDomain, HourDomain, MinuteDomain,
                                   SecondDomain, TimeDomain)

EPOCH = datetime(2026, 7, 1)


class TestConversions:
    def test_epoch_is_tick_zero(self):
        assert HourDomain(EPOCH).to_ticks(EPOCH) == 0

    def test_paper_running_example_timestamps(self):
        """Figure 1: 9am July 3 is hour 57 from a July 1 midnight epoch."""
        domain = HourDomain(EPOCH)
        assert domain.to_ticks(datetime(2026, 7, 3, 9)) == 57
        assert domain.to_ticks(datetime(2026, 7, 14, 9)) == 321

    def test_round_trip(self):
        domain = HourDomain(EPOCH)
        when = datetime(2026, 7, 5, 13)
        assert domain.to_datetime(domain.to_ticks(when)) == when

    def test_flooring_within_tick(self):
        domain = HourDomain(EPOCH)
        assert domain.to_ticks(datetime(2026, 7, 1, 0, 59)) == 0
        assert domain.to_ticks(datetime(2026, 7, 1, 1, 0)) == 1

    def test_before_epoch_rejected(self):
        with pytest.raises(ValueError):
            HourDomain(EPOCH).to_ticks(datetime(2026, 6, 30))

    def test_tick_sizes(self):
        when = EPOCH + timedelta(days=1)
        assert SecondDomain(EPOCH).to_ticks(when) == 86_400
        assert MinuteDomain(EPOCH).to_ticks(when) == 1_440
        assert HourDomain(EPOCH).to_ticks(when) == 24
        assert DayDomain(EPOCH).to_ticks(when) == 1


class TestDurations:
    def test_eleven_days_is_264_hours(self):
        assert HourDomain(EPOCH).duration(timedelta(days=11)) == 264

    def test_int_passthrough(self):
        assert HourDomain(EPOCH).duration(264) == 264

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            HourDomain(EPOCH).duration(timedelta(hours=-1))

    def test_invalid_tick(self):
        with pytest.raises(ValueError):
            TimeDomain(EPOCH, timedelta(0))


class TestEndToEnd:
    def test_match_with_datetime_sourced_events(self):
        from repro import Event, EventRelation, SESPattern, match

        domain = MinuteDomain(EPOCH)
        events = EventRelation([
            Event(ts=domain.to_ticks(EPOCH + timedelta(minutes=m)),
                  eid=f"e{m}", kind=k)
            for m, k in [(0, "A"), (3, "B"), (7, "C")]
        ])
        pattern = SESPattern(
            sets=[["a", "b"], ["c"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'"],
            tau=domain.duration(timedelta(minutes=10)),
        )
        assert len(match(pattern, events)) == 1
