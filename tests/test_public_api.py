"""The public façade: ``repro.__all__`` and the documented signatures.

Pins the compile-once API surface so accidental renames, lost exports,
or signature drift fail CI rather than downstream users."""

import inspect

import repro
from repro.plan.plan import PatternPlan

EXPECTED_ALL = {
    # Core model
    "Attribute", "Attr", "Condition", "Const", "Event", "EventFilter",
    "EventRelation", "EventSchema", "MatchResult", "PatternError",
    "SESPattern", "SchemaError", "Substitution", "Variable",
    "attr", "const", "group", "var",
    # Automaton layer
    "SESAutomaton", "SESExecutor", "build_automaton", "execute",
    # Compile-once façade
    "PatternPlan", "PlanCache", "compile", "plan_cache",
    "clear_plan_cache", "set_plan_cache_size",
    # Unified query façade + typed results
    "query", "Match", "MatchSet", "AggregateSeries", "AggregateSpec",
    # Matchers
    "Matcher", "match", "ContinuousMatcher", "MultiPatternMatcher",
    "ParallelPartitionedMatcher", "ShardedStreamMatcher",
    "PatternRegistry", "TenantQuota",
    # Language
    "compile_query", "parse_query",
    # Operations
    "Observability", "WorkerCrashed", "FlightRecorder", "ObsServer",
    # Lineage / causal tracing
    "LineageRecorder", "Provenance", "TraceConfig",
    # Explain + statistics
    "ExplainReport", "explain", "explain_analyze", "StatsStore",
    "stats_store", "clear_stats_store",
    # Resilience
    "Supervisor", "RestartPolicy", "GuardConfig", "ResourceExhausted",
    "FaultPlan", "DeadLetterQueue",
    "__version__",
}


class TestAll:
    def test_all_is_exactly_the_documented_surface(self):
        assert set(repro.__all__) == EXPECTED_ALL

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))


def parameter_names(callable_):
    return list(inspect.signature(callable_).parameters)


class TestSignatures:
    def test_compile(self):
        params = inspect.signature(repro.compile).parameters
        assert list(params) == ["pattern", "optimizations", "cache",
                                "observability", "aggregate"]
        for name in ("optimizations", "cache", "observability", "aggregate"):
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    def test_query_facade(self):
        params = inspect.signature(repro.query).parameters
        assert list(params)[:2] == ["source", "events"]
        for option in ("use_filter", "selection", "consume", "workers",
                       "partition_by", "observability", "optimizations"):
            assert option in params, option
            assert params[option].kind is inspect.Parameter.KEYWORD_ONLY

    def test_plan_match_unified_options(self):
        params = parameter_names(PatternPlan.match)
        for option in ("selection", "consume", "observability", "workers",
                       "partition_by", "use_filter", "filter_mode"):
            assert option in params, option

    def test_plan_stream_unified_options(self):
        params = parameter_names(PatternPlan.stream)
        for option in ("use_filter", "suppress_overlaps", "partition_by",
                       "observability"):
            assert option in params, option

    def test_match_wrapper(self):
        params = parameter_names(repro.match)
        assert params[:2] == ["pattern", "relation"]
        for option in ("selection", "consume", "observability"):
            assert option in params, option

    def test_matcher_wrapper(self):
        params = parameter_names(repro.Matcher.__init__)
        for option in ("selection", "consume", "observability"):
            assert option in params, option

    def test_parallel_matcher_unified_options(self):
        params = parameter_names(repro.ParallelPartitionedMatcher.__init__)
        for option in ("partition_by", "workers", "consume",
                       "observability"):
            assert option in params, option

    def test_sharded_matcher_unified_options(self):
        params = parameter_names(repro.ShardedStreamMatcher.__init__)
        for option in ("partition_by", "workers", "observability"):
            assert option in params, option

    def test_continuous_matcher_unified_options(self):
        params = parameter_names(repro.ContinuousMatcher.__init__)
        for option in ("use_filter", "suppress_overlaps", "observability"):
            assert option in params, option

    def test_match_carries_provenance_field(self):
        from dataclasses import fields
        names = [f.name for f in fields(repro.Match)]
        assert names == ["substitution", "pattern_id", "partition",
                         "provenance"]

    def test_obs_server_takes_a_lineage_provider(self):
        assert "lineage" in parameter_names(repro.ObsServer.__init__)

    def test_trace_config_surface(self):
        config = repro.TraceConfig(sample_rate=0.5)
        assert config.enabled
        assert not repro.TraceConfig().enabled
        assert "environ" in parameter_names(repro.TraceConfig.from_env)

    def test_trace_env_knobs_are_pinned(self):
        from repro.obs import (TRACE_MAX_ENV, TRACE_SAMPLE_ENV,
                               TRACE_SLOW_MS_ENV)
        assert TRACE_SAMPLE_ENV == "REPRO_TRACE_SAMPLE"
        assert TRACE_SLOW_MS_ENV == "REPRO_TRACE_SLOW_MS"
        assert TRACE_MAX_ENV == "REPRO_TRACE_MAX"

    def test_cli_has_a_trace_subcommand(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["trace", "--query", "PATTERN PERMUTE(a) WHERE a.k = 1 "
             "WITHIN 5", "--data", "events.csv"])
        assert args.command == "trace"
        assert args.sample == 1.0
        assert args.format == "text"


class TestFacadeBehaviour:
    def test_compile_returns_plans_from_the_global_cache(self):
        pattern = repro.SESPattern(
            sets=[["a"], ["b"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'"], tau=9)
        assert repro.compile(pattern) is repro.compile(pattern)

    def test_plan_exposes_fingerprint_and_describe(self):
        pattern = repro.SESPattern(
            sets=[["a"]], conditions=["a.kind = 'A'"], tau=5)
        plan = repro.compile(pattern)
        assert isinstance(plan.fingerprint, str) and len(plan.fingerprint) == 64
        assert isinstance(plan.describe(), str)

    def test_parse_query_parses_permute_text(self):
        node = repro.parse_query(
            "PATTERN PERMUTE(a, b) WHERE a.k = 'x' AND b.k = 'y' WITHIN 10")
        assert node is not None

    def test_compile_query_builds_patterns(self):
        pattern = repro.compile_query(repro.parse_query(
            "PATTERN PERMUTE(a, b) WHERE a.k = 'x' AND b.k = 'y' WITHIN 10"))
        assert isinstance(pattern, repro.SESPattern)

    def test_query_returns_typed_result_union(self):
        events = [repro.Event(ts=1, k="x"), repro.Event(ts=2, k="y")]
        text = "PATTERN PERMUTE(a, b) WHERE a.k = 'x' AND b.k = 'y' WITHIN 10"
        matches = repro.query(text, events)
        assert isinstance(matches, repro.MatchSet)
        assert matches.kind == "matches"
        assert all(isinstance(m, repro.Match) for m in matches)
        series = repro.query("SELECT count(*) AS n FROM " + text, events)
        assert isinstance(series, repro.AggregateSeries)
        assert series.kind == "aggregates"
        assert series["n"] == 1

    def test_match_and_matcher_warn_once(self):
        import warnings

        from repro.core import options
        pattern = repro.SESPattern(
            sets=[["a"]], conditions=["a.kind = 'A'"], tau=5)
        options._WARNED.discard("repro.match")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.match(pattern, [repro.Event(ts=1, kind="A")])
            repro.match(pattern, [repro.Event(ts=1, kind="A")])
        ours = [w for w in caught
                if "repro.match is deprecated" in str(w.message)]
        assert len(ours) == 1
