"""Property-based tests for storage, query pushdown, and streaming."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Event, EventRelation, match
from repro.storage import EventTable, load_relation, save_relation
from repro.core.events import Attribute, EventSchema
from repro.stream import ContinuousMatcher, from_relation

from test_property import simple_patterns, typed_relations

SCHEMA = EventSchema([Attribute("kind", str), Attribute("num", int)],
                     name="T")


@st.composite
def schema_relations(draw, max_events: int = 15):
    """Relations conforming to SCHEMA, with eids."""
    n = draw(st.integers(min_value=0, max_value=max_events))
    timestamps = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=60), min_size=n, max_size=n)))
    events = []
    for i, ts in enumerate(timestamps):
        events.append(Event(
            ts=ts, eid=f"e{i}",
            kind=draw(st.sampled_from("ABC")),
            num=draw(st.integers(-5, 5)),
        ))
    relation = EventRelation(schema=SCHEMA, name="T")
    relation.extend(events)
    return relation


class TestStorageProperties:
    @given(relation=schema_relations())
    @settings(max_examples=60, deadline=None)
    def test_csv_round_trip(self, relation, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "r.csv"
        save_relation(relation, path)
        assert load_relation(path) == relation

    @given(relation=schema_relations())
    @settings(max_examples=60, deadline=None)
    def test_table_preserves_relation(self, relation):
        table = EventTable("T", SCHEMA, indexes=["kind"])
        table.insert_many(relation)
        assert table.to_relation() == relation

    @given(relation=schema_relations(), kind=st.sampled_from("ABC"),
           lo=st.integers(-5, 5))
    @settings(max_examples=60, deadline=None)
    def test_query_pushdown_equals_naive_filter(self, relation, kind, lo):
        """Index-accelerated query == brute-force predicate scan."""
        table = EventTable("T", SCHEMA, indexes=["kind"])
        table.insert_many(relation)
        via_query = (table.query()
                     .where("kind", "=", kind)
                     .where("num", ">=", lo)
                     .execute())
        naive = [e for e in relation
                 if e["kind"] == kind and e["num"] >= lo]
        assert list(via_query) == naive

    @given(relation=schema_relations(), start=st.integers(0, 60),
           width=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_time_slice_equals_naive(self, relation, start, width):
        table = EventTable("T", SCHEMA)
        table.insert_many(relation)
        end = start + width
        via_scan = list(table.scan(start, end))
        naive = [e for e in relation if start <= e.ts <= end]
        assert via_scan == naive


class TestStreamEqualsBatch:
    @given(pattern=simple_patterns(), relation=typed_relations(max_events=10))
    @settings(max_examples=60, deadline=None)
    def test_continuous_matcher_equals_batch(self, pattern, relation):
        """Streaming over a finite relation reports the batch matches.

        Overlap suppression is disabled on both sides: the online matcher
        suppresses in emission order, which may differ from the batch
        order when several matches expire at the same event."""
        matcher = ContinuousMatcher(pattern, suppress_overlaps=False)
        matcher.push_many(from_relation(relation))
        matcher.close()
        batch = match(pattern, relation, selection="all-starts")
        streamed = sorted((frozenset(m.bindings) for m in matcher.matches),
                          key=str)
        batched = sorted((frozenset(m.bindings) for m in batch.matches),
                         key=str)
        assert streamed == batched
