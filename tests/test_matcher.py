"""Tests for the high-level Matcher facade."""

import pytest

from repro import Matcher, match
from repro.data import figure1_relation, query_q1

from conftest import ev


class TestMatcher:
    def test_compile_once_run_many(self, q1, figure1):
        matcher = Matcher(q1)
        first = matcher.run(figure1)
        second = matcher.run(figure1)
        assert first.matches == second.matches
        assert len(first) == 2

    def test_accepts_plain_iterables(self, q1, figure1):
        matcher = Matcher(q1)
        assert matcher.run(list(figure1)).matches == \
            matcher.run(figure1).matches

    def test_accepts_generators(self, q1, figure1):
        matcher = Matcher(q1)
        assert matcher.run(e for e in figure1).matches == \
            matcher.run(figure1).matches

    def test_executor_factory_returns_fresh_executors(self, q1, figure1):
        matcher = Matcher(q1)
        a = matcher.executor()
        b = matcher.executor()
        assert a is not b
        a.feed(figure1[0])
        assert b.active_instances == 0

    def test_executor_inherits_configuration(self, q1):
        matcher = Matcher(q1, use_filter=False, selection="accepted",
                          consume_mode="exhaustive")
        executor = matcher.executor()
        assert executor.event_filter is None
        assert executor.selection == "accepted"
        assert executor.consume_mode == "exhaustive"

    def test_automaton_shared_across_runs(self, q1):
        matcher = Matcher(q1)
        assert matcher.executor().automaton is matcher.automaton

    def test_repr(self, q1):
        assert "Matcher" in repr(Matcher(q1))

    def test_match_function_is_one_shot_matcher(self, q1, figure1):
        assert match(q1, figure1).matches == Matcher(q1).run(figure1).matches

    def test_concurrent_matchers_do_not_interfere(self, kind_pattern):
        a = Matcher(kind_pattern).executor()
        b = Matcher(kind_pattern).executor()
        a.feed(ev(1, "A"))
        b.feed(ev(5, "X"))  # matches no variable
        assert a.active_instances == 1
        assert b.active_instances == 0
