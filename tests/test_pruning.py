"""Tests for C-CEP-style deadline pruning."""

import pytest

from repro import SESPattern, match
from repro.automaton.builder import build_automaton
from repro.automaton.pruning import DeadlineTable, PruningExecutor
from repro.automaton.states import make_state
from repro.data import base_dataset, figure1_relation, query_q1

from conftest import ev


@pytest.fixture
def three_phase():
    return SESPattern(
        sets=[["a"], ["b"], ["c"]],
        conditions=["a.kind = 'A'", "b.kind = 'B'", "c.kind = 'C'"],
        tau=10,
    )


class TestDeadlineTable:
    def test_boundaries_per_state(self, three_phase):
        automaton = build_automaton(three_phase)
        table = DeadlineTable(three_phase, automaton)
        a = three_phase.variable("a")
        b = three_phase.variable("b")
        c = three_phase.variable("c")
        assert table.min_remaining_time(make_state()) == 2
        assert table.min_remaining_time(make_state([a])) == 2
        assert table.min_remaining_time(make_state([a, b])) == 1
        assert table.min_remaining_time(make_state([a, b, c])) == 0

    def test_within_set_variables_cost_nothing(self, q1):
        automaton = build_automaton(q1)
        table = DeadlineTable(q1, automaton)
        c = q1.variable("c")
        # At state {c}: d and p+ can still bind at the same timestamp;
        # only the V2 boundary remains.
        assert table.min_remaining_time(make_state([c])) == 1

    def test_tick_scaling(self, three_phase):
        automaton = build_automaton(three_phase)
        table = DeadlineTable(three_phase, automaton, tick=5)
        assert table.min_remaining_time(make_state()) == 10

    def test_zero_tick_disables_lookahead(self, three_phase):
        automaton = build_automaton(three_phase)
        table = DeadlineTable(three_phase, automaton, tick=0)
        assert table.min_remaining_time(make_state()) == 0

    def test_negative_tick_rejected(self, three_phase):
        automaton = build_automaton(three_phase)
        with pytest.raises(ValueError):
            DeadlineTable(three_phase, automaton, tick=-1)


class TestPruningExecutor:
    def run_both(self, pattern, events):
        automaton = build_automaton(pattern)
        plain = match(pattern, events, use_filter=False, selection="accepted")
        pruning = PruningExecutor(pattern, automaton,
                                  selection="accepted").run(events)
        return plain, pruning

    def test_accepted_buffers_unchanged(self, three_phase):
        events = [ev(0, "A"), ev(4, "B"), ev(8, "C"),
                  ev(20, "A"), ev(29, "B"), ev(31, "C")]
        plain, pruning = self.run_both(three_phase, events)
        assert sorted(map(hash, plain.accepted)) == \
            sorted(map(hash, pruning.accepted))

    def test_prunes_doomed_instances(self, three_phase):
        # a@0 binds; b@10 arrives at the window edge: binding b leaves the
        # c-boundary needing ts >= 11 > 0 + 10 -> the successor is doomed.
        events = [ev(0, "A"), ev(10, "B"), ev(11, "C")]
        automaton = build_automaton(three_phase)
        executor = PruningExecutor(three_phase, automaton,
                                   selection="accepted")
        result = executor.run(events)
        assert executor.pruned_instances > 0
        assert result.accepted == []

    def test_never_more_instances_than_plain(self, q1):
        relation = base_dataset(patients=4, cycles=2)
        plain = match(q1, relation, use_filter=False, selection="accepted")
        executor = PruningExecutor(q1, build_automaton(q1),
                                   selection="accepted")
        pruned = executor.run(relation)
        assert (pruned.stats.max_simultaneous_instances
                <= plain.stats.max_simultaneous_instances)
        assert sorted(map(hash, plain.accepted)) == \
            sorted(map(hash, pruned.accepted))

    def test_matches_on_paper_example(self, q1, figure1):
        executor = PruningExecutor(q1, build_automaton(q1))
        assert executor.run(figure1).matches == match(q1, figure1).matches

    def test_reset_clears_prune_counter(self, three_phase):
        automaton = build_automaton(three_phase)
        executor = PruningExecutor(three_phase, automaton)
        executor.run([ev(0, "A"), ev(10, "B"), ev(11, "C")])
        assert executor.pruned_instances > 0
        executor.reset()
        assert executor.pruned_instances == 0
