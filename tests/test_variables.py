"""Unit tests for repro.core.variables."""

import pytest

from repro.core.variables import (Variable, group, parse_variable,
                                  parse_variables, var)


class TestVariable:
    def test_singleton(self):
        v = var("c")
        assert v.name == "c"
        assert v.is_singleton
        assert not v.is_group

    def test_group(self):
        g = group("p")
        assert g.is_group
        assert not g.is_singleton

    def test_name_with_plus_rejected(self):
        with pytest.raises(ValueError):
            Variable("p+")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_equality_distinguishes_quantifier(self):
        assert var("p") != group("p")
        assert var("p") == var("p")

    def test_hashable(self):
        assert len({var("a"), var("a"), group("a")}) == 2

    def test_ordering_deterministic(self):
        vs = sorted([group("b"), var("a"), var("b")])
        assert [repr(v) for v in vs] == ["a", "b", "b+"]

    def test_repr(self):
        assert repr(var("c")) == "c"
        assert repr(group("p")) == "p+"


class TestParsing:
    def test_parse_singleton(self):
        assert parse_variable("c") == var("c")

    def test_parse_group(self):
        assert parse_variable("p+") == group("p")

    def test_parse_strips_whitespace(self):
        assert parse_variable("  p+ ") == group("p")

    def test_parse_variables(self):
        assert parse_variables(["a", "b+"]) == (var("a"), group("b"))
