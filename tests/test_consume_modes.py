"""Tests for the greedy vs exhaustive consumption modes."""

import pytest
from hypothesis import given, settings

from repro import EventRelation, SESPattern, match
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor
from repro.baseline import naive_match

from conftest import eids, ev
from test_property import simple_patterns, typed_relations


class TestModeSelection:
    def test_default_is_greedy(self, q1):
        assert SESExecutor(build_automaton(q1)).consume_mode == "greedy"

    def test_invalid_mode_rejected(self, q1):
        with pytest.raises(ValueError):
            SESExecutor(build_automaton(q1), consume_mode="bogus")

    def test_match_forwards_mode(self, q1, figure1):
        result = match(q1, figure1, consume_mode="exhaustive")
        assert len(result) == 2


class TestExhaustiveClosesTheGaps:
    def test_group_loop_divergence_closed(self):
        """The greedy loop-hijack case of test_integration: exhaustive
        mode recovers the Definition 2 match."""
        pattern = SESPattern(sets=[["u+"], ["v"]],
                             conditions=["u.kind = 'A'", "v.kind = 'B'"],
                             tau=1)
        relation = EventRelation([ev(0, "A", eid="a0"),
                                  ev(1, "A", eid="a1"),
                                  ev(1, "B", eid="b1")])
        greedy = match(pattern, relation).matches
        exhaustive = match(pattern, relation, consume_mode="exhaustive").matches
        assert greedy == []
        assert [eids(m) for m in exhaustive] == [frozenset({"a0", "b1"})]
        assert exhaustive == naive_match(pattern, relation)

    def test_join_hijack_divergence_closed(self):
        pattern = SESPattern(
            sets=[["a", "b", "m"], ["c"]],
            conditions=["a.kind = 'A'", "b.kind = 'B'", "m.kind = 'M'",
                        "c.kind = 'C'",
                        "a.tag = m.tag", "m.tag = b.tag", "b.tag = c.tag"],
            tau=100,
        )
        relation = EventRelation([
            ev(1, "A", eid="aX", tag="X"),
            ev(2, "B", eid="bY", tag="Y"),
            ev(3, "B", eid="bX", tag="X"),
            ev(4, "M", eid="mX", tag="X"),
            ev(5, "C", eid="cX", tag="X"),
        ])
        intended = frozenset({"aX", "bX", "mX", "cX"})
        assert intended not in [eids(m) for m in match(pattern, relation)]
        exhaustive = match(pattern, relation, consume_mode="exhaustive")
        assert intended in [eids(m) for m in exhaustive]
        assert exhaustive.matches == naive_match(pattern, relation)

    def test_paper_example_unchanged(self, q1, figure1):
        """On the running example the modes coincide."""
        assert (match(q1, figure1).matches
                == match(q1, figure1, consume_mode="exhaustive").matches)


class TestExhaustiveCost:
    def test_more_instances_than_greedy(self, q1):
        from repro.data import base_dataset
        relation = base_dataset(patients=3, cycles=1)
        greedy = match(q1, relation, selection="accepted")
        exhaustive = match(q1, relation, selection="accepted",
                           consume_mode="exhaustive")
        assert (exhaustive.stats.max_simultaneous_instances
                >= greedy.stats.max_simultaneous_instances)
        assert set(greedy.accepted) <= set(exhaustive.accepted)


class TestExhaustiveEqualsOracle:
    @given(pattern=simple_patterns(), relation=typed_relations(max_events=8))
    @settings(max_examples=50, deadline=None)
    def test_property_join_free(self, pattern, relation):
        """Exhaustive mode == Definition 2 on join-free patterns,
        including group variables (which break greedy equivalence)."""
        exhaustive = match(pattern, relation, consume_mode="exhaustive").matches
        assert exhaustive == naive_match(pattern, relation)


class TestContiguousMode:
    PATTERN = SESPattern(
        sets=[["a"], ["b"]],
        conditions=["a.kind = 'A'", "b.kind = 'B'"],
        tau=20,
    )

    def test_adjacent_events_match(self):
        events = [ev(1, "A"), ev(2, "B")]
        result = match(self.PATTERN, events, consume_mode="contiguous")
        assert len(result) == 1

    def test_interrupted_run_ends(self):
        """An intervening relevant event breaks the run; the later pair
        still matches (a fresh instance starts at every event)."""
        events = [ev(1, "A"), ev(2, "A", eid="a2"), ev(3, "B")]
        result = match(self.PATTERN, events, consume_mode="contiguous")
        assert [eids(m) for m in result] == [frozenset({"a2", "b3"})]

    def test_filtered_events_do_not_break_contiguity(self):
        """Contiguity is relative to events passing the Section 4.5
        filter — irrelevant events in between are invisible."""
        events = [ev(1, "A"), ev(2, "X"), ev(3, "B")]
        with_filter = match(self.PATTERN, events, consume_mode="contiguous")
        without = match(self.PATTERN, events, consume_mode="contiguous",
                        use_filter=False)
        assert len(with_filter) == 1
        assert without.matches == []

    def test_accepting_run_emits_on_break(self):
        group_pattern = SESPattern(sets=[["p+"]],
                                   conditions=["p.kind = 'P'"], tau=20)
        events = [ev(1, "P"), ev(2, "P"), ev(3, "P")]
        result = match(group_pattern, events, consume_mode="contiguous",
                       use_filter=False)
        assert [eids(m) for m in result] == [frozenset({"p1", "p2", "p3"})]

    def test_accepting_run_emitted_when_interrupted(self):
        group_pattern = SESPattern(sets=[["p+"]],
                                   conditions=["p.kind = 'P'"], tau=20)
        events = [ev(1, "P"), ev(2, "P"), ev(3, "X"), ev(4, "P")]
        result = match(group_pattern, events, consume_mode="contiguous",
                       use_filter=False)
        # Default selection suppresses the {p2} suffix run of {p1, p2}.
        assert [eids(m) for m in result] == [
            frozenset({"p1", "p2"}), frozenset({"p4"})
        ]
        all_starts = match(group_pattern, events, consume_mode="contiguous",
                           use_filter=False, selection="all-starts")
        assert frozenset({"p2"}) in [eids(m) for m in all_starts]

    def test_subset_of_greedy_matches(self):
        events = [ev(1, "A"), ev(2, "A", eid="a2"), ev(3, "X"), ev(4, "B")]
        greedy = match(self.PATTERN, events, selection="accepted",
                       use_filter=False)
        contiguous = match(self.PATTERN, events, selection="accepted",
                           use_filter=False, consume_mode="contiguous")
        assert set(contiguous.accepted) <= set(greedy.accepted)
