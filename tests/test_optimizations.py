"""Tests for the runtime optimizations (state indexing, partitioning)."""

import pytest

from repro import SESPattern, match
from repro.automaton import (IndexedExecutor, PartitionedMatcher,
                             partition_attribute)
from repro.automaton.builder import build_automaton
from repro.automaton.filtering import EventFilter
from repro.data import base_dataset, figure1_relation, query_q1

from conftest import ev


class TestPartitionAttribute:
    def test_detects_star_join(self, q1):
        """Q1 joins c-p, c-d, d-b on ID: connected -> partitionable."""
        assert partition_attribute(q1) == "ID"

    def test_disconnected_join_graph(self):
        pattern = SESPattern(
            sets=[["a", "b", "c"]],
            conditions=["a.ID = b.ID"],  # c joins nobody
            tau=10,
        )
        assert partition_attribute(pattern) is None

    def test_no_joins(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        assert partition_attribute(pattern) is None

    def test_inequality_joins_do_not_count(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.ID < b.ID"], tau=10)
        assert partition_attribute(pattern) is None

    def test_cross_attribute_equalities_do_not_count(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.ID = b.other"], tau=10)
        assert partition_attribute(pattern) is None

    def test_picks_a_connecting_attribute(self):
        pattern = SESPattern(
            sets=[["a", "b"]],
            conditions=["a.host = b.host", "a.ID = b.ID"],
            tau=10,
        )
        assert partition_attribute(pattern) in ("host", "ID")


class TestIndexedExecutor:
    def test_identical_matches(self, q1, figure1):
        indexed = IndexedExecutor(build_automaton(q1)).run(figure1)
        assert indexed.matches == match(q1, figure1).matches

    def test_identical_stats_shape(self, q1, figure1):
        plain = match(q1, figure1, use_filter=False)
        indexed = IndexedExecutor(build_automaton(q1)).run(figure1)
        assert indexed.stats.accepted_buffers == plain.stats.accepted_buffers
        assert indexed.stats.transitions_fired == plain.stats.transitions_fired
        assert (indexed.stats.max_simultaneous_instances
                == plain.stats.max_simultaneous_instances)

    def test_filter_supported(self, q1):
        relation = base_dataset(patients=3, cycles=1)  # contains lab noise
        executor = IndexedExecutor(build_automaton(q1),
                                   event_filter=EventFilter(q1))
        result = executor.run(relation)
        assert result.matches == match(q1, relation).matches
        assert result.stats.events_filtered > 0

    def test_incremental_interface(self, q1, figure1):
        executor = IndexedExecutor(build_automaton(q1))
        for event in figure1:
            executor.feed(event)
        assert executor.active_instances > 0
        executor.finish()
        assert executor.active_instances == 0
        assert len(executor.accepted_buffers) == 3

    def test_out_of_order_rejected(self, q1):
        executor = IndexedExecutor(build_automaton(q1))
        executor.feed(ev(5, "C", ID=1, L="C", V=1.0, U="mg"))
        with pytest.raises(ValueError):
            executor.feed(ev(1, "C", ID=1, L="C", V=1.0, U="mg"))

    def test_invalid_selection(self, q1):
        with pytest.raises(ValueError):
            IndexedExecutor(build_automaton(q1), selection="bogus")

    def test_reset(self, q1, figure1):
        executor = IndexedExecutor(build_automaton(q1))
        executor.run(figure1)
        executor.reset()
        assert executor.active_instances == 0
        assert executor.stats.events_read == 0


class TestPartitionedMatcher:
    def test_same_matches_on_q1(self, q1, figure1):
        partitioned = PartitionedMatcher(q1).run(figure1)
        assert partitioned.matches == match(q1, figure1).matches

    def test_rejects_unpartitionable_pattern(self):
        pattern = SESPattern(sets=[["a", "b"]],
                             conditions=["a.kind = 'A'"], tau=10)
        with pytest.raises(ValueError):
            PartitionedMatcher(pattern)

    def test_explicit_attribute_override(self, q1, figure1):
        matcher = PartitionedMatcher(q1, attribute="ID")
        assert matcher.attribute == "ID"
        assert matcher.run(figure1).matches == match(q1, figure1).matches

    def test_lower_peak_instances(self, q1):
        relation = base_dataset(patients=6, cycles=2)
        plain = match(q1, relation, selection="accepted")
        partitioned = PartitionedMatcher(q1, selection="accepted").run(relation)
        assert (partitioned.stats.max_simultaneous_instances
                <= plain.stats.max_simultaneous_instances)

    def test_superset_recall(self, q1):
        relation = base_dataset(patients=6, cycles=2)
        plain = match(q1, relation, selection="accepted")
        partitioned = PartitionedMatcher(q1, selection="accepted").run(relation)
        assert set(plain.accepted) <= set(partitioned.accepted)

    def test_aggregated_stats(self, q1, figure1):
        result = PartitionedMatcher(q1).run(figure1)
        assert result.stats.events_read == len(figure1)
        assert result.stats.matches == len(result.matches)

    def test_accepts_plain_iterables(self, q1, figure1):
        result = PartitionedMatcher(q1).run(list(figure1))
        assert len(result) == 2
