"""Tests for repro.net: wire protocols, subscription hub, push server."""

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Event, Substitution
from repro.core.variables import var
from repro.lang import parse_query_spec
from repro.net import (FrameDecoder, FrameError, PushServer,
                       SubscriptionHub, WSFrame, decode_frames, encode_frame,
                       event_from_json, event_to_json, http_push,
                       parse_sse_stream, push_events, request_quit,
                       sse_format, subscribe_sse, subscribe_ws,
                       ws_accept_key, ws_decode, ws_encode)
from repro.net.client import PushRejected
from repro.obs import Observability
from repro.obs.lineage import match_id
from repro.plan.cache import compile as compile_plan
from repro.registry import PatternRegistry
from repro.resilience import DeliveryLog

A, B = var("a"), var("b")

QUERY = ("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND b.L = 'C' "
         "WITHIN 10")


def make_sub(i):
    """A distinct two-event substitution (distinct match id per ``i``)."""
    return Substitution([
        (A, Event(ts=2 * i, attrs={"L": "B"}, eid=f"a{i}")),
        (B, Event(ts=2 * i + 1, attrs={"L": "C"}, eid=f"b{i}")),
    ])


def make_events(n, start_ts=0):
    """An alternating B/C stream producing roughly n//2 matches."""
    return [Event(ts=start_ts + i,
                  attrs={"L": "B" if i % 2 == 0 else "C"},
                  eid=f"e{start_ts + i}")
            for i in range(n)]


# ----------------------------------------------------------------------
# Wire formats
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip(self):
        frame = {"type": "batch", "seq": 1,
                 "events": [event_to_json(Event(ts=1, attrs={"L": "B"},
                                                eid="e1"))]}
        assert decode_frames(encode_frame(frame)) == [frame]

    def test_incremental_byte_by_byte(self):
        data = encode_frame({"type": "ping"}) + encode_frame({"type": "bye"})
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i:i + 1]))
        assert [f["type"] for f in frames] == ["ping", "bye"]

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(FrameError, match="exceeds"):
            decoder.feed(encode_frame({"type": "x" * 64}))

    def test_undecodable_body_rejected(self):
        import struct
        with pytest.raises(FrameError, match="undecodable"):
            decode_frames(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")

    def test_untyped_frame_rejected(self):
        import struct
        body = json.dumps([1, 2]).encode()
        with pytest.raises(FrameError, match="typed"):
            decode_frames(struct.pack(">I", len(body)) + body)

    def test_event_codec_roundtrip(self):
        event = Event(ts=7, attrs={"L": "B", "V": 1.5}, eid="e7")
        back = event_from_json(event_to_json(event))
        assert back.ts == 7 and back.eid == "e7"
        assert back.get("V") == 1.5

    def test_event_without_ts_rejected(self):
        with pytest.raises(FrameError, match="ts"):
            event_from_json({"eid": "x"})


class TestSSE:
    def test_format_and_parse_roundtrip(self):
        blocks = (sse_format({"a": 1}, event_id=3, event="match")
                  + b": heartbeat\n\n"
                  + sse_format({"resume": 3}, event="drain"))
        lines = blocks.decode().splitlines(keepends=True)
        parsed = list(parse_sse_stream(lines))
        assert parsed == [("match", "3", {"a": 1}),
                          ("drain", "3", {"resume": 3})]

    def test_default_event_type_is_message(self):
        parsed = list(parse_sse_stream(["data: {}", ""]))
        assert parsed == [("message", None, {})]


class TestWebSocketCodec:
    def test_accept_key_rfc_vector(self):
        # RFC 6455 section 1.3 worked example.
        assert (ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize("size", [0, 5, 126, 70000])
    def test_encode_decode_roundtrip(self, mask, size):
        payload = bytes(range(256)) * (size // 256) + bytes(range(size % 256))
        buffer = bytearray(ws_encode(payload, WSFrame.TEXT, mask=mask))
        frame = ws_decode(buffer)
        assert frame.opcode == WSFrame.TEXT
        assert frame.payload == payload
        assert not buffer  # fully consumed

    def test_partial_buffer_returns_none(self):
        data = ws_encode(b"hello")
        assert ws_decode(bytearray(data[:3])) is None


# ----------------------------------------------------------------------
# Delivery log
# ----------------------------------------------------------------------
class TestDeliveryLog:
    def test_append_requires_seq(self, tmp_path):
        log = DeliveryLog(tmp_path / "wal.jsonl")
        with pytest.raises(ValueError):
            log.append({"match_id": "x"})

    def test_roundtrip_and_cursor_queries(self, tmp_path):
        log = DeliveryLog(tmp_path / "wal.jsonl")
        for seq in range(5):
            log.append({"seq": seq, "match_id": f"m{seq}"})
        assert log.last_seq() == 4
        assert [r["seq"] for r in log.entries_after(2)] == [3, 4]
        assert len(DeliveryLog(tmp_path / "wal.jsonl")) == 5

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = DeliveryLog(path)
        log.append({"seq": 0, "match_id": "m0"})
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "match_')  # crash mid-write
        assert [r["seq"] for r in DeliveryLog(path)] == [0]

    def test_rotation_read_order(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = DeliveryLog(path, max_bytes=64)
        for seq in range(12):
            log.append({"seq": seq, "match_id": f"m{seq}"})
        assert (path.with_name(path.name + ".1")).exists()
        seqs = [r["seq"] for r in DeliveryLog(path, max_bytes=64)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 11


# ----------------------------------------------------------------------
# Subscription hub
# ----------------------------------------------------------------------
class TestHubPublish:
    def test_monotonic_seq_and_payload_shape(self):
        hub = SubscriptionHub()
        first = hub.publish(make_sub(0), pattern_id="p1", tenant="t1")
        second = hub.publish(make_sub(1), pattern_id="p1", tenant="t1")
        assert (first.seq, second.seq) == (0, 1)
        assert first.payload["pattern_id"] == "p1"
        assert first.payload["tenant"] == "t1"
        assert set(first.payload["bindings"]) == {"a", "b"}
        assert first.payload["match_id"] == match_id(make_sub(0))

    def test_duplicate_match_suppressed(self):
        hub = SubscriptionHub()
        assert hub.publish(make_sub(0)) is not None
        assert hub.publish(make_sub(0)) is None
        assert hub.last_seq == 0

    def test_filters(self):
        hub = SubscriptionHub()
        only_p1 = hub.attach(patterns=["p1"])
        only_t2 = hub.attach(tenants=["t2"])
        everything = hub.attach()
        hub.publish(make_sub(0), pattern_id="p1", tenant="t1")
        hub.publish(make_sub(1), pattern_id="p2", tenant="t2")
        kinds = lambda s: [p.pattern_id for k, p in s.drain_items()
                           if k == "match"]
        assert kinds(only_p1) == ["p1"]
        assert kinds(only_t2) == ["p2"]
        assert kinds(everything) == ["p1", "p2"]

    def test_delivered_or_persisted_order(self, tmp_path):
        # The WAL holds the entry even if no subscriber ever consumed it.
        wal = DeliveryLog(tmp_path / "wal.jsonl")
        hub = SubscriptionHub(wal=wal)
        hub.publish(make_sub(0))
        assert wal.last_seq() == 0

    def test_recovery_restores_cursor_and_dedup(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        hub = SubscriptionHub(wal=DeliveryLog(path))
        hub.publish(make_sub(0))
        hub.publish(make_sub(1))
        # Crash; restart from the same WAL.
        reborn = SubscriptionHub(wal=DeliveryLog(path))
        assert reborn.last_seq == 1
        assert reborn.publish(make_sub(0)) is None  # still a duplicate
        entry = reborn.publish(make_sub(2))
        assert entry.seq == 2  # cursors continue, never reused


class TestHubResume:
    def test_resume_from_ring(self):
        hub = SubscriptionHub(ring_size=16)
        for i in range(6):
            hub.publish(make_sub(i))
        sub = hub.attach(resume_after=2)
        seqs = [p.seq for k, p in sub.drain_items() if k == "match"]
        assert seqs == [3, 4, 5]

    def test_resume_spills_to_wal_beyond_ring(self, tmp_path):
        hub = SubscriptionHub(ring_size=2, wal=DeliveryLog(tmp_path / "w"))
        for i in range(8):
            hub.publish(make_sub(i))
        sub = hub.attach(resume_after=-1)  # everything
        seqs = [p.seq for k, p in sub.drain_items() if k == "match"]
        assert seqs == list(range(8))

    def test_live_attach_skips_history(self):
        hub = SubscriptionHub()
        hub.publish(make_sub(0))
        sub = hub.attach()  # no resume cursor: start at the tail
        assert sub.drain_items() == []
        hub.publish(make_sub(1))
        assert [p.seq for k, p in sub.drain_items() if k == "match"] == [1]

    def test_replay_respects_filters(self):
        hub = SubscriptionHub(ring_size=16)
        hub.publish(make_sub(0), pattern_id="p1")
        hub.publish(make_sub(1), pattern_id="p2")
        sub = hub.attach(patterns=["p2"], resume_after=-1)
        assert [p.seq for k, p in sub.drain_items()
                if k == "match"] == [1]


class TestSlowConsumerPolicies:
    def test_disconnect_policy_detaches(self):
        hub = SubscriptionHub()
        sub = hub.attach(queue_size=2, policy="disconnect")
        for i in range(3):
            hub.publish(make_sub(i))
        assert sub.closed
        assert sub.close_reason == "slow-consumer"
        assert sub.subscriber_id not in [s.subscriber_id
                                         for s in hub.subscribers]

    def test_shed_policy_emits_gap_notice(self):
        hub = SubscriptionHub()
        sub = hub.attach(queue_size=2, policy="shed")
        for i in range(5):
            hub.publish(make_sub(i))
        items = sub.drain_items()
        kinds = [k for k, _ in items]
        assert kinds[0] == "gap"
        gap = items[0][1]
        assert gap["shed"] == 3  # 5 published, queue of 2
        assert sub.sheds == 3
        assert [p.seq for k, p in items if k == "match"] == [3, 4]

    def test_degrade_policy_collapses_to_aggregates(self):
        hub = SubscriptionHub()
        sub = hub.attach(queue_size=2, policy="degrade")
        for i in range(6):
            hub.publish(make_sub(i), pattern_id="p1")
        items = sub.drain_items()
        assert [k for k, _ in items] == ["aggregates"]
        assert items[0][1]["counts"] == {"p1": 6}
        # After catching up, matches flow normally again.
        hub.publish(make_sub(6), pattern_id="p1")
        assert [k for k, _ in sub.drain_items()] == ["match"]

    def test_unknown_policy_rejected(self):
        hub = SubscriptionHub()
        with pytest.raises(ValueError, match="policy"):
            hub.attach(policy="explode")


class TestHubDrain:
    def test_drain_queues_terminal_notice_with_resume_token(self):
        hub = SubscriptionHub()
        sub = hub.attach()
        hub.publish(make_sub(0))
        hub.drain()
        items = sub.drain_items()
        assert [k for k, _ in items] == ["match", "drain"]
        assert items[-1][1]["resume"] == 0

    def test_publish_refused_while_draining(self):
        hub = SubscriptionHub()
        hub.drain()
        assert hub.publish(make_sub(0)) is None

    def test_attach_during_drain_gets_immediate_notice(self):
        hub = SubscriptionHub()
        hub.drain()
        sub = hub.attach()
        assert [k for k, _ in sub.drain_items()] == ["drain"]

    def test_wait_drained(self):
        hub = SubscriptionHub()
        sub = hub.attach()
        hub.publish(make_sub(0))
        hub.drain()
        assert not hub.wait_drained(timeout=0.05)  # backlog unconsumed
        sub.drain_items()
        assert hub.wait_drained(timeout=0.5)


class TestHubObservability:
    def test_metrics_published(self):
        obs = Observability()
        hub = SubscriptionHub(observability=obs)
        sub = hub.attach(queue_size=1, policy="shed")
        for i in range(3):
            hub.publish(make_sub(i))
        hub.publish(make_sub(0))  # duplicate
        snapshot = obs.snapshot()
        assert snapshot["ses_subscribers"]["value"] == 1
        assert snapshot["ses_push_published_total"]["value"] == 3
        assert snapshot["ses_push_duplicates_suppressed_total"]["value"] == 1
        assert snapshot["ses_sub_shed_total"]["value"] == 2
        sub.drain_items()
        assert obs.snapshot()[
            "ses_sub_delivery_latency_seconds"]["count"] == 1


# ----------------------------------------------------------------------
# Push server (integration over loopback)
# ----------------------------------------------------------------------
@pytest.fixture
def stack(tmp_path):
    """A registry-backed push server; yields (server, hub, registry)."""
    pattern, aggregate = parse_query_spec(QUERY)
    plan = compile_plan(pattern, aggregate=aggregate)
    registry = PatternRegistry()
    registry.register(plan, pattern_id="p1")
    hub = SubscriptionHub(ring_size=64,
                          wal=DeliveryLog(tmp_path / "delivery.jsonl"))
    registry.on_match(lambda pid, m: hub.publish(
        m, pattern_id=pid, tenant=registry.tenant_of(pid)))
    closed = []

    def flush():
        if not closed:
            closed.append(True)
            registry.close()

    server = PushServer(hub, submit=registry.push_many, flush=flush,
                        ingest_queue=8).start()
    try:
        yield server, hub, registry
    finally:
        server.shutdown(grace=2.0)


def collect_sse(server, out, **kwargs):
    """Tail in a thread, appending every received event to ``out``."""
    def run():
        for item in subscribe_sse(server.host, server.port, **kwargs):
            out.append(item)
    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestPushServerIngest:
    def test_framed_push_and_sse_delivery(self, stack):
        server, hub, _ = stack
        got = []
        thread = collect_sse(server, got)
        time.sleep(0.2)
        # Long enough that several matches fall out of the WITHIN
        # window and are reported while the stream is still live.
        accepted = push_events(server.host, server.port, make_events(40))
        assert accepted == 40
        deadline = time.monotonic() + 5
        while (sum(1 for g in got if g["event"] == "match") < 4
               and time.monotonic() < deadline):
            time.sleep(0.02)
        matches = [g for g in got if g["event"] == "match"]
        assert len(matches) >= 4
        seqs = [int(g["id"]) for g in matches]
        assert seqs == sorted(seqs)

    def test_http_ingest_accepted(self, stack):
        server, hub, _ = stack
        response = http_push(server.host, server.port, make_events(40))
        assert response["accepted"] == 40
        server.wait_idle(timeout=5)
        assert hub.last_seq >= 0

    def test_statz_and_healthz(self, stack):
        server, hub, _ = stack
        import urllib.request
        with urllib.request.urlopen(server.url + "/statz", timeout=5) as r:
            stats = json.load(r)
        assert "ingest" in stats and stats["ingest"]["draining"] is False
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as r:
            assert r.status == 200

    def test_backpressure_slow_down_and_429(self, tmp_path):
        release = threading.Event()
        hub = SubscriptionHub()
        server = PushServer(hub, submit=lambda batch: release.wait(10),
                            ingest_queue=1).start()
        try:
            # First batch occupies the worker, second fills the queue.
            http_push(server.host, server.port, make_events(1))
            deadline = time.monotonic() + 2
            while server._queue.qsize() and time.monotonic() < deadline:
                time.sleep(0.01)  # wait for the worker to take batch 1
            http_push(server.host, server.port, make_events(1))
            with pytest.raises(PushRejected):
                http_push(server.host, server.port, make_events(1))
            with pytest.raises(PushRejected):
                push_events(server.host, server.port, make_events(1),
                            max_retries=1)
        finally:
            release.set()
            server.shutdown(grace=1.0)

    def test_poison_batch_does_not_kill_serving(self, stack):
        server, hub, _ = stack
        push_events(server.host, server.port, make_events(4, start_ts=100))
        # Time going backwards is a matcher error, not a server death.
        push_events(server.host, server.port, make_events(4, start_ts=0))
        server.wait_idle(timeout=5)
        response = http_push(server.host, server.port,
                             make_events(4, start_ts=200))
        assert response["accepted"] == 4


class TestPushServerSubscriptions:
    def test_sse_resume_via_last_event_id_no_gap_no_dup(self, stack):
        server, hub, registry = stack
        push_events(server.host, server.port, make_events(40))
        server.wait_idle(timeout=5)
        assert hub.last_seq >= 3
        first = list(subscribe_sse(server.host, server.port, resume=-1,
                                   reconnect=False, read_timeout=2,
                                   stop_on_drain=False))
        # read_timeout ends the replay once the stream idles
        seqs = [int(g["id"]) for g in first if g["event"] == "match"]
        cut = seqs[len(seqs) // 2]
        second = list(subscribe_sse(server.host, server.port, resume=cut,
                                    reconnect=False, read_timeout=2,
                                    stop_on_drain=False))
        resumed = [int(g["id"]) for g in second if g["event"] == "match"]
        assert resumed == [s for s in seqs if s > cut]

    def test_ws_subscription_delivers(self, stack):
        server, hub, _ = stack
        got = []

        def run():
            for payload in subscribe_ws(server.host, server.port,
                                        resume=-1, read_timeout=5):
                got.append(payload)
                if len([g for g in got if g.get("event") == "match"]) >= 2:
                    return
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        time.sleep(0.2)
        push_events(server.host, server.port, make_events(40))
        thread.join(timeout=8)
        matches = [g for g in got if g.get("event") == "match"]
        assert len(matches) >= 2
        assert all("bindings" in m for m in matches)

    def test_quit_drains_and_sends_terminal_resume_token(self, tmp_path):
        pattern, aggregate = parse_query_spec(QUERY)
        plan = compile_plan(pattern, aggregate=aggregate)
        registry = PatternRegistry()
        registry.register(plan, pattern_id="p1")
        hub = SubscriptionHub()
        registry.on_match(lambda pid, m: hub.publish(m, pattern_id=pid))
        server = PushServer(hub, submit=registry.push_many,
                            flush=registry.close).start()
        got = []
        thread = collect_sse(server, got, stop_on_drain=True)
        time.sleep(0.2)
        push_events(server.host, server.port, make_events(10))
        server.wait_idle(timeout=5)
        request_quit(server.host, server.port)
        thread.join(timeout=10)
        assert got[-1]["event"] == "drain"
        # The terminal resume token names the last delivered cursor.
        delivered = [int(g["id"]) for g in got if g["event"] == "match"]
        assert got[-1]["data"]["resume"] == max(delivered)
        # End-of-stream matches from the matcher flush were delivered
        # before the terminal notice (delivered-or-persisted).
        assert len(delivered) == len(registry.matches)

    def test_subscribe_rejects_bad_policy(self, stack):
        server, _, _ = stack
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                server.url + "/subscribe?policy=explode", timeout=5)
        assert err.value.code == 400


# ----------------------------------------------------------------------
# Drain property: accepted => delivered-or-persisted exactly once
# ----------------------------------------------------------------------
class TestDrainProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n_matches=st.integers(min_value=0, max_value=30),
        duplicates=st.lists(st.integers(min_value=0, max_value=29),
                            max_size=10),
        drain_at=st.integers(min_value=0, max_value=30),
        queue_size=st.integers(min_value=1, max_value=8),
        policy=st.sampled_from(["disconnect", "shed", "degrade"]),
    )
    def test_accepted_is_delivered_or_persisted_exactly_once(
            self, tmp_path_factory, n_matches, duplicates, drain_at,
            queue_size, policy):
        """Every accepted publish lands in the WAL exactly once, and a
        well-behaved subscriber (unbounded queue) sees each exactly
        once, whatever a concurrently misbehaving subscriber's policy
        does — before and across a drain."""
        tmp_path = tmp_path_factory.mktemp("drain")
        wal = DeliveryLog(tmp_path / "wal.jsonl")
        hub = SubscriptionHub(ring_size=4, wal=wal)
        good = hub.attach(queue_size=10_000, policy="disconnect")
        hub.attach(queue_size=queue_size, policy=policy)
        accepted = []
        schedule = sorted(range(n_matches))
        for i in schedule:
            if i == drain_at:
                hub.drain()
            entry = hub.publish(make_sub(i))
            if i in duplicates:  # re-publication: must be suppressed
                assert hub.publish(make_sub(i)) is None
            if entry is not None:
                accepted.append(entry.match_id)
        if drain_at >= n_matches:
            hub.drain()
        items = good.drain_items()
        delivered = [p.match_id for k, p in items if k == "match"]
        # Exactly once to the well-behaved subscriber, in cursor order.
        assert delivered == accepted
        assert items[-1][0] == "drain" if items else True
        # Exactly once in the durable log.
        persisted = [r["match_id"] for r in wal]
        assert persisted == accepted
        # A post-crash hub resumes a reconnecting subscriber gap-free.
        reborn = SubscriptionHub(ring_size=4,
                                 wal=DeliveryLog(tmp_path / "wal.jsonl"))
        resumed = reborn.attach(resume_after=-1)
        replayed = [p.match_id for k, p in resumed.drain_items()
                    if k == "match"]
        assert replayed == accepted


# ----------------------------------------------------------------------
# Serial / sharded / supervised serves agree through the hub
# ----------------------------------------------------------------------
JOIN_QUERY = ("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND b.L = 'C' "
              "AND a.ID = b.ID WITHIN 10")


def join_events(n):
    return [Event(ts=i, attrs={"L": "B" if i % 2 == 0 else "C",
                               "ID": (i // 2) % 3}, eid=f"e{i}")
            for i in range(n)]


class TestServeModesConverge:
    def _serial_match_ids(self, events):
        pattern, aggregate = parse_query_spec(JOIN_QUERY)
        plan = compile_plan(pattern, aggregate=aggregate)
        registry = PatternRegistry()
        registry.register(plan)
        matches = registry.push_many(events) + registry.close()
        return {match_id(m.substitution) for m in matches}

    @pytest.mark.parametrize("mode", ["serial", "sharded", "supervised"])
    def test_hub_sees_the_fault_free_match_set(self, mode, tmp_path):
        events = join_events(60)
        expected = self._serial_match_ids(events)
        assert expected  # the stream must actually produce matches
        pattern, aggregate = parse_query_spec(JOIN_QUERY)
        plan = compile_plan(pattern, aggregate=aggregate)
        hub = SubscriptionHub(ring_size=256,
                              wal=DeliveryLog(tmp_path / "wal.jsonl"))
        sub = hub.attach(resume_after=-1, queue_size=10_000)
        if mode == "serial":
            matcher = PatternRegistry()
            matcher.register(plan)
            matcher.on_match(lambda pid, m: hub.publish(m, pattern_id=pid))
        else:
            from repro.parallel.sharded import ShardedStreamMatcher
            from repro.resilience import Supervisor
            supervisor = Supervisor() if mode == "supervised" else None
            matcher = ShardedStreamMatcher(plan, workers=2,
                                           supervisor=supervisor)
            matcher.on_match(lambda m: hub.publish(m))
        matcher.push_many(events)
        matcher.close()
        hub.drain()
        delivered = [p.match_id for k, p in sub.drain_items()
                     if k == "match"]
        assert set(delivered) == expected
        assert len(delivered) == len(expected)  # no duplicates either
