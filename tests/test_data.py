"""Tests for the data sets: Figure 1, the synthetic generator, workloads."""

import pytest

from repro.complexity import ComplexityCase, classify_set
from repro.data import (CHEMO_SCHEMA, DEFAULT_TAU, MEDICATION_TYPES,
                        base_dataset, calibrate_patients, duplicated_datasets,
                        experiment1_pattern, figure1_relation, generate_chemo,
                        hours, pattern_p3, pattern_p4, pattern_p5, pattern_p6,
                        query_q1)


class TestFigure1:
    def test_fourteen_events(self, figure1):
        assert len(figure1) == 14
        assert [e.eid for e in figure1] == [f"e{i}" for i in range(1, 15)]

    def test_schema_conforms(self, figure1):
        for event in figure1:
            CHEMO_SCHEMA.validate(event.attributes)

    def test_event_types(self, figure1):
        labels = [e["L"] for e in figure1]
        assert labels == ["C", "B", "D", "P", "B", "P", "D", "C", "P", "P",
                          "P", "B", "B", "B"]

    def test_patients(self, figure1):
        ids = [e["ID"] for e in figure1]
        assert ids == [1, 1, 1, 1, 2, 2, 2, 2, 1, 2, 2, 1, 2, 2]

    def test_hours_helper(self):
        assert hours(1, 0) == 0
        assert hours(3, 9) == 57
        assert hours(14, 9) - hours(3, 9) == 264

    def test_example4_span(self, figure1):
        """Figure 2: the patient-2 match spans 191 hours."""
        events = {e.eid: e for e in figure1}
        assert events["e13"].ts - events["e6"].ts == 191


class TestGenerator:
    def test_deterministic(self):
        assert (generate_chemo(patients=3, cycles=2, seed=1).events
                == generate_chemo(patients=3, cycles=2, seed=1).events)

    def test_seed_changes_data(self):
        a = generate_chemo(patients=3, cycles=2, seed=1)
        b = generate_chemo(patients=3, cycles=2, seed=2)
        assert a.events != b.events

    def test_schema_conforms(self):
        relation = generate_chemo(patients=2, cycles=1)
        for event in relation:
            CHEMO_SCHEMA.validate(event.attributes)

    def test_time_ordered(self):
        relation = generate_chemo(patients=4, cycles=2)
        timestamps = [e.ts for e in relation]
        assert timestamps == sorted(timestamps)

    def test_all_medication_types_present(self):
        relation = generate_chemo(patients=1, cycles=1)
        labels = {e["L"] for e in relation}
        assert set(MEDICATION_TYPES) <= labels
        assert "B" in labels

    def test_lab_events_togglable(self):
        with_labs = generate_chemo(patients=1, cycles=1)
        without = generate_chemo(patients=1, cycles=1, lab_events_per_cycle=0)
        assert len(with_labs) > len(without)
        med_and_blood = set(MEDICATION_TYPES) | {"B"}
        assert {e["L"] for e in without} <= med_and_blood

    def test_window_grows_with_patients(self):
        small = generate_chemo(patients=2, cycles=2).window_size(DEFAULT_TAU)
        large = generate_chemo(patients=8, cycles=2).window_size(DEFAULT_TAU)
        assert large > small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_chemo(patients=0)
        with pytest.raises(ValueError):
            generate_chemo(cycles=0)

    def test_every_patient_matches_q1_style_queries(self):
        """Each patient cycle has C, D, P+ followed by a blood count."""
        from repro import match
        relation = generate_chemo(patients=2, cycles=1, seed=3)
        result = match(query_q1(), relation)
        assert len(result) >= 2

    def test_calibrate_patients(self):
        n = calibrate_patients(120, cycles=2)
        w = generate_chemo(patients=n, cycles=2).window_size(264)
        assert w >= 120
        if n > 1:
            w_smaller = generate_chemo(patients=n - 1,
                                       cycles=2).window_size(264)
            assert w_smaller < 120

    def test_calibrate_rejects_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_patients(0)

    def test_calibrate_gives_up_at_cap(self):
        with pytest.raises(ValueError):
            calibrate_patients(10 ** 9, max_patients=4)


class TestWorkloads:
    def test_duplicated_datasets(self):
        base = base_dataset(patients=2, cycles=1)
        datasets = duplicated_datasets(base, (1, 2, 3))
        assert sorted(datasets) == [1, 2, 3]
        assert len(datasets[3]) == 3 * len(base)
        w1 = datasets[1].window_size(DEFAULT_TAU)
        assert datasets[2].window_size(DEFAULT_TAU) == 2 * w1

    def test_experiment1_p1_is_mutually_exclusive(self):
        for n in range(2, 7):
            pattern = experiment1_pattern(n, exclusive=True)
            assert classify_set(pattern, 0) is ComplexityCase.MUTUALLY_EXCLUSIVE

    def test_experiment1_p2_is_factorial(self):
        for n in range(2, 7):
            pattern = experiment1_pattern(n, exclusive=False)
            assert classify_set(pattern, 0) is ComplexityCase.FACTORIAL

    def test_experiment1_bounds(self):
        with pytest.raises(ValueError):
            experiment1_pattern(1, exclusive=True)
        with pytest.raises(ValueError):
            experiment1_pattern(7, exclusive=True)

    def test_p3_single_group_case(self):
        assert classify_set(pattern_p3(), 0) is ComplexityCase.SINGLE_GROUP

    def test_p4_factorial_case(self):
        assert classify_set(pattern_p4(), 0) is ComplexityCase.FACTORIAL

    def test_p5_exclusive_case(self):
        assert classify_set(pattern_p5(), 0) is ComplexityCase.MUTUALLY_EXCLUSIVE

    def test_p6_equals_p3(self):
        assert pattern_p6() == pattern_p3()

    def test_joins_toggle(self):
        with_joins = pattern_p3(joins=True)
        without = pattern_p3(joins=False)
        assert len(with_joins.conditions) > len(without.conditions)

    def test_patterns_use_default_tau(self):
        assert pattern_p3().tau == DEFAULT_TAU == 264


class TestPaperScaleCalibration:
    def test_reproduces_paper_window_size(self):
        """The generator calibrates to the paper's D1 (W = 1322) cheaply."""
        from repro.data import DEFAULT_TAU
        n = calibrate_patients(1322, cycles=4)
        relation = generate_chemo(patients=n, cycles=4)
        w = relation.window_size(DEFAULT_TAU)
        assert w >= 1322
        assert w <= 1322 * 1.1, "calibration should land close to target"
