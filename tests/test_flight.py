"""Tests for the flight recorder (repro.obs.flight)."""

import json
import os
import signal
import threading

import pytest

from repro.core.matcher import Matcher
from repro.obs import FlightRecorder, install_flight_signal_handler

from conftest import ev, rel


class FakeInstance:
    """Minimal stand-in for an automaton instance in unit tests."""

    def __init__(self, state=0, min_ts=None):
        self.state = state
        self.buffer = type("B", (), {"min_ts": min_ts})()


def fill(recorder, n, kind="start"):
    instance = FakeInstance()
    for i in range(n):
        recorder.record(kind, ev(i, "A", eid=f"e{i}"), instance)


# ----------------------------------------------------------------------
# Ring-buffer mechanics
# ----------------------------------------------------------------------
class TestRing:
    def test_empty(self):
        recorder = FlightRecorder(capacity=4)
        assert len(recorder) == 0
        assert recorder.tail() == []
        assert recorder.dropped == 0

    def test_partial_fill_keeps_order(self):
        recorder = FlightRecorder(capacity=8)
        fill(recorder, 3)
        tail = recorder.tail()
        assert [r["event"] for r in tail] == ["e0", "e1", "e2"]
        assert [r["seq"] for r in tail] == [0, 1, 2]

    def test_wraps_and_keeps_newest(self):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 10)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        assert [r["event"] for r in recorder.tail()] == [
            "e6", "e7", "e8", "e9"]

    def test_tail_n_returns_newest(self):
        recorder = FlightRecorder(capacity=8)
        fill(recorder, 5)
        assert [r["event"] for r in recorder.tail(2)] == ["e3", "e4"]

    def test_capacity_one(self):
        recorder = FlightRecorder(capacity=1, omega_capacity=1)
        fill(recorder, 3)
        assert [r["event"] for r in recorder.tail()] == ["e2"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(omega_capacity=0)

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 6)
        recorder.sample_omega(1, 3)
        recorder.note_plan("abc")
        recorder.clear()
        assert len(recorder) == 0
        dump = recorder.dump()
        assert dump["steps"] == []
        assert dump["omega"] == []
        assert dump["meta"]["plans"] == []

    def test_omega_ring_is_separate(self):
        recorder = FlightRecorder(capacity=2, omega_capacity=4)
        fill(recorder, 10)  # a burst of steps must not evict Ω samples
        recorder.sample_omega(1, 5)
        assert recorder.dump()["omega"] == [[1, 5]]

    def test_omega_ring_wraps(self):
        recorder = FlightRecorder(omega_capacity=3)
        for ts in range(6):
            recorder.sample_omega(ts, ts * 10)
        assert recorder.dump()["omega"] == [[3, 30], [4, 40], [5, 50]]


# ----------------------------------------------------------------------
# Dump / JSON export
# ----------------------------------------------------------------------
class TestDump:
    def test_dump_shape(self):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 2)
        recorder.sample_omega(7, 1)
        recorder.note_plan("fp1")
        recorder.note_plan("fp1")  # deduplicated
        dump = recorder.dump()
        assert dump["meta"]["capacity"] == 4
        assert dump["meta"]["recorded"] == 2
        assert dump["meta"]["plans"] == ["fp1"]
        assert dump["omega"] == [[7, 1]]
        assert len(dump["steps"]) == 2

    def test_to_json_round_trips(self):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 3)
        parsed = json.loads(recorder.to_json())
        assert [s["event"] for s in parsed["steps"]] == ["e0", "e1", "e2"]

    def test_write(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 1)
        path = tmp_path / "flight.json"
        recorder.write(path)
        assert json.loads(path.read_text())["meta"]["recorded"] == 1

    def test_transition_records_variable(self, kind_pattern):
        flight = FlightRecorder()
        Matcher(kind_pattern).executor(flight=flight).run(
            rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        transitions = [r for r in flight.tail() if r["kind"] == "transition"]
        assert transitions and all("variable" in r for r in transitions)


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class TestExecutorIntegration:
    def test_records_algorithm1_vocabulary(self, kind_pattern):
        flight = FlightRecorder()
        result = Matcher(kind_pattern).executor(flight=flight).run(
            rel(ev(1, "A"), ev(2, "B"), ev(3, "X"), ev(4, "C")))
        assert len(result) == 1
        kinds = {r["kind"] for r in flight.tail()}
        assert "start" in kinds and "transition" in kinds

    def test_omega_samples_track_population(self, kind_pattern):
        flight = FlightRecorder()
        executor = Matcher(kind_pattern).executor(flight=flight)
        executor.run(rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        omega = flight.dump()["omega"]
        assert [ts for ts, _ in omega] == [1, 2, 3]
        # Samples are taken after each event settles, so they are bounded
        # by the mid-event peak the stats record.
        assert 0 < max(size for _, size in omega) <= \
            executor.stats.max_simultaneous_instances

    def test_plan_fingerprint_noted(self, kind_pattern):
        from repro.plan.cache import compile as compile_plan
        flight = FlightRecorder()
        plan = compile_plan(kind_pattern)
        plan.executor(flight=flight).run(rel(ev(1, "A")))
        assert flight.dump()["meta"]["plans"] == [plan.fingerprint]

    def test_rides_alongside_a_tracer(self, kind_pattern):
        from repro.automaton.trace import Tracer
        from repro.plan.cache import compile as compile_plan
        flight = FlightRecorder()
        tracer = Tracer()
        compile_plan(kind_pattern).executor(
            tracer=tracer, flight=flight).run(
            rel(ev(1, "A"), ev(2, "B"), ev(3, "C")))
        assert len(tracer.steps) == len(flight)

    def test_detached_executor_has_no_recorder(self, kind_pattern):
        executor = Matcher(kind_pattern).executor()
        assert executor.flight is None

    def test_crash_in_run_attaches_dump(self, kind_pattern):
        class Boom(Exception):
            pass

        def poisoned_stream():
            yield ev(1, "A")
            yield ev(2, "B")
            raise Boom("poisoned event")

        flight = FlightRecorder()
        executor = Matcher(kind_pattern).executor(flight=flight)
        with pytest.raises(Boom) as excinfo:
            executor.run(poisoned_stream())
        dump = excinfo.value.flight_dump
        assert dump["meta"]["recorded"] == len(flight) > 0
        assert {s["kind"] for s in dump["steps"]} >= {"start"}

    def test_crash_without_recorder_has_no_dump(self, kind_pattern):
        def poisoned_stream():
            yield ev(1, "A")
            raise RuntimeError("poisoned event")

        executor = Matcher(kind_pattern).executor()
        with pytest.raises(RuntimeError) as excinfo:
            executor.run(poisoned_stream())
        assert not hasattr(excinfo.value, "flight_dump")


# ----------------------------------------------------------------------
# Signal handler
# ----------------------------------------------------------------------
@pytest.mark.skipif(not hasattr(signal, "SIGUSR2"),
                    reason="platform has no SIGUSR2")
class TestSignalHandler:
    @pytest.fixture(autouse=True)
    def restore_handler(self):
        previous = signal.getsignal(signal.SIGUSR2)
        yield
        signal.signal(signal.SIGUSR2, previous)

    def test_dump_to_file_on_signal(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 2)
        path = tmp_path / "flight.json"
        handler = install_flight_signal_handler(recorder, path=path)
        assert handler is not None
        os.kill(os.getpid(), signal.SIGUSR2)
        assert json.loads(path.read_text())["meta"]["recorded"] == 2

    def test_dump_to_stream_by_default(self):
        import io
        recorder = FlightRecorder(capacity=4)
        fill(recorder, 1)
        stream = io.StringIO()
        install_flight_signal_handler(recorder, stream=stream)
        os.kill(os.getpid(), signal.SIGUSR2)
        assert json.loads(stream.getvalue())["meta"]["recorded"] == 1


# ----------------------------------------------------------------------
# Concurrency: dumps from another thread while recording
# ----------------------------------------------------------------------
class TestConcurrentDump:
    def test_dump_while_appending(self):
        recorder = FlightRecorder(capacity=32)
        stop = threading.Event()
        errors = []

        def dumper():
            while not stop.is_set():
                try:
                    json.dumps(recorder.dump(), default=str)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        thread = threading.Thread(target=dumper)
        thread.start()
        try:
            fill(recorder, 5000)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not errors
        assert len(recorder) == 32
