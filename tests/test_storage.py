"""Tests for the embedded event store (tables, indexes, queries, CSV)."""

import pytest

from repro import Event, EventSchema
from repro.core.events import Attribute, SchemaError
from repro.data import CHEMO_SCHEMA, figure1_relation, query_q1
from repro.storage import Database, EventTable, load_relation, save_relation
from repro.storage.index import HashIndex, TimeIndex

from conftest import ev


@pytest.fixture
def table():
    t = EventTable("Event", CHEMO_SCHEMA, indexes=["ID", "L"])
    t.insert_many(figure1_relation())
    return t


class TestHashIndex:
    def test_lookup(self):
        idx = HashIndex("L")
        idx.add(0, "C")
        idx.add(1, "P")
        idx.add(2, "C")
        assert idx.lookup("C") == (0, 2)
        assert idx.lookup("missing") == ()

    def test_len_counts_rows(self):
        idx = HashIndex("L")
        idx.add(0, "C")
        idx.add(1, "C")
        assert len(idx) == 2

    def test_unhashable_value(self):
        idx = HashIndex("L")
        with pytest.raises(TypeError):
            idx.add(0, ["unhashable"])

    def test_values(self):
        idx = HashIndex("L")
        idx.add(0, "C")
        idx.add(1, "P")
        assert sorted(idx.values()) == ["C", "P"]


class TestTimeIndex:
    def test_range(self):
        idx = TimeIndex()
        for ts in (1, 3, 3, 7):
            idx.add(ts)
        assert idx.range(3, 3) == (1, 3)
        assert idx.range(None, None) == (0, 4)
        assert idx.range(8, None) == (4, 4)

    def test_out_of_order_rejected(self):
        idx = TimeIndex()
        idx.add(5)
        with pytest.raises(ValueError):
            idx.add(4)


class TestEventTable:
    def test_insert_validates_schema(self):
        t = EventTable("T", EventSchema(["kind"]))
        t.insert(ev(1))
        with pytest.raises(SchemaError):
            t.insert(Event(ts=2, other=1))

    def test_insert_mapping(self):
        t = EventTable("T", EventSchema(["kind"]))
        stored = t.insert({"kind": "A"}, ts=5)
        assert stored.ts == 5
        assert stored.eid == "T:1", "auto eid assigned"

    def test_insert_mapping_requires_ts(self):
        t = EventTable("T", EventSchema(["kind"]))
        with pytest.raises(ValueError):
            t.insert({"kind": "A"})

    def test_insert_rejects_other_types(self):
        t = EventTable("T", EventSchema(["kind"]))
        with pytest.raises(TypeError):
            t.insert(42)

    def test_out_of_order_insert_rejected(self, table):
        with pytest.raises(ValueError):
            table.insert(Event(ts=0, ID=1, L="C", V=1.0, U="mg"))

    def test_scan_slice(self, table):
        from repro.data.paper_events import hours
        sliced = list(table.scan(hours(3, 9), hours(4, 9)))
        assert [e.eid for e in sliced] == ["e1", "e2", "e3", "e4"]

    def test_lookup_uses_index(self, table):
        assert {e.eid for e in table.lookup("L", "C")} == {"e1", "e8"}

    def test_lookup_without_index_falls_back(self, table):
        assert len(table.lookup("U", "mg")) > 0

    def test_create_index_backfills(self, table):
        table.create_index("U")
        assert "U" in table.indexed_attributes
        assert {e.eid for e in table.lookup("L", "C")} == {"e1", "e8"}

    def test_create_index_invalid_attribute(self, table):
        with pytest.raises(SchemaError):
            table.create_index("T")
        with pytest.raises(SchemaError):
            table.create_index("nope")

    def test_create_index_idempotent(self, table):
        table.create_index("ID")
        assert table.indexed_attributes.count("ID") == 1

    def test_to_relation_round_trip(self, table):
        assert table.to_relation() == figure1_relation()

    def test_len_iter(self, table):
        assert len(table) == 14
        assert len(list(table)) == 14


class TestQuery:
    def test_equality_pushdown(self, table):
        result = table.query().where("ID", "=", 1).where("L", "=", "P").execute()
        assert [e.eid for e in result] == ["e4", "e9"]

    def test_nonindexed_predicates(self, table):
        result = table.query().where("V", ">", 1000.0).execute()
        assert {e.eid for e in result} == {"e1", "e8"}

    def test_time_range(self, table):
        from repro.data.paper_events import hours
        result = (table.query().where("ID", "=", 2)
                  .between(hours(5, 0), hours(6, 0)).execute())
        assert [e.eid for e in result] == ["e5", "e6", "e7"]

    def test_limit(self, table):
        result = table.query().where("L", "=", "P").limit(2).execute()
        assert len(result) == 2

    def test_limit_negative(self, table):
        with pytest.raises(ValueError):
            table.query().limit(-1)

    def test_unknown_attribute(self, table):
        with pytest.raises(ValueError):
            table.query().where("nope", "=", 1)

    def test_unknown_operator(self, table):
        with pytest.raises(ValueError):
            table.query().where("ID", "~", 1)

    def test_count(self, table):
        assert table.query().where("L", "=", "B").count() == 5

    def test_match_terminal(self, table, q1):
        result = table.query().match(q1)
        assert len(result) == 2

    def test_results_time_ordered(self, table):
        result = table.query().where("L", "=", "P").execute()
        timestamps = [e.ts for e in result]
        assert timestamps == sorted(timestamps)


class TestCSV:
    def test_round_trip(self, tmp_path, figure1):
        path = tmp_path / "events.csv"
        save_relation(figure1, path)
        loaded = load_relation(path)
        assert loaded == figure1

    def test_types_preserved(self, tmp_path, figure1):
        path = tmp_path / "events.csv"
        save_relation(figure1, path)
        loaded = load_relation(path)
        first = loaded[0]
        assert isinstance(first["ID"], int)
        assert isinstance(first["V"], float)
        assert isinstance(first["L"], str)
        assert isinstance(first.ts, int)

    def test_schema_inferred_when_missing(self, tmp_path):
        from repro import EventRelation
        relation = EventRelation([ev(1, "A", n=3)])
        path = tmp_path / "x.csv"
        save_relation(relation, path)
        loaded = load_relation(path)
        assert loaded[0]["n"] == 3

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_relation(path)

    def test_missing_types_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("eid,T,L\ne1,1,C\n")
        with pytest.raises(ValueError):
            load_relation(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_relation(path)


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database("x")
        t = db.create_table("Event", CHEMO_SCHEMA)
        assert db.table("Event") is t
        assert "Event" in db
        assert db.table_names == ["Event"]

    def test_duplicate_table_rejected(self):
        db = Database("x")
        db.create_table("Event", CHEMO_SCHEMA)
        with pytest.raises(ValueError):
            db.create_table("Event", CHEMO_SCHEMA)

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database("x").table("nope")

    def test_drop(self):
        db = Database("x")
        db.create_table("Event", CHEMO_SCHEMA)
        db.drop_table("Event")
        assert "Event" not in db

    def test_save_load_round_trip(self, tmp_path, table):
        db = Database("hospital")
        db._tables["Event"] = table
        db.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert loaded.name == "hospital"
        assert loaded.table("Event").to_relation() == table.to_relation()
        assert loaded.table("Event").indexed_attributes == ("ID", "L")

    def test_end_to_end_match_after_reload(self, tmp_path, table, q1):
        from repro import match
        db = Database("hospital")
        db._tables["Event"] = table
        db.save(tmp_path / "db")
        reloaded = Database.load(tmp_path / "db").table("Event")
        assert len(match(q1, reloaded.to_relation())) == 2
