"""Tests for execution tracing (Figure 6 style)."""

import pytest

from repro.automaton import Tracer, format_trace
from repro.automaton.builder import build_automaton
from repro.automaton.executor import SESExecutor

from conftest import ev


@pytest.fixture
def traced_run(q1, figure1):
    tracer = Tracer()
    executor = SESExecutor(build_automaton(q1), tracer=tracer)
    result = executor.run(figure1)
    return tracer, result


class TestTracer:
    def test_records_figure6_steps(self, traced_run):
        tracer, _ = traced_run
        lines = format_trace(tracer.steps).splitlines()
        # The seven highlighted steps of Figure 6 for patient 1:
        assert "read e1: (∅) --c--> (c) β={c/e1}" in lines          # (b)
        assert "read e2: ignored by instance at c" in lines          # (c)
        assert "read e3: (c) --d--> (cd) β={c/e1, d/e3}" in lines    # (d)
        assert ("read e4: (cd) --p+--> (cdp+) β={c/e1, d/e3, p+/e4}"
                in lines)                                            # (e)
        assert ("read e9: (cdp+) --p+--> (cdp+) "
                "β={c/e1, d/e3, p+/e4, p+/e9}" in lines)             # (g)
        assert any(line.startswith("read e12: (cdp+) --b--> (bcdp+)")
                   for line in lines)                                # (h)

    def test_start_steps_counted(self, traced_run):
        tracer, result = traced_run
        assert len(tracer.of_kind("start")) == result.stats.events_read

    def test_transition_steps_match_stats(self, traced_run):
        tracer, result = traced_run
        assert (len(tracer.of_kind("transition"))
                == result.stats.transitions_fired)

    def test_flush_steps(self, traced_run):
        tracer, result = traced_run
        accepted = len(tracer.of_kind("accept")) + len(tracer.of_kind("flush"))
        assert accepted == result.stats.accepted_buffers

    def test_expiry_recorded(self, kind_pattern):
        tracer = Tracer()
        executor = SESExecutor(build_automaton(kind_pattern), tracer=tracer)
        executor.feed(ev(1, "A"))
        executor.feed(ev(500, "X"))
        assert len(tracer.of_kind("expire")) == 1

    def test_max_steps_caps_recording(self, q1, figure1):
        tracer = Tracer(max_steps=5)
        executor = SESExecutor(build_automaton(q1), tracer=tracer)
        executor.run(figure1)
        assert len(tracer) == 5

    def test_clear(self, traced_run):
        tracer, _ = traced_run
        tracer.clear()
        assert len(tracer) == 0

    def test_format_skips_noise_by_default(self, traced_run):
        tracer, _ = traced_run
        text = format_trace(tracer.steps)
        assert "new instance" not in text
        full = format_trace(tracer.steps, skip_kinds=())
        assert "new instance" in full

    def test_describe_all_kinds_render(self, traced_run):
        tracer, _ = traced_run
        for step in tracer.steps:
            assert step.describe()

    def test_tracing_does_not_change_results(self, q1, figure1):
        plain = SESExecutor(build_automaton(q1)).run(figure1)
        traced = SESExecutor(build_automaton(q1), tracer=Tracer()).run(figure1)
        assert plain.matches == traced.matches
