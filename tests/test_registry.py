"""The multi-tenant pattern registry: shared admission, hot churn, quotas.

The load-bearing property is **bit-identical fan-out**: for any set of
registered patterns, the registry's per-pattern match sets equal running
each pattern through its own :class:`ContinuousMatcher` (streaming) or
``plan.match`` (batch).  The suites below pin that for 100+ randomized
patterns, plus the predicate bank's interning/refcounting, the start
gate's exactness, hot register/deregister under a live stream, tenant
quotas and guards, labeled metrics, and the HTTP/CLI surface.
"""

import json
import random
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (ContinuousMatcher, GuardConfig, Observability,
                   PatternRegistry, ResourceExhausted, SESPattern,
                   TenantQuota, compile)
from repro.cli import main as cli_main
from repro.data.chemo import generate_chemo
from repro.lang import parse_pattern
from repro.obs import ObsServer
from repro.registry import (AdmissionSpec, DuplicatePatternError,
                            PredicateBank, QuotaExceeded, RegistryError,
                            RegistryHTTPAdapter, StartGate,
                            UnknownPatternError)
from repro.registry.bank import mask_bits

from conftest import bindings, ev, rel

LABELS = ["B", "C", "D", "P", "L", "ALT", "CRE", "GLU", "HGB", "PLT"]

Q_ADMIT = ("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND b.L = 'C' "
           "AND a.ID = b.ID WITHIN 240")


def random_pattern(rng: random.Random) -> SESPattern:
    """A random 1-3 variable pattern over the chemo schema.

    Mixes constant string/float conditions, unconstrained variables
    (the ``always`` admission shortcut) and cross-variable joins, so the
    equivalence suites cover every admission shape.
    """
    n_vars = rng.choice([1, 2, 2, 2, 3])
    names = ["a", "b", "c"][:n_vars]
    if n_vars == 1:
        sets = [["a"]]
    elif n_vars == 2:
        sets = rng.choice([[["a"], ["b"]], [["a", "b"]]])
    else:
        sets = rng.choice([[["a"], ["b"], ["c"]], [["a", "b"], ["c"]],
                           [["a"], ["b", "c"]]])
    conditions = []
    for name in names:
        roll = rng.random()
        if roll < 0.55:
            conditions.append(f"{name}.L = '{rng.choice(LABELS)}'")
        elif roll < 0.75:
            op = rng.choice(["<", "<=", ">", ">="])
            conditions.append(f"{name}.V {op} {round(rng.uniform(0, 4), 2)}")
        # otherwise: unconstrained variable (admits everything)
    if n_vars >= 2 and rng.random() < 0.6:
        conditions.append("a.ID = b.ID")
    return SESPattern(sets=sets, conditions=conditions,
                      tau=rng.choice([60, 120, 264, 480]))


def reference_matches(plan, events):
    """Per-pattern ground truth: one ContinuousMatcher fed everything."""
    matcher = ContinuousMatcher(plan)
    matcher.push_many(events)
    matcher.close()
    return matcher.matches


@pytest.fixture(scope="module")
def chemo_events():
    return list(generate_chemo(patients=3, cycles=2, seed=3,
                               lab_events_per_cycle=20))


@pytest.fixture(scope="module")
def random_plans():
    rng = random.Random(42)
    return [compile(random_pattern(rng)) for _ in range(110)]


# ---------------------------------------------------------------------------
# Predicate bank
# ---------------------------------------------------------------------------
class TestPredicateBank:
    def test_interning_dedups_equal_predicates(self):
        bank = PredicateBank()
        a = bank.intern_const("L", "=", "B")
        b = bank.intern_const("L", "=", "B")
        c = bank.intern_const("L", "=", "C")
        assert a == b and a != c
        assert len(bank) == 2
        assert bank.refcount(a) == 2

    def test_release_recycles_slots(self):
        bank = PredicateBank()
        a = bank.intern_const("L", "=", "B")
        assert bank.intern_const("L", "=", "B") == a
        bank.intern_const("L", "=", "C")
        bank.release(a)
        assert bank.refcount(a) == 1  # still referenced once
        bank.release(a)
        assert len(bank) == 1
        # The freed id is recycled for the next intern.
        d = bank.intern_const("V", ">", 1.5)
        assert d == a
        assert len(bank) == 2

    def test_truth_matches_direct_evaluation(self):
        bank = PredicateBank()
        eq = bank.intern_const("L", "=", "B")
        gt = bank.intern_const("V", ">", 2.0)
        event = ev(1, L="B", V=1.0, ID=1)
        truth = bank.truth(event)
        assert truth & (1 << eq)
        assert not truth & (1 << gt)

    def test_missing_attribute_and_type_error_are_false(self):
        bank = PredicateBank()
        gt = bank.intern_const("V", ">", 2.0)
        assert bank.truth(ev(1, ID=1)) == 0               # V absent
        assert bank.truth(ev(1, V="oops", ID=1)) == 0     # incomparable
        assert bank.truth(ev(1, V=3.0, ID=1)) == 1 << gt

    def test_truth_columns_equals_scalar_truth(self, chemo_events):
        bank = PredicateBank()
        bank.intern_const("L", "=", "B")
        bank.intern_const("V", ">", 2.0)
        bank.intern_const("V", "<=", 1.0)
        from repro import Attr, Condition, var
        a = var("a")
        bank.intern_self(Condition(Attr(a, "V"), "<", Attr(a, "T")))
        events = chemo_events[:80]
        columns = bank.truth_columns(events)
        for i, event in enumerate(events):
            truth = bank.truth(event)
            for pid in range(len(columns)):
                assert bool(columns[pid] & (1 << i)) == bool(
                    truth & (1 << pid))

    def test_describe_lists_live_slots(self):
        bank = PredicateBank()
        bank.intern_const("L", "=", "B")
        rows = bank.describe()
        assert len(rows) == 1
        assert "L = 'B'" in rows[0][1]

    def test_mask_bits(self):
        assert list(mask_bits(0b101001)) == [0, 3, 5]
        assert list(mask_bits(0)) == []


# ---------------------------------------------------------------------------
# Admission specs vs the per-pattern prefilter (the exactness property)
# ---------------------------------------------------------------------------
class TestAdmissionEquivalence:
    def test_spec_matches_conjunctive_prefilter_100_random_patterns(
            self, random_plans, chemo_events):
        bank = PredicateBank()
        events = chemo_events[:120]
        full = (1 << len(events)) - 1
        specs = [AdmissionSpec(bank, plan.pattern) for plan in random_plans]
        columns = bank.truth_columns(events)
        for plan, spec in zip(random_plans, specs):
            prefilter = plan.prefilter("conjunctive")
            expected_mask = prefilter.admission_mask(events)
            assert spec.admitted_mask(columns, full) == expected_mask
            for event in events[:40]:
                truth = bank.truth(event)
                assert spec.admitted(truth) == prefilter.admits(event)

    def test_unconstrained_variable_admits_everything(self):
        bank = PredicateBank()
        pattern = parse_pattern(
            "PATTERN PERMUTE(a, b) WHERE a.L = 'B' WITHIN 10")
        spec = AdmissionSpec(bank, pattern)
        assert spec.always
        assert spec.admitted(0)

    def test_release_returns_bank_to_prior_size(self, random_plans):
        bank = PredicateBank()
        baseline = len(bank)
        specs = [AdmissionSpec(bank, plan.pattern) for plan in random_plans]
        gates = [StartGate(bank, plan.automaton) for plan in random_plans]
        assert len(bank) > baseline
        for spec, gate in zip(specs, gates):
            spec.release(bank)
            gate.release(bank)
        assert len(bank) == baseline


class TestStartGate:
    def test_gate_fires_iff_some_start_transition_admits(self,
                                                         random_plans,
                                                         chemo_events):
        from repro.automaton.buffer import EMPTY_BUFFER
        bank = PredicateBank()
        for plan in random_plans[:40]:
            gate = StartGate(bank, plan.automaton)
            start = plan.automaton.start
            for event in chemo_events[:60]:
                expected = any(
                    t.admits(event, EMPTY_BUFFER)
                    for t in plan.automaton.outgoing(start))
                assert gate.fires(bank.truth(event)) == expected

    def test_shared_key_for_structurally_equal_prefixes(self):
        bank = PredicateBank()
        p1 = parse_pattern("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND "
                           "b.L = 'C' WITHIN 100")
        p2 = parse_pattern("PATTERN PERMUTE(a, b) WHERE a.L = 'B' AND "
                           "b.L = 'C' WITHIN 999")
        g1 = StartGate(bank, compile(p1).automaton)
        g2 = StartGate(bank, compile(p2).automaton)
        assert g1.key == g2.key


# ---------------------------------------------------------------------------
# Fan-out equivalence (tentpole acceptance: 100+ randomized patterns)
# ---------------------------------------------------------------------------
class TestStreamingEquivalence:
    def test_registry_bit_identical_to_per_pattern_matchers(
            self, random_plans, chemo_events):
        registry = PatternRegistry()
        for i, plan in enumerate(random_plans):
            registry.register(plan, pattern_id=f"p{i}")
        registry.push_many(chemo_events)
        registry.close()
        for i, plan in enumerate(random_plans):
            expected = reference_matches(plan, chemo_events)
            got = registry.matches_of(f"p{i}")
            assert ([bindings(s) for s in got]
                    == [bindings(s) for s in expected]), f"p{i}"

    def test_self_condition_start_gate(self):
        pattern = SESPattern(sets=[["a"], ["b"]],
                             conditions=["a.X = a.Y", "b.K = 'hit'"],
                             tau=50)
        events = [ev(t, K=("hit" if t % 3 == 0 else "miss"),
                     X=t % 2, Y=(t + 1) % 2 if t % 5 == 0 else t % 2)
                  for t in range(1, 40)]
        plan = compile(pattern)
        registry = PatternRegistry()
        registry.register(plan, pattern_id="self")
        registry.push_many(events)
        registry.close()
        expected = reference_matches(plan, events)
        assert ([bindings(s) for s in registry.matches_of("self")]
                == [bindings(s) for s in expected])
        assert expected  # the scenario actually produces matches

    def test_unfiltered_registry_matches_unfiltered_matchers(
            self, random_plans, chemo_events):
        events = chemo_events[:150]
        registry = PatternRegistry(use_filter=False)
        plans = random_plans[:10]
        for i, plan in enumerate(plans):
            registry.register(plan, pattern_id=f"p{i}")
        registry.push_many(events)
        registry.close()
        for i, plan in enumerate(plans):
            matcher = ContinuousMatcher(plan, use_filter=False)
            matcher.push_many(events)
            matcher.close()
            assert ([bindings(s) for s in registry.matches_of(f"p{i}")]
                    == [bindings(s) for s in matcher.matches])

    def test_single_push_equals_push_many(self, random_plans, chemo_events):
        events = chemo_events[:100]
        plans = random_plans[:8]
        one = PatternRegistry()
        many = PatternRegistry()
        for i, plan in enumerate(plans):
            one.register(plan, pattern_id=f"p{i}")
            many.register(plan, pattern_id=f"p{i}")
        for event in events:
            one.push(event)
        many.push_many(events)
        one.close()
        many.close()
        for i in range(len(plans)):
            assert ([bindings(s) for s in one.matches_of(f"p{i}")]
                    == [bindings(s) for s in many.matches_of(f"p{i}")])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_property_random_pattern_equivalence(self, seed):
        rng = random.Random(seed)
        plan = compile(random_pattern(rng))
        events = list(generate_chemo(patients=2, cycles=1, seed=5,
                                     lab_events_per_cycle=8))
        registry = PatternRegistry()
        registry.register(plan, pattern_id="q")
        registry.push_many(events)
        registry.close()
        expected = reference_matches(plan, events)
        assert ([bindings(s) for s in registry.matches_of("q")]
                == [bindings(s) for s in expected])


class TestRunBatch:
    def test_run_batch_bit_identical_to_plan_match(self, random_plans,
                                                   chemo_events):
        relation = rel(*chemo_events[:200])
        registry = PatternRegistry()
        for i, plan in enumerate(random_plans):
            registry.register(plan, pattern_id=f"p{i}")
        results = registry.run_batch(relation)
        assert len(results) == len(random_plans)
        for i, plan in enumerate(random_plans):
            expected = plan.match(relation)
            got = results[f"p{i}"]
            assert ([bindings(s) for s in got.matches]
                    == [bindings(s) for s in expected.matches]), f"p{i}"
            assert got.stats.events_filtered == expected.stats.events_filtered
            assert (got.stats.transitions_fired
                    == expected.stats.transitions_fired)


# ---------------------------------------------------------------------------
# Lifecycle: register / deregister / sharing bookkeeping
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_register_accepts_text_pattern_and_plan(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="text")
        pattern = parse_pattern(Q_ADMIT)
        registry.register(pattern, pattern_id="pattern")
        registry.register(compile(pattern), pattern_id="plan")
        assert len(registry) == 3
        with pytest.raises(TypeError):
            registry.register(42)

    def test_auto_ids_skip_taken_ones(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="p0")
        auto = registry.register(Q_ADMIT)
        assert auto == "p1"

    def test_duplicate_id_raises(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="x")
        with pytest.raises(DuplicatePatternError):
            registry.register(Q_ADMIT, pattern_id="x")

    def test_deregister_unknown_raises(self):
        registry = PatternRegistry()
        with pytest.raises(UnknownPatternError):
            registry.deregister("nope")
        with pytest.raises(UnknownPatternError):
            registry.matches_of("nope")

    def test_predicates_shared_and_released(self):
        registry = PatternRegistry()
        a = registry.register(Q_ADMIT)
        before = registry.predicate_count
        b = registry.register(Q_ADMIT)  # same predicates: no new slots
        assert registry.predicate_count == before
        assert registry.prefix_group_count == 1
        registry.deregister(a)
        assert registry.predicate_count == before
        registry.deregister(b)
        assert registry.predicate_count == 0
        assert registry.prefix_group_count == 0

    def test_matches_survive_deregistration(self, chemo_events):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="keep")
        registry.push_many(chemo_events)
        summary = registry.deregister("keep")
        assert summary["id"] == "keep"
        assert registry.matches_of("keep")  # still queryable
        assert "keep" not in registry

    def test_closed_registry_rejects_registration(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT)
        registry.close()
        with pytest.raises(RegistryError):
            registry.register(Q_ADMIT)

    def test_describe_and_repr(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="q", tenant="acme")
        rows = registry.describe()
        assert rows[0]["id"] == "q"
        assert rows[0]["tenant"] == "acme"
        assert rows[0]["query"] == Q_ADMIT
        assert len(rows[0]["fingerprint"]) == 64
        assert "1 patterns" in repr(registry)

    def test_on_match_callback_fires_per_pattern(self, chemo_events):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="q")
        seen = []
        registry.on_match(lambda pid, sub: seen.append(pid))
        registry.push_many(chemo_events)
        registry.close()
        assert seen and set(seen) == {"q"}
        assert len(seen) == len(registry.matches_of("q"))


# ---------------------------------------------------------------------------
# Hot register/deregister against a live stream
# ---------------------------------------------------------------------------
class TestHotChurn:
    def test_late_registration_sees_only_the_suffix(self, chemo_events):
        split = len(chemo_events) // 2
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="early")
        registry.push_many(chemo_events[:split])
        registry.register(Q_ADMIT, pattern_id="late")
        registry.push_many(chemo_events[split:])
        registry.close()
        plan = compile(parse_pattern(Q_ADMIT))
        assert ([bindings(s) for s in registry.matches_of("early")]
                == [bindings(s) for s in
                    reference_matches(plan, chemo_events)])
        assert ([bindings(s) for s in registry.matches_of("late")]
                == [bindings(s) for s in
                    reference_matches(plan, chemo_events[split:])])

    def test_concurrent_churn_never_corrupts_the_stable_pattern(
            self, chemo_events):
        """Feeder and churn threads race; the stable pattern's matches
        must equal the single-threaded reference and nothing may
        deadlock or drop/double-deliver."""
        registry = PatternRegistry()
        registry.register(Q_ADMIT, pattern_id="stable")
        errors = []
        churn_done = threading.Event()

        def feeder():
            try:
                for start in range(0, len(chemo_events), 40):
                    registry.push_many(chemo_events[start:start + 40])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def churner():
            try:
                for i in range(40):
                    pid = registry.register(
                        f"PATTERN PERMUTE(a, b) WHERE a.L = 'P' AND "
                        f"b.L = 'D' AND a.ID = b.ID WITHIN {60 + i}")
                    registry.deregister(pid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                churn_done.set()

        threads = [threading.Thread(target=feeder),
                   threading.Thread(target=churner)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "deadlocked"
        assert not errors, errors
        assert churn_done.is_set()
        registry.close()
        plan = compile(parse_pattern(Q_ADMIT))
        assert ([bindings(s) for s in registry.matches_of("stable")]
                == [bindings(s) for s in
                    reference_matches(plan, chemo_events)])
        # Churned patterns released their predicates again.
        assert len(registry) == 1


# ---------------------------------------------------------------------------
# Tenancy: quotas and resource guards
# ---------------------------------------------------------------------------
class TestTenancy:
    def test_max_patterns_quota(self):
        registry = PatternRegistry()
        quota = TenantQuota(max_patterns=2)
        registry.register(Q_ADMIT, tenant="acme", quota=quota)
        second = registry.register(Q_ADMIT, tenant="acme")
        with pytest.raises(QuotaExceeded):
            registry.register(Q_ADMIT, tenant="acme")
        # Other tenants are unaffected; freeing a slot re-opens the quota.
        registry.register(Q_ADMIT, tenant="other")
        registry.deregister(second)
        registry.register(Q_ADMIT, tenant="acme")

    def test_conflicting_quota_rejected(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, tenant="acme",
                          quota=TenantQuota(max_patterns=2))
        with pytest.raises(ValueError):
            registry.register(Q_ADMIT, tenant="acme",
                              quota=TenantQuota(max_patterns=9))

    def test_default_quota_applies_to_new_tenants(self):
        registry = PatternRegistry(
            default_quota=TenantQuota(max_patterns=1))
        registry.register(Q_ADMIT, tenant="a")
        with pytest.raises(QuotaExceeded):
            registry.register(Q_ADMIT, tenant="a")

    def test_guard_raise_policy_surfaces_resource_exhausted(self):
        quota = TenantQuota(guard=GuardConfig(max_instances=2,
                                              policy="raise"))
        registry = PatternRegistry(default_quota=quota)
        registry.register("PATTERN PERMUTE(a, b) WITHIN 1000",
                          pattern_id="greedy")
        with pytest.raises(ResourceExhausted):
            registry.push_many(ev(t, K="x") for t in range(1, 30))

    def test_guard_shed_policy_bounds_omega(self):
        quota = TenantQuota(guard=GuardConfig(max_instances=3,
                                              policy="shed"))
        registry = PatternRegistry(default_quota=quota)
        registry.register("PATTERN PERMUTE(a, b) WITHIN 1000",
                          pattern_id="greedy")
        registry.push_many(ev(t, K="x") for t in range(1, 40))
        assert registry.active_instances <= 3
        stats = registry.tenant_stats()["default"]
        assert stats["guard_policy"] == "shed"
        assert stats["shed_instances"] > 0

    def test_tenant_stats_shape(self):
        registry = PatternRegistry()
        registry.register(Q_ADMIT, tenant="acme",
                          quota=TenantQuota(max_patterns=5))
        stats = registry.tenant_stats()
        assert stats["acme"] == {"patterns": 1, "max_patterns": 5}


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_labeled_and_aggregate_series(self, chemo_events):
        obs = Observability()
        registry = PatternRegistry(observability=obs)
        registry.register(Q_ADMIT, pattern_id="q")
        registry.push_many(chemo_events)
        registry.close()
        snapshot = obs.registry.snapshot()
        labeled = snapshot["ses_pattern_matches_total[q]"]
        assert labeled["labels"] == {"pattern": "q"}
        assert labeled["value"] == len(registry.matches_of("q")) > 0
        assert snapshot["ses_pattern_events_total[q]"]["value"] > 0
        assert (snapshot["ses_registry_events_total"]["value"]
                == len(chemo_events))
        assert snapshot["ses_registry_matches_total"]["value"] == len(
            registry.matches_of("q"))
        assert snapshot["ses_registry_patterns"]["value"] == 1
        assert snapshot["ses_registry_predicates"]["value"] > 0

    def test_gauges_track_deregistration(self):
        obs = Observability()
        registry = PatternRegistry(observability=obs)
        pid = registry.register(Q_ADMIT)
        registry.deregister(pid)
        snapshot = obs.registry.snapshot()
        assert snapshot["ses_registry_patterns"]["value"] == 0
        assert snapshot["ses_registry_predicates"]["value"] == 0


# ---------------------------------------------------------------------------
# HTTP adapter + live ObsServer routes + CLI client
# ---------------------------------------------------------------------------
class TestHTTPAdapter:
    def test_add_list_remove_roundtrip(self):
        adapter = RegistryHTTPAdapter(PatternRegistry())
        status, row = adapter.add({"query": Q_ADMIT, "id": "q",
                                   "tenant": "acme"})
        assert status == 201 and row["id"] == "q"
        status, listing = adapter.list()
        assert status == 200
        assert [r["id"] for r in listing["patterns"]] == ["q"]
        assert listing["predicates"] > 0
        status, removed = adapter.remove("q")
        assert status == 200 and removed["id"] == "q"
        status, body = adapter.remove("q")
        assert status == 404 and "error" in body

    def test_error_statuses(self):
        registry = PatternRegistry(
            default_quota=TenantQuota(max_patterns=1))
        adapter = RegistryHTTPAdapter(registry)
        assert adapter.add("not a dict")[0] == 400
        assert adapter.add({})[0] == 400
        assert adapter.add({"query": "NOT A QUERY"})[0] == 400
        assert adapter.add({"query": Q_ADMIT, "id": 7})[0] == 400
        assert adapter.add({"query": Q_ADMIT, "tenant": 7})[0] == 400
        assert adapter.add({"query": Q_ADMIT, "id": "q"})[0] == 201
        assert adapter.add({"query": Q_ADMIT, "id": "q"})[0] == 409
        assert adapter.add({"query": Q_ADMIT, "id": "r"})[0] == 429


def _http(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestObsServerRoutes:
    def test_patterns_routes_end_to_end(self, chemo_events):
        obs = Observability()
        registry = PatternRegistry(observability=obs)
        adapter = RegistryHTTPAdapter(registry)
        with ObsServer(snapshot=obs.registry.snapshot,
                       patterns=adapter) as server:
            assert "/patterns" in server.routes
            status, row = _http("POST", server.url + "/patterns",
                                {"query": Q_ADMIT, "id": "q"})
            assert status == 201 and row["id"] == "q"
            registry.push_many(chemo_events)
            status, listing = _http("GET", server.url + "/patterns")
            assert status == 200
            assert listing["patterns"][0]["matches"] > 0
            with urllib.request.urlopen(server.url + "/varz",
                                        timeout=5) as response:
                varz = response.read().decode()
            assert "ses_pattern_matches_total[q]" in varz
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as response:
                prom = response.read().decode()
            assert 'ses_pattern_matches_total{pattern="q"}' in prom
            status, _ = _http("DELETE", server.url + "/patterns/q")
            assert status == 200
            status, _ = _http("DELETE", server.url + "/patterns/q")
            assert status == 404
            status, body = _http("POST", server.url + "/patterns",
                                 {"query": "NOT A QUERY"})
            assert status == 400 and "error" in body

    def test_patterns_routes_absent_without_adapter(self):
        with ObsServer() as server:
            assert "/patterns" not in server.routes
            status, _ = _http("GET", server.url + "/patterns")
            assert status == 404


class TestCLIRegistry:
    def test_add_list_rm_against_live_server(self, capsys, tmp_path):
        registry = PatternRegistry()
        adapter = RegistryHTTPAdapter(registry)
        query_file = tmp_path / "q.ses"
        query_file.write_text(Q_ADMIT)
        with ObsServer(patterns=adapter) as server:
            code = cli_main(["registry", "add", "--server", server.url,
                             "--query-file", str(query_file),
                             "--id", "cli"])
            assert code == 0
            assert "registered cli" in capsys.readouterr().out
            code = cli_main(["registry", "list", "--server", server.url])
            assert code == 0
            out = capsys.readouterr().out
            assert "cli" in out and "1 pattern(s)" in out
            code = cli_main(["registry", "add", "--server", server.url,
                             "--query", Q_ADMIT, "--id", "cli"])
            assert code == 1
            assert "409" in capsys.readouterr().err
            code = cli_main(["registry", "rm", "cli",
                             "--server", server.url])
            assert code == 0
            assert "deregistered cli" in capsys.readouterr().out
            code = cli_main(["registry", "rm", "cli",
                             "--server", server.url])
            assert code == 1
            assert "404" in capsys.readouterr().err

    def test_unreachable_server(self, capsys):
        code = cli_main(["registry", "list",
                         "--server", "http://127.0.0.1:1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
