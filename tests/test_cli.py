"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.storage import load_relation, save_relation

Q1_TEXT = ("PATTERN PERMUTE(c, p+, d) THEN b "
           "WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B' "
           "AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID WITHIN 264")


@pytest.fixture
def figure1_csv(tmp_path, figure1):
    path = tmp_path / "events.csv"
    save_relation(figure1, path)
    return path


class TestMatchCommand:
    def test_prints_matches(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv),
                     "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 match(es) in 14 events" in out
        assert "c/e1" in out and "b/e13" in out

    def test_stats_flag(self, figure1_csv, capsys):
        main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
              "--stats"])
        out = capsys.readouterr().out
        assert "events read:" in out
        assert "max instances:" in out

    def test_query_file(self, figure1_csv, tmp_path, capsys):
        query_file = tmp_path / "q1.ses"
        query_file.write_text(Q1_TEXT)
        code = main(["match", "--data", str(figure1_csv),
                     "--query-file", str(query_file)])
        assert code == 0
        assert "2 match(es)" in capsys.readouterr().out

    def test_selection_accepted(self, figure1_csv, capsys):
        main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
              "--selection", "accepted"])
        assert "3 match(es)" in capsys.readouterr().out

    def test_exhaustive_mode(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv),
                     "--query", Q1_TEXT, "--mode", "exhaustive"])
        assert code == 0
        assert "2 match(es)" in capsys.readouterr().out

    def test_no_filter(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv),
                     "--query", Q1_TEXT, "--no-filter", "--stats"])
        assert code == 0
        assert "events filtered:  0" in capsys.readouterr().out

    def test_missing_data_file(self, capsys):
        code = main(["match", "--data", "/nonexistent.csv",
                     "--query", "PATTERN a WITHIN 1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_query(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv),
                     "--query", "PATTERN"])
        assert code == 2
        assert "query error" in capsys.readouterr().err


class TestProfileFlag:
    def test_prints_stage_table_and_sparkline(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-stage timing" in out
        for stage in ("filter", "consume", "select"):
            assert stage in out
        assert "Ω timeline" in out

    def test_writes_snapshot(self, figure1_csv, tmp_path, capsys):
        snapshot = tmp_path / "metrics.jsonl"
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--profile", "--metrics-out", str(snapshot)])
        assert code == 0
        assert "metrics snapshot" in capsys.readouterr().out
        from repro.obs import read_jsonl
        snap = read_jsonl(snapshot)
        assert snap["ses_events_read_total"]["value"] == 14
        assert "repro_stage_filter" in snap
        assert "repro_stage_select" in snap

    def test_metrics_out_implies_instrumentation(self, figure1_csv, tmp_path):
        snapshot = tmp_path / "metrics.jsonl"
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--metrics-out", str(snapshot)])
        assert code == 0
        assert snapshot.exists()

    def test_matches_unchanged_under_profile(self, figure1_csv, capsys):
        main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
              "--profile"])
        assert "2 match(es) in 14 events" in capsys.readouterr().out


class TestStatsCommand:
    @pytest.fixture
    def snapshot_file(self, figure1_csv, tmp_path):
        path = tmp_path / "metrics.jsonl"
        main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
              "--metrics-out", str(path)])
        return path

    def test_table_output(self, snapshot_file, capsys):
        capsys.readouterr()
        code = main(["stats", str(snapshot_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "counters" in out
        assert "ses_events_read_total" in out
        assert "stage timings" in out
        assert "ses_event_latency_seconds" in out

    def test_prometheus_output(self, snapshot_file, capsys):
        capsys.readouterr()
        code = main(["stats", str(snapshot_file), "--format", "prom"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE ses_events_read_total counter" in out
        assert 'ses_event_latency_seconds_bucket{le="+Inf"}' in out

    def test_json_output(self, snapshot_file, capsys):
        capsys.readouterr()
        code = main(["stats", str(snapshot_file), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        import json
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert any(r["name"] == "ses_matches_total" for r in records)

    def test_missing_snapshot(self, capsys):
        code = main(["stats", "/nonexistent.jsonl"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestVerbosityFlags:
    def test_verbose_logs_to_stderr(self, figure1_csv, capsys):
        code = main(["-v", "match", "--data", str(figure1_csv),
                     "--query", Q1_TEXT])
        captured = capsys.readouterr()
        assert code == 0
        assert "loaded 14 events" in captured.err

    def test_quiet_suppresses_info(self, figure1_csv, capsys):
        code = main(["-q", "match", "--data", str(figure1_csv),
                     "--query", Q1_TEXT])
        captured = capsys.readouterr()
        assert code == 0
        assert "loaded" not in captured.err


class TestGenerateCommand:
    def test_writes_loadable_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(["generate", "--out", str(out), "--patients", "2",
                     "--cycles", "1", "--seed", "3"])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        relation = load_relation(out)
        assert len(relation) > 0

    def test_duplicate_factor(self, tmp_path):
        single = tmp_path / "d1.csv"
        double = tmp_path / "d2.csv"
        main(["generate", "--out", str(single), "--patients", "2",
              "--cycles", "1"])
        main(["generate", "--out", str(double), "--patients", "2",
              "--cycles", "1", "--duplicate", "2"])
        assert len(load_relation(double)) == 2 * len(load_relation(single))

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--out", str(a), "--patients", "2", "--cycles", "1"])
        main(["generate", "--out", str(b), "--patients", "2", "--cycles", "1"])
        assert a.read_text() == b.read_text()


class TestExplainCommand:
    def test_text_output(self, capsys):
        code = main(["explain", "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("EXPLAIN plan")
        assert "automaton: 9 states, 17 transitions" in out
        assert "cdp+" in out
        assert "prefilter[conjunctive]" in out
        assert "plan cache:" in out

    def test_dot_output(self, capsys):
        main(["explain", "--dot", "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "doublecircle" in out

    def test_analyze_output(self, figure1_csv, capsys):
        code = main(["explain", "--query", Q1_TEXT, "--analyze",
                     "--data", str(figure1_csv)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("EXPLAIN ANALYZE")
        assert "reconciled with executor counters" in out


class TestAnalyzeCommand:
    def test_with_explicit_window(self, capsys):
        code = main(["analyze", "--window", "50", "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert code == 0
        assert "W = 50" in out
        assert "Theorem 1" in out

    def test_with_data_file(self, figure1_csv, capsys):
        code = main(["analyze", "--data", str(figure1_csv),
                     "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert code == 0
        assert "14 events" in out
        assert "W = 14" in out

    def test_window_and_data_exclusive(self, figure1_csv):
        with pytest.raises(SystemExit):
            main(["analyze", "--window", "5", "--data", str(figure1_csv),
                  "--query", Q1_TEXT])


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_query_and_query_file_exclusive(self, figure1_csv, tmp_path):
        query_file = tmp_path / "q.ses"
        query_file.write_text(Q1_TEXT)
        with pytest.raises(SystemExit):
            main(["match", "--data", str(figure1_csv),
                  "--query", Q1_TEXT, "--query-file", str(query_file)])


class TestLintCommand:
    def test_clean_query(self, capsys):
        code = main(["lint", "--query",
                     "PATTERN PERMUTE(a, b) THEN c WHERE a.k = 'A' "
                     "AND b.k = 'B' AND c.k = 'C' WITHIN 10"])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_warning_exit_zero(self, capsys):
        code = main(["lint", "--query", Q1_TEXT])
        assert code == 0
        assert "open-join-graph" in capsys.readouterr().out

    def test_error_exit_three(self, capsys):
        code = main(["lint", "--query",
                     "PATTERN a WHERE a.k = 'X' AND a.k = 'Y' WITHIN 5"])
        assert code == 3
        assert "unsatisfiable-variable" in capsys.readouterr().out

    def test_fix_joins_prints_closed_query(self, capsys):
        code = main(["lint", "--fix-joins", "--query", Q1_TEXT])
        out = capsys.readouterr().out
        assert code == 0
        assert "PATTERN PERMUTE(c, d, p+)" in out
        # The closure adds e.g. c.ID = b.ID (implied via d).
        assert out.count(".ID = ") > Q1_TEXT.count(".ID = ")


class TestTraceOut:
    def test_writes_valid_chrome_trace(self, figure1_csv, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.json"
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--trace-out", str(trace)])
        assert code == 0
        assert "chrome trace" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert "X" in phases  # stage spans
        for event in doc["traceEvents"]:
            assert "ph" in event and "pid" in event
            if event["ph"] != "M":
                assert "ts" in event

    def test_matches_unchanged_under_tracing(self, figure1_csv, tmp_path,
                                             capsys):
        main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
              "--trace-out", str(tmp_path / "t.json")])
        assert "2 match(es) in 14 events" in capsys.readouterr().out

    def test_requires_single_worker(self, figure1_csv, tmp_path, capsys):
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--trace-out", str(tmp_path / "t.json"),
                     "--workers", "2"])
        assert code == 1
        assert "--workers 1" in capsys.readouterr().err


class TestListenFlag:
    def test_match_serves_metrics_during_run(self, figure1_csv, capsys):
        code = main(["match", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--listen", "127.0.0.1:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving observability on http://127.0.0.1:" in out
        assert "2 match(es) in 14 events" in out


class TestServeCommand:
    def serve_in_background(self, argv):
        """Run ``repro serve`` on a thread; returns (thread, url)."""
        import io
        import re
        import threading
        import time
        from contextlib import redirect_stdout

        buffer = io.StringIO()

        def run():
            with redirect_stdout(buffer):
                main(argv)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            found = re.search(r"http://[\d.]+:\d+", buffer.getvalue())
            if found:
                return thread, found.group(0)
            time.sleep(0.02)
        raise AssertionError(f"serve never bound: {buffer.getvalue()!r}")

    def http(self, url, method="GET"):
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            url, data=b"" if method == "POST" else None, method=method)
        try:
            with urllib.request.urlopen(request, timeout=5) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as err:
            return err.code, err.read().decode()

    def test_serves_until_quit(self, figure1_csv):
        import json
        thread, url = self.serve_in_background(
            ["serve", "--data", str(figure1_csv), "--query", Q1_TEXT,
             "--listen", "127.0.0.1:0"])
        status, health = self.http(url + "/healthz")
        assert status == 200
        assert json.loads(health)["status"] == "ok"
        status, metrics = self.http(url + "/metrics")
        assert status == 200
        assert "# TYPE" in metrics
        status, flight = self.http(url + "/debug/flight")
        assert status == 200
        assert json.loads(flight)["steps"]
        status, _ = self.http(url + "/quitquitquit", method="POST")
        assert status == 200
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_once_exits_after_replay(self, figure1_csv, capsys):
        code = main(["serve", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--listen", "127.0.0.1:0", "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 14 events" in out
        assert "done: 2 match(es) reported" in out

    def test_once_restores_signal_handlers(self, figure1_csv, capsys):
        # serve installs SIGTERM/SIGUSR2 handlers when run on the main
        # thread; leaking them would make any process forked afterwards
        # (e.g. a stream shard) ignore terminate() and hang its parent.
        import signal as _signal
        watched = [_signal.SIGTERM]
        if hasattr(_signal, "SIGUSR2"):
            watched.append(_signal.SIGUSR2)
        before = {signum: _signal.getsignal(signum) for signum in watched}
        code = main(["serve", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--listen", "127.0.0.1:0", "--once"])
        capsys.readouterr()
        assert code == 0
        for signum in watched:
            assert _signal.getsignal(signum) is before[signum]

    def test_bad_workers(self, figure1_csv, capsys):
        code = main(["serve", "--data", str(figure1_csv), "--query", Q1_TEXT,
                     "--workers", "0", "--once"])
        assert code == 1
        assert "--workers" in capsys.readouterr().err
