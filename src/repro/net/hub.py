"""The subscription hub: cursors, replay, shedding, graceful drain.

:class:`SubscriptionHub` is the transport-agnostic heart of push
delivery.  Matchers publish every reported match exactly once; the hub

* assigns a **monotonic cursor** (``seq``) per published match and
  appends the entry to a durable
  :class:`~repro.resilience.delivery.DeliveryLog` *before* any
  subscriber sees it (delivered-or-persisted: a crash after publish
  loses nothing);
* keeps a bounded in-memory **replay ring** for fast resume, spilling
  to the delivery log for older cursors — a subscriber reconnecting
  with ``Last-Event-ID: <cursor>`` is backfilled gap-free;
* suppresses **duplicate publications** by content-derived
  :func:`~repro.obs.lineage.match_id` (supervisor restarts and WAL
  replays re-report matches; subscribers must not see them twice);
* applies a per-subscriber **slow-consumer policy** when a bounded
  queue overflows — ``disconnect`` (drop the connection; the client
  resumes from its cursor), ``shed`` (drop oldest queued matches and
  deliver a ``gap`` notice naming the dropped cursor range) or
  ``degrade`` (collapse the queue to per-pattern aggregate counts until
  the consumer catches up);
* supports a **graceful drain**: no further publishes are accepted,
  every subscriber receives its queued backlog followed by a terminal
  ``drain`` notice carrying the resume token to present after the
  restart.

The hub is thread-safe and transport-neutral: the asyncio server
(:mod:`repro.net.server`) wakes its connections through each
subscriber's ``wake`` callback, while tests and the Hypothesis drain
property drive subscribers synchronously.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.lineage import match_id as compute_match_id

__all__ = ["SubscriptionHub", "Subscriber", "DeliveredEntry",
           "POLICIES", "DEFAULT_QUEUE", "DEFAULT_RING"]

#: Slow-consumer policies (mirrors the resource-guard policy triple).
POLICIES = ("disconnect", "shed", "degrade")

#: Default per-subscriber queue bound.
DEFAULT_QUEUE = 256

#: Default replay-ring capacity.
DEFAULT_RING = 1024

#: Dedup window: published match ids remembered for duplicate
#: suppression (beyond it, the delivery log is the arbiter of record).
DEDUP_CAPACITY = 65536


class DeliveredEntry:
    """One published match: cursor, identity, and its JSON payload."""

    __slots__ = ("seq", "match_id", "pattern_id", "tenant", "payload",
                 "published")

    def __init__(self, seq: int, match_id: str, pattern_id: Optional[str],
                 tenant: Optional[str], payload: Dict[str, Any],
                 published: float):
        self.seq = seq
        self.match_id = match_id
        self.pattern_id = pattern_id
        self.tenant = tenant
        self.payload = payload
        self.published = published

    def to_record(self) -> Dict[str, Any]:
        """The delivery-log line for this entry."""
        return {"seq": self.seq, "match_id": self.match_id,
                "pattern_id": self.pattern_id, "tenant": self.tenant,
                "published": self.published, "payload": self.payload}

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "DeliveredEntry":
        return cls(seq=record["seq"], match_id=record["match_id"],
                   pattern_id=record.get("pattern_id"),
                   tenant=record.get("tenant"),
                   payload=record.get("payload") or {},
                   published=record.get("published", 0.0))

    def __repr__(self) -> str:
        return f"DeliveredEntry(seq={self.seq}, match_id={self.match_id})"


class Subscriber:
    """One attached consumer: bounded queue, cursor, policy state.

    Queue items are ``(kind, payload)`` tuples; ``kind`` is one of
    ``"match"`` (payload: :class:`DeliveredEntry`), ``"gap"``,
    ``"aggregates"`` or ``"drain"`` (payload: notice dict).  Pop with
    :meth:`pop`; transports block on their own wake primitive, poked
    through the ``wake`` callback.
    """

    __slots__ = ("subscriber_id", "patterns", "tenants", "max_queue",
                 "policy", "cursor", "sheds", "closed", "close_reason",
                 "wake", "_queue", "_degraded", "_pending_gap", "_hub",
                 "attached_at", "delivered")

    def __init__(self, subscriber_id: str, hub: "SubscriptionHub",
                 patterns: Optional[frozenset], tenants: Optional[frozenset],
                 max_queue: int, policy: str, cursor: int):
        self.subscriber_id = subscriber_id
        self._hub = hub
        self.patterns = patterns
        self.tenants = tenants
        self.max_queue = max_queue
        self.policy = policy
        self.cursor = cursor
        self.sheds = 0
        self.delivered = 0
        self.closed = False
        self.close_reason: Optional[str] = None
        self.wake: Optional[Callable[[], None]] = None
        self._queue: deque = deque()
        self._degraded: Optional[Dict[Optional[str], int]] = None
        self._pending_gap = 0
        self.attached_at = time.time()

    # -- matching ------------------------------------------------------
    def wants(self, entry: DeliveredEntry) -> bool:
        if self.patterns is not None and entry.pattern_id not in self.patterns:
            return False
        if self.tenants is not None and entry.tenant not in self.tenants:
            return False
        return True

    # -- consumption (transport side) ----------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def pop(self) -> Optional[Tuple[str, Any]]:
        """Next queued item, or ``None`` when there is nothing to send.

        Emits a coalesced ``gap`` notice ahead of the next match after
        sheds, and the ``aggregates`` notice that ends a degraded
        stretch once the queue is empty again.
        """
        with self._hub._lock:
            if self._pending_gap and self._queue:
                notice = {"shed": self._pending_gap, "cursor": self.cursor}
                self._pending_gap = 0
                return "gap", notice
            if self._queue:
                kind, payload = self._queue.popleft()
                if kind == "match":
                    self.delivered += 1
                    self._hub._observe_delivery(payload, self)
                return kind, payload
            if self._degraded is not None:
                counts = {key or "": value
                          for key, value in self._degraded.items()}
                self._degraded = None
                return "aggregates", {"counts": counts,
                                      "cursor": self.cursor}
            return None

    def drain_items(self) -> List[Tuple[str, Any]]:
        """Pop everything currently available (sync consumers/tests)."""
        items = []
        while True:
            item = self.pop()
            if item is None:
                return items
            items.append(item)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or pending for this subscriber."""
        with self._hub._lock:
            return (not self._queue and self._degraded is None
                    and not self._pending_gap)

    def close(self, reason: str = "detached") -> None:
        """Detach this subscriber (idempotent)."""
        self._hub.detach(self, reason=reason)

    def __repr__(self) -> str:
        return (f"Subscriber({self.subscriber_id!r}, cursor={self.cursor}, "
                f"depth={self.queue_depth}, policy={self.policy})")


class SubscriptionHub:
    """Fan-out hub with durable cursors; see the module docstring.

    Parameters
    ----------
    ring_size:
        Replay-ring capacity (in-memory resume window).
    wal:
        Optional :class:`~repro.resilience.delivery.DeliveryLog`.  When
        given, every publish is persisted before delivery, cursors
        resume across restarts, and previously delivered matches are
        deduplicated by match id on re-publication.
    observability:
        Optional :class:`~repro.obs.Observability` bundle for the
        ``ses_subscribers`` / ``ses_sub_*`` metrics and per-subscriber
        lineage push hops.
    default_queue / default_policy:
        Per-subscriber bounds applied when :meth:`attach` does not
        override them.
    heartbeat_seconds / idle_timeout_seconds:
        Advisory intervals the transports read (the hub itself has no
        clock loop): how often to emit keep-alives, and after how much
        consumer silence to disconnect.
    """

    def __init__(self, ring_size: int = DEFAULT_RING, wal=None,
                 observability=None, default_queue: int = DEFAULT_QUEUE,
                 default_policy: str = "disconnect",
                 heartbeat_seconds: float = 15.0,
                 idle_timeout_seconds: float = 300.0):
        if default_policy not in POLICIES:
            raise ValueError(f"unknown slow-consumer policy "
                             f"{default_policy!r}; expected one of {POLICIES}")
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self._lock = threading.RLock()
        self._ring: deque = deque(maxlen=ring_size)
        self._wal = wal
        self._subscribers: Dict[str, Subscriber] = {}
        self._ids = itertools.count(1)
        self._seen: "deque[str]" = deque(maxlen=DEDUP_CAPACITY)
        self._seen_set: set = set()
        self._next_seq = 0
        self._draining = False
        self.default_queue = default_queue
        self.default_policy = default_policy
        self.heartbeat_seconds = heartbeat_seconds
        self.idle_timeout_seconds = idle_timeout_seconds
        self._obs = observability
        registry = None if observability is None else observability.registry
        if registry is not None:
            self._g_subscribers = registry.gauge(
                "ses_subscribers", help="attached push subscribers")
            self._g_depth = registry.gauge(
                "ses_sub_queue_depth",
                help="deepest per-subscriber delivery queue")
            self._c_shed = registry.counter(
                "ses_sub_shed_total",
                help="queued matches dropped by the shed policy")
            self._c_degraded = registry.counter(
                "ses_sub_degraded_total",
                help="matches collapsed to aggregate counts (degrade)")
            self._c_disconnected = registry.counter(
                "ses_sub_disconnected_total",
                help="subscribers dropped by the disconnect policy")
            self._c_published = registry.counter(
                "ses_push_published_total",
                help="matches published to the subscription hub")
            self._c_duplicates = registry.counter(
                "ses_push_duplicates_suppressed_total",
                help="re-published matches suppressed by match-id dedup")
            self._h_latency = registry.histogram(
                "ses_sub_delivery_latency_seconds",
                help="publish-to-delivery latency per match")
        else:
            self._g_subscribers = self._g_depth = None
            self._c_shed = self._c_degraded = self._c_disconnected = None
            self._c_published = self._c_duplicates = self._h_latency = None
        if wal is not None:
            self._recover(wal)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, wal) -> None:
        """Reload cursors, dedup set and ring tail from the WAL."""
        for record in wal:
            try:
                entry = DeliveredEntry.from_record(record)
            except KeyError:
                continue
            self._next_seq = max(self._next_seq, entry.seq + 1)
            self._remember(entry.match_id)
            self._ring.append(entry)

    def _remember(self, mid: str) -> None:
        if mid in self._seen_set:
            return
        if len(self._seen) == self._seen.maxlen:
            self._seen_set.discard(self._seen[0])
        self._seen.append(mid)
        self._seen_set.add(mid)

    # ------------------------------------------------------------------
    # Publication (matcher side)
    # ------------------------------------------------------------------
    def publish(self, match, pattern_id: Optional[str] = None,
                tenant: Optional[str] = None) -> Optional[DeliveredEntry]:
        """Publish one reported match to every interested subscriber.

        ``match`` is anything substitution-shaped (a
        :class:`~repro.agg.result.Match` or a bare substitution).
        Returns the assigned entry, or ``None`` when the match was a
        duplicate (already delivered, e.g. re-reported by a supervisor
        replay) or the hub is draining.
        """
        substitution = getattr(match, "substitution", match)
        if pattern_id is None:
            pattern_id = getattr(match, "pattern_id", None)
        mid = compute_match_id(substitution)
        with self._lock:
            if self._draining:
                return None
            if mid in self._seen_set:
                if self._c_duplicates is not None:
                    self._c_duplicates.inc()
                return None
            seq = self._next_seq
            self._next_seq += 1
            payload = self._payload(substitution, mid, seq, pattern_id,
                                    tenant)
            entry = DeliveredEntry(seq=seq, match_id=mid,
                                   pattern_id=pattern_id, tenant=tenant,
                                   payload=payload, published=time.time())
            if self._wal is not None:
                # Persist before any delivery: delivered-or-persisted.
                self._wal.append(entry.to_record())
            self._remember(mid)
            self._ring.append(entry)
            if self._c_published is not None:
                self._c_published.inc()
            for subscriber in list(self._subscribers.values()):
                if subscriber.wants(entry):
                    self._offer(subscriber, entry)
            self._publish_gauges()
            return entry

    @staticmethod
    def _payload(substitution, mid: str, seq: int,
                 pattern_id: Optional[str],
                 tenant: Optional[str]) -> Dict[str, Any]:
        bindings = {}
        for variable, event in substitution:
            obj = {"ts": event.ts, "eid": event.eid,
                   "attrs": dict(event.attributes)}
            if variable.name in bindings:  # group variable: list form
                existing = bindings[variable.name]
                if isinstance(existing, list):
                    existing.append(obj)
                else:
                    bindings[variable.name] = [existing, obj]
            else:
                bindings[variable.name] = obj
        return {"seq": seq, "match_id": mid, "pattern_id": pattern_id,
                "tenant": tenant, "min_ts": substitution.min_ts(),
                "max_ts": substitution.max_ts(), "bindings": bindings}

    def _offer(self, subscriber: Subscriber, entry: DeliveredEntry) -> None:
        """Enqueue under the lock, applying the slow-consumer policy."""
        subscriber.cursor = entry.seq
        if subscriber._degraded is not None:
            subscriber._degraded[entry.pattern_id] = (
                subscriber._degraded.get(entry.pattern_id, 0) + 1)
            if self._c_degraded is not None:
                self._c_degraded.inc()
            self._wake(subscriber)
            return
        if len(subscriber._queue) >= subscriber.max_queue:
            policy = subscriber.policy
            if policy == "disconnect":
                if self._c_disconnected is not None:
                    self._c_disconnected.inc()
                self._detach_locked(subscriber, reason="slow-consumer")
                return
            if policy == "shed":
                shed = 0
                while (len(subscriber._queue) >= subscriber.max_queue
                       and subscriber._queue):
                    kind, _ = subscriber._queue.popleft()
                    if kind == "match":
                        shed += 1
                subscriber.sheds += shed
                subscriber._pending_gap += shed
                if self._c_shed is not None:
                    self._c_shed.inc(shed)
            else:  # degrade
                counts: Dict[Optional[str], int] = {}
                for kind, queued in subscriber._queue:
                    if kind == "match":
                        counts[queued.pattern_id] = (
                            counts.get(queued.pattern_id, 0) + 1)
                subscriber._queue.clear()
                counts[entry.pattern_id] = counts.get(entry.pattern_id, 0) + 1
                subscriber._degraded = counts
                if self._c_degraded is not None:
                    self._c_degraded.inc(sum(counts.values()))
                self._wake(subscriber)
                return
        subscriber._queue.append(("match", entry))
        self._wake(subscriber)

    @staticmethod
    def _wake(subscriber: Subscriber) -> None:
        wake = subscriber.wake
        if wake is not None:
            wake()

    def _observe_delivery(self, entry: DeliveredEntry,
                          subscriber: Subscriber) -> None:
        if self._h_latency is not None:
            self._h_latency.observe(max(time.time() - entry.published, 0.0))
        lineage = None if self._obs is None else self._obs.lineage
        if lineage is not None:
            lineage.note_push(entry.match_id, subscriber.subscriber_id)

    # ------------------------------------------------------------------
    # Attach / detach (transport side)
    # ------------------------------------------------------------------
    def attach(self, subscriber_id: Optional[str] = None,
               patterns: Optional[Iterable[str]] = None,
               tenants: Optional[Iterable[str]] = None,
               resume_after: Optional[int] = None,
               queue_size: Optional[int] = None,
               policy: Optional[str] = None) -> Subscriber:
        """Attach a subscriber, optionally resuming after a cursor.

        ``resume_after`` is the subscriber's last received cursor
        (``Last-Event-ID``): every retained entry above it that passes
        the filters is queued before any live match.  ``None`` starts
        at the live tail.  Raises :class:`ValueError` for an unknown
        policy or a duplicate subscriber id.
        """
        policy = policy or self.default_policy
        if policy not in POLICIES:
            raise ValueError(f"unknown slow-consumer policy {policy!r}; "
                             f"expected one of {POLICIES}")
        with self._lock:
            if subscriber_id is None:
                subscriber_id = f"sub-{next(self._ids)}"
            elif subscriber_id in self._subscribers:
                raise ValueError(
                    f"subscriber id {subscriber_id!r} already attached")
            subscriber = Subscriber(
                subscriber_id, self,
                patterns=frozenset(patterns) if patterns else None,
                tenants=frozenset(tenants) if tenants else None,
                max_queue=queue_size or self.default_queue,
                policy=policy,
                cursor=resume_after if resume_after is not None
                else self._next_seq - 1)
            if resume_after is not None:
                for entry in self._replay_after(resume_after):
                    subscriber.cursor = entry.seq
                    if subscriber.wants(entry):
                        # Replay ignores queue bounds: resume must be
                        # gap-free; the transport writes it straight out.
                        subscriber._queue.append(("match", entry))
            self._subscribers[subscriber.subscriber_id] = subscriber
            if self._draining:
                subscriber._queue.append(
                    ("drain", {"resume": subscriber.cursor}))
            self._publish_gauges()
            return subscriber

    def _replay_after(self, cursor: int) -> List[DeliveredEntry]:
        """Retained entries above ``cursor``, ring first, WAL spill."""
        ring = [entry for entry in self._ring if entry.seq > cursor]
        if ring and ring[0].seq <= cursor + 1:
            return ring
        if self._wal is not None:
            ring_start = ring[0].seq if ring else self._next_seq
            spilled = [DeliveredEntry.from_record(record)
                       for record in self._wal.entries_after(cursor)
                       if record.get("seq", ring_start) < ring_start]
            return spilled + ring
        return ring

    def detach(self, subscriber: Subscriber, reason: str = "detached") -> None:
        with self._lock:
            self._detach_locked(subscriber, reason)

    def _detach_locked(self, subscriber: Subscriber, reason: str) -> None:
        if subscriber.closed:
            return
        subscriber.closed = True
        subscriber.close_reason = reason
        self._subscribers.pop(subscriber.subscriber_id, None)
        self._publish_gauges()
        self._wake(subscriber)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> int:
        """Stop accepting publishes; queue a terminal ``drain`` notice
        (carrying each subscriber's resume token) behind every backlog.
        Returns the number of subscribers notified.  Idempotent."""
        with self._lock:
            if self._draining:
                return 0
            self._draining = True
            notified = 0
            for subscriber in list(self._subscribers.values()):
                subscriber._queue.append(
                    ("drain", {"resume": subscriber.cursor}))
                self._wake(subscriber)
                notified += 1
            return notified

    def wait_drained(self, timeout: float = 5.0) -> bool:
        """Wait (polling) until every subscriber consumed its backlog —
        including the terminal drain notice — or the timeout passes."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if all(not s._queue and s._degraded is None
                       for s in self._subscribers.values()):
                    return True
            time.sleep(0.01)
        with self._lock:
            return all(not s._queue for s in self._subscribers.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Highest assigned cursor (``-1`` before the first publish)."""
        return self._next_seq - 1

    @property
    def subscribers(self) -> List[Subscriber]:
        with self._lock:
            return list(self._subscribers.values())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "subscribers": len(self._subscribers),
                "last_seq": self.last_seq,
                "ring": len(self._ring),
                "draining": self._draining,
                "wal": None if self._wal is None else str(self._wal.path),
                "queues": {s.subscriber_id: s.queue_depth
                           for s in self._subscribers.values()},
                "sheds": {s.subscriber_id: s.sheds
                          for s in self._subscribers.values()
                          if s.sheds},
            }

    def _publish_gauges(self) -> None:
        if self._g_subscribers is None:
            return
        self._g_subscribers.set(len(self._subscribers))
        self._g_depth.set(max(
            (s.queue_depth for s in self._subscribers.values()), default=0))

    def __repr__(self) -> str:
        return (f"SubscriptionHub({len(self._subscribers)} subscribers, "
                f"last_seq={self.last_seq}, "
                f"{'draining' if self._draining else 'live'})")
