"""The asyncio push front-end: backpressured ingest + SSE/WS fan-out.

:class:`PushServer` is the network half of ``repro serve --subscribe``.
One listener speaks two protocols, sniffed from the first bytes of each
connection:

* **HTTP/1.1** — ``GET /subscribe`` (SSE match stream, resumable via
  ``Last-Event-ID``), ``GET /ws`` (the same stream over a WebSocket),
  ``POST /ingest`` (a JSON event batch; answers ``202`` or ``429`` +
  ``Retry-After`` when the bounded ingest queue is full), ``GET
  /healthz``, ``GET /statz``, and ``POST /quitquitquit`` (graceful
  drain);
* **length-framed ingest** (:mod:`repro.net.protocol`) — the batch
  protocol ``repro push`` speaks; a full queue answers ``slow_down``
  frames instead of buffering (explicit backpressure).

The server runs its own event loop on a daemon thread (``start()`` /
``shutdown()`` from any thread).  Matcher calls are serialised on a
single worker thread so a slow pattern never blocks heartbeats or
accept.  Ingested batches flow::

    conn -> bounded asyncio.Queue -> match worker -> matcher.push_many
         -> (on_match callback wired by the caller) -> hub.publish
         -> subscriber queues -> SSE/WS writers

Graceful drain (``shutdown()``, SIGTERM via the CLI, or ``POST
/quitquitquit``): stop admitting batches (``draining`` frames / 503),
drain the ingest queue through the matcher, flush the matcher's
still-open windows, then :meth:`SubscriptionHub.drain` — every
subscriber receives its backlog plus a terminal ``drain`` event
carrying the cursor to resume from after the restart.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .hub import SubscriptionHub, Subscriber
from .protocol import (PROTO_VERSION, FrameDecoder, FrameError, WSFrame,
                       encode_frame, event_from_json, sse_format,
                       ws_accept_key, ws_decode, ws_encode)

__all__ = ["PushServer"]

logger = logging.getLogger(__name__)

#: Request head cap (method + headers) for the HTTP side.
MAX_HTTP_HEAD = 64 * 1024

#: HTTP methods used to sniff HTTP from framed-ingest connections.
_HTTP_PREFIXES = (b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI",
                  b"PATC")

_CLOSE = object()  # ingest-queue sentinel


class PushServer:
    """Asyncio ingestion + subscription front-end over one port.

    Parameters
    ----------
    hub:
        The :class:`~repro.net.hub.SubscriptionHub` matches are
        published to (the caller wires the matcher's ``on_match`` to
        ``hub.publish``).
    submit:
        Callable taking a list of events; invoked on the match worker
        thread for every admitted batch (e.g. ``matcher.push_many``).
    flush:
        Optional callable invoked once during drain, after the last
        batch — close/flush the matcher so end-of-stream matches are
        published before subscribers get their terminal notice.
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    ingest_queue:
        Bound on queued-but-unprocessed batches.  A full queue is the
        backpressure signal: framed clients get ``slow_down``, HTTP
        clients ``429``.
    retry_after_ms:
        The delay hinted to backpressured producers.
    observability:
        Optional :class:`~repro.obs.Observability` for the
        ``ses_ingest_*`` metrics.
    health:
        Optional callable returning ``(healthy, detail)`` for
        ``/healthz`` (defaults to hub stats, always healthy).
    on_quit:
        Callback invoked when a remote peer requests drain via ``POST
        /quitquitquit`` (typically the serve loop's ``stop.set``); the
        caller is then expected to call :meth:`shutdown`.  Without one
        the server schedules its own shutdown.
    """

    def __init__(self, hub: SubscriptionHub, submit: Callable[[list], Any],
                 flush: Optional[Callable[[], Any]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 ingest_queue: int = 64, retry_after_ms: int = 250,
                 observability=None,
                 health: Optional[Callable[[], Tuple[bool, dict]]] = None,
                 on_quit: Optional[Callable[[], None]] = None):
        self.hub = hub
        self._submit = submit
        self._flush = flush
        self._host_arg = host
        self._port_arg = port
        self.host = host
        self.port = port
        self.ingest_queue_size = ingest_queue
        self.retry_after_ms = retry_after_ms
        self._health = health
        self._on_quit = on_quit
        self._obs = observability
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._queue: Optional[asyncio.Queue] = None
        self._matcher_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-push-matcher")
        self._draining = False
        self._closed = False
        self._ingest_errors = 0
        registry = None if observability is None else observability.registry
        if registry is not None:
            self._c_batches = registry.counter(
                "ses_ingest_batches_total", help="event batches admitted")
            self._c_events = registry.counter(
                "ses_ingest_events_total", help="events admitted")
            self._c_backpressure = registry.counter(
                "ses_ingest_backpressure_total",
                help="batches refused with 429/slow_down")
            self._g_depth = registry.gauge(
                "ses_ingest_queue_depth", help="queued unprocessed batches")
        else:
            self._c_batches = self._c_events = None
            self._c_backpressure = self._g_depth = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PushServer":
        """Bind and serve on a daemon thread; returns once listening."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-push-server")
        self._thread.start()
        self._started.wait(10.0)
        if self._start_error is not None:
            raise self._start_error
        if not self._started.is_set():
            raise RuntimeError("push server failed to start in time")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception:  # pragma: no cover - surfaced via _start_error
            logger.exception("push server loop died")
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.ingest_queue_size)
        try:
            self._server = await asyncio.start_server(
                self._handle_conn, self._host_arg, self._port_arg)
        except OSError as exc:
            self._start_error = exc
            return
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._stopped = asyncio.Event()
        worker = asyncio.ensure_future(self._match_worker())
        self._started.set()
        logger.info("push endpoint listening on %s", self.url)
        try:
            await self._stopped.wait()
        finally:
            worker.cancel()
            self._server.close()
            await self._server.wait_closed()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_drain(self) -> None:
        """Trigger the drain path from anywhere (thread-safe)."""
        if self._on_quit is not None:
            self._on_quit()
        else:
            threading.Thread(target=self.shutdown, daemon=True).start()

    def shutdown(self, grace: float = 5.0) -> None:
        """Graceful drain + stop; safe to call from any thread, once.

        Ordering: refuse new batches -> drain the ingest queue through
        the matcher -> ``flush`` the matcher (end-of-stream matches
        publish) -> drain the hub (terminal notices) -> wait up to
        ``grace`` for subscribers to consume -> tear the loop down.
        """
        if self._closed or self._loop is None:
            return
        self._closed = True
        self._draining = True
        loop = self._loop
        future = asyncio.run_coroutine_threadsafe(self._drain_ingest(), loop)
        try:
            future.result(timeout=max(grace, 1.0) + 30.0)
        except Exception:
            logger.exception("ingest drain failed; flushing anyway")
        try:
            if self._flush is not None:
                self._flush()
        except Exception:
            logger.exception("matcher flush failed during drain")
        self.hub.drain()
        self.hub.wait_drained(timeout=grace)
        asyncio.run_coroutine_threadsafe(
            self._finish(grace), loop).result(timeout=grace + 10.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._matcher_pool.shutdown(wait=False)

    async def _drain_ingest(self) -> None:
        """Process every already-admitted batch, then stop the worker."""
        assert self._queue is not None
        await self._queue.put(_CLOSE)
        await self._queue.join()

    async def _finish(self, grace: float) -> None:
        # Give SSE/WS writers a beat to flush their terminal notices.
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            if all(s.idle for s in self.hub.subscribers):
                break
            await asyncio.sleep(0.02)
        self._stopped.set()

    # ------------------------------------------------------------------
    # Local producer (the CLI replay path)
    # ------------------------------------------------------------------
    def submit_events(self, events, batch_size: int = 256,
                      timeout: Optional[float] = None) -> int:
        """Feed local events through the same bounded ingest queue.

        Blocks (honouring the queue bound — the local producer gets the
        same backpressure remote ones do) until every batch is
        admitted; returns the number of events submitted.
        """
        if self._loop is None:
            raise RuntimeError("push server is not running")
        events = list(events)
        for start in range(0, len(events), batch_size):
            batch = events[start:start + batch_size]
            future = asyncio.run_coroutine_threadsafe(
                self._queue.put(batch), self._loop)
            future.result(timeout=timeout)
        return len(events)

    def submit_call(self, fn: Callable[[], Any],
                    timeout: Optional[float] = None) -> Any:
        """Run ``fn`` on the matcher worker, after everything queued.

        Matchers are not thread-safe; barriers like ``flush()`` must
        run where the batches do.  Blocks until ``fn`` returns (its
        exception propagates here, not into the worker).
        """
        if self._loop is None:
            raise RuntimeError("push server is not running")
        done = threading.Event()
        box: List[Any] = []

        def call() -> None:
            try:
                box.append(("ok", fn()))
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box.append(("err", exc))
            finally:
                done.set()

        asyncio.run_coroutine_threadsafe(
            self._queue.put(call), self._loop).result(timeout=timeout)
        if not done.wait(timeout if timeout is not None else 600.0):
            raise TimeoutError("matcher worker did not run the call")
        status, value = box[0]
        if status == "err":
            raise value
        return value

    def wait_idle(self, timeout: Optional[float] = None) -> None:
        """Block until every admitted batch has been processed."""
        self.submit_call(lambda: None, timeout=timeout)

    # ------------------------------------------------------------------
    # Match worker
    # ------------------------------------------------------------------
    async def _match_worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._queue.get()
            if self._g_depth is not None:
                self._g_depth.set(self._queue.qsize())
            if batch is _CLOSE:
                self._queue.task_done()
                return
            try:
                if callable(batch):  # a submit_call barrier, not events
                    await loop.run_in_executor(self._matcher_pool, batch)
                else:
                    await loop.run_in_executor(self._matcher_pool,
                                               self._submit, batch)
            except Exception:
                # A poisoned batch must not kill delivery for everyone;
                # supervised serves quarantine poison upstream of here.
                self._ingest_errors += 1
                logger.exception(
                    "match worker failed on a batch of %s",
                    len(batch) if isinstance(batch, list) else "?")
            finally:
                self._queue.task_done()

    def _admit(self, events: List) -> bool:
        """Try to enqueue a decoded batch; False means backpressure."""
        if self._draining or self._queue is None:
            return False
        try:
            self._queue.put_nowait(events)
        except asyncio.QueueFull:
            if self._c_backpressure is not None:
                self._c_backpressure.inc()
            return False
        if self._c_batches is not None:
            self._c_batches.inc()
            self._c_events.inc(len(events))
        if self._g_depth is not None:
            self._g_depth.set(self._queue.qsize())
        return True

    # ------------------------------------------------------------------
    # Connection dispatch
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.read(4)
            if not first:
                return
            if first[:4].ljust(4) in _HTTP_PREFIXES or any(
                    first.startswith(p.strip()) for p in _HTTP_PREFIXES):
                await self._handle_http(reader, writer, first)
            else:
                await self._handle_framed(reader, writer, first)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:
            logger.exception("connection handler failed")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Framed ingest protocol
    # ------------------------------------------------------------------
    async def _handle_framed(self, reader, writer, initial: bytes) -> None:
        decoder = FrameDecoder()
        writer.write(encode_frame({"type": "hello", "proto": PROTO_VERSION,
                                   "server": "repro-push/1"}))
        await writer.drain()
        data = initial
        while data:
            try:
                frames = decoder.feed(data)
            except FrameError as exc:
                writer.write(encode_frame({"type": "error",
                                           "error": str(exc)}))
                await writer.drain()
                return
            for frame in frames:
                if not await self._handle_ingest_frame(frame, writer):
                    await writer.drain()
                    return
            await writer.drain()
            data = await reader.read(65536)

    async def _handle_ingest_frame(self, frame: Dict[str, Any],
                                   writer) -> bool:
        kind = frame.get("type")
        seq = frame.get("seq")
        if kind == "hello":
            return True
        if kind == "ping":
            writer.write(encode_frame({"type": "pong"}))
            return True
        if kind == "bye":
            return False
        if kind != "batch":
            writer.write(encode_frame(
                {"type": "error", "seq": seq,
                 "error": f"unknown frame type {kind!r}"}))
            return True
        if self._draining:
            writer.write(encode_frame({"type": "draining", "seq": seq}))
            return True
        try:
            events = [event_from_json(obj)
                      for obj in frame.get("events", ())]
        except FrameError as exc:
            writer.write(encode_frame({"type": "error", "seq": seq,
                                       "error": str(exc)}))
            return True
        if not self._admit(events):
            writer.write(encode_frame(
                {"type": "slow_down", "seq": seq,
                 "retry_after_ms": self.retry_after_ms,
                 "queue_depth": self._queue.qsize()}))
            return True
        writer.write(encode_frame({"type": "ack", "seq": seq,
                                   "accepted": len(events),
                                   "queue_depth": self._queue.qsize()}))
        return True

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    async def _handle_http(self, reader, writer, initial: bytes) -> None:
        head = bytearray(initial)
        while b"\r\n\r\n" not in head:
            if len(head) > MAX_HTTP_HEAD:
                await self._respond(writer, 431, {"error": "headers too large"})
                return
            chunk = await reader.read(8192)
            if not chunk:
                return
            head.extend(chunk)
        head_bytes, _, leftover = bytes(head).partition(b"\r\n\r\n")
        lines = head_bytes.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            await self._respond(writer, 400, {"error": "bad request line"})
            return
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = bytearray(leftover)
        while len(body) < length:
            chunk = await reader.read(length - len(body))
            if not chunk:
                break
            body.extend(chunk)
        parts = urlsplit(target)
        path = parts.path
        query = {key: values[-1]
                 for key, values in parse_qs(parts.query).items()}
        if method == "GET" and path == "/subscribe":
            await self._serve_sse(writer, headers, query)
        elif method == "GET" and path == "/ws":
            await self._serve_ws(reader, writer, headers, query)
        elif method == "POST" and path == "/ingest":
            await self._serve_ingest(writer, bytes(body))
        elif method == "POST" and path == "/quitquitquit":
            await self._respond(writer, 200, {"quitting": True,
                                              "resume": self.hub.last_seq})
            self.request_drain()
        elif method == "GET" and path == "/healthz":
            healthy, detail = ((True, self.hub.stats())
                               if self._health is None else self._health())
            await self._respond(writer, 200 if healthy else 503, detail)
        elif method == "GET" and path == "/statz":
            stats = self.hub.stats()
            stats["ingest"] = {
                "queue_depth": self._queue.qsize(),
                "queue_size": self.ingest_queue_size,
                "draining": self._draining,
                "errors": self._ingest_errors,
            }
            await self._respond(writer, 200, stats)
        else:
            await self._respond(writer, 404,
                                {"error": f"unknown route {path!r}"})

    async def _respond(self, writer, status: int, payload: dict) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 429: "Too Many Requests",
                  431: "Request Header Fields Too Large",
                  503: "Service Unavailable"}.get(status, "OK")
        body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n")
        if status == 429:
            head += f"Retry-After: {self.retry_after_ms / 1000.0:g}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _serve_ingest(self, writer, body: bytes) -> None:
        if self._draining:
            await self._respond(writer, 503, {"error": "draining"})
            return
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            events = [event_from_json(obj)
                      for obj in (payload or {}).get("events", ())]
        except (ValueError, FrameError, AttributeError) as exc:
            await self._respond(writer, 400, {"error": f"bad batch: {exc}"})
            return
        if not self._admit(events):
            await self._respond(writer, 429, {
                "error": "ingest queue full",
                "retry_after_ms": self.retry_after_ms})
            return
        await self._respond(writer, 202, {"accepted": len(events),
                                          "queue_depth": self._queue.qsize()})

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _attach_from_query(self, headers: Dict[str, str],
                           query: Dict[str, str]) -> Subscriber:
        resume = headers.get("last-event-id", query.get("resume"))
        resume_after = None
        if resume not in (None, "", "live"):
            resume_after = int(resume)
        patterns = [p for p in (query.get("patterns") or "").split(",") if p]
        tenants = [t for t in (query.get("tenants") or "").split(",") if t]
        queue_size = (int(query["queue"]) if "queue" in query else None)
        return self.hub.attach(
            subscriber_id=query.get("id"),
            patterns=patterns or None, tenants=tenants or None,
            resume_after=resume_after, queue_size=queue_size,
            policy=query.get("policy"))

    def _wire_wake(self, subscriber: Subscriber) -> asyncio.Event:
        wake = asyncio.Event()
        loop = asyncio.get_running_loop()

        def poke() -> None:
            loop.call_soon_threadsafe(wake.set)

        subscriber.wake = poke
        return wake

    async def _serve_sse(self, writer, headers: Dict[str, str],
                         query: Dict[str, str]) -> None:
        try:
            subscriber = self._attach_from_query(headers, query)
        except ValueError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        wake = self._wire_wake(subscriber)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"X-Accel-Buffering: no\r\n"
                     b"Connection: close\r\n\r\n")
        writer.write(sse_format(
            {"subscriber": subscriber.subscriber_id,
             "cursor": subscriber.cursor,
             "heartbeat_seconds": self.hub.heartbeat_seconds},
            event="hello"))
        await writer.drain()
        try:
            await self._pump(subscriber, wake,
                             lambda kind, payload: self._sse_chunk(
                                 kind, payload),
                             writer)
        finally:
            self.hub.detach(subscriber, reason=subscriber.close_reason
                            or "connection closed")

    @staticmethod
    def _sse_chunk(kind: str, payload) -> bytes:
        if kind == "match":
            return sse_format(payload.payload, event_id=payload.seq,
                              event="match")
        return sse_format(payload, event=kind)

    async def _pump(self, subscriber: Subscriber, wake: asyncio.Event,
                    render: Callable[[str, Any], bytes], writer,
                    pinger: Optional[Callable[[], bytes]] = None) -> None:
        """The shared delivery loop: pop, render, write, heartbeat."""
        heartbeat = self.hub.heartbeat_seconds
        idle_timeout = self.hub.idle_timeout_seconds
        while True:
            # Clear-before-pop: a publish landing after an empty pop
            # still leaves the event set, so the wait returns at once.
            wake.clear()
            item = subscriber.pop()
            if item is None:
                if subscriber.closed:
                    writer.write(render(
                        "disconnect",
                        {"reason": subscriber.close_reason or "detached",
                         "resume": subscriber.cursor}))
                    await writer.drain()
                    return
                try:
                    await asyncio.wait_for(wake.wait(), timeout=heartbeat)
                except asyncio.TimeoutError:
                    writer.write(b": hb\n\n" if pinger is None else pinger())
                    try:
                        await asyncio.wait_for(writer.drain(), idle_timeout)
                    except asyncio.TimeoutError:
                        subscriber.close(reason="idle-timeout")
                        return
                continue
            kind, payload = item
            writer.write(render(kind, payload))
            try:
                await asyncio.wait_for(writer.drain(), idle_timeout)
            except asyncio.TimeoutError:
                subscriber.close(reason="idle-timeout")
                return
            if kind == "drain":
                return

    # -- WebSocket -----------------------------------------------------
    async def _serve_ws(self, reader, writer, headers: Dict[str, str],
                        query: Dict[str, str]) -> None:
        key = headers.get("sec-websocket-key")
        if (headers.get("upgrade", "").lower() != "websocket"
                or key is None):
            await self._respond(writer, 400,
                                {"error": "not a websocket handshake"})
            return
        try:
            subscriber = self._attach_from_query(headers, query)
        except ValueError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        wake = self._wire_wake(subscriber)
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {ws_accept_key(key)}\r\n\r\n"
        ).encode("latin-1"))
        writer.write(ws_encode(json.dumps(
            {"event": "hello", "subscriber": subscriber.subscriber_id,
             "cursor": subscriber.cursor}).encode("utf-8")))
        await writer.drain()
        read_task = asyncio.ensure_future(
            self._ws_read(reader, writer, subscriber))

        def render(kind: str, payload) -> bytes:
            if kind == "match":
                body = dict(payload.payload)
                body["event"] = "match"
            else:
                body = dict(payload)
                body["event"] = kind
            return ws_encode(json.dumps(body, default=str).encode("utf-8"))

        try:
            await self._pump(subscriber, wake, render, writer,
                             pinger=lambda: ws_encode(b"", WSFrame.PING))
            writer.write(ws_encode(b"", WSFrame.CLOSE))
            await writer.drain()
        finally:
            read_task.cancel()
            self.hub.detach(subscriber, reason=subscriber.close_reason
                            or "connection closed")

    async def _ws_read(self, reader, writer, subscriber: Subscriber) -> None:
        """Consume client frames: answer pings, honour close."""
        buffer = bytearray()
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    subscriber.close(reason="connection closed")
                    return
                buffer.extend(data)
                while True:
                    frame = ws_decode(buffer)
                    if frame is None:
                        break
                    if frame.opcode == WSFrame.CLOSE:
                        subscriber.close(reason="client close")
                        return
                    if frame.opcode == WSFrame.PING:
                        writer.write(ws_encode(frame.payload, WSFrame.PONG))
                        await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def __repr__(self) -> str:
        state = ("draining" if self._draining
                 else "serving" if self._thread else "stopped")
        return f"PushServer({self.url}, {state})"
