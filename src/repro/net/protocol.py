"""Wire formats for the push-delivery front-end (stdlib only).

Three small protocols share this module; all of them move JSON:

**Length-framed ingest** — the batch protocol ``repro push`` and shard
routers speak over TCP.  A frame is a 4-byte big-endian length followed
by that many bytes of UTF-8 JSON.  Client frames::

    {"type": "hello", "proto": 1}
    {"type": "batch", "seq": 3, "events": [{"ts": 1, "eid": "e1",
                                            "attrs": {"L": "C"}}, ...]}
    {"type": "ping"}      {"type": "bye"}

Server frames::

    {"type": "hello", "proto": 1, "server": "repro-push/1"}
    {"type": "ack", "seq": 3, "accepted": 128, "queue_depth": 2}
    {"type": "slow_down", "seq": 3, "retry_after_ms": 250, ...}
    {"type": "draining"}  {"type": "pong"}  {"type": "error", "error": ...}

``slow_down`` is the framed twin of HTTP 429: the batch was **not**
enqueued and must be retried after the hinted delay (explicit
backpressure — the server never buffers beyond its bounded queue).

**Server-sent events** — match fan-out for ``GET /subscribe``.  Every
delivered match is one SSE event whose ``id:`` is the subscriber's
monotonic cursor, so the standard ``Last-Event-ID`` reconnect header is
the resume token.  Non-match notices use named event types (``gap``,
``aggregates``, ``drain``, heartbeat comments).

**WebSocket** — the same payloads as one JSON text frame per delivery,
for subscribers behind proxies that buffer SSE.  Only the server side
of RFC 6455 is implemented (plus the masked client frames the tests and
``repro tail --ws`` need): text/ping/pong/close, no fragmentation, no
extensions.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from typing import Any, Dict, Iterable, List, Optional

from ..core.events import Event

__all__ = [
    "PROTO_VERSION", "MAX_FRAME_BYTES",
    "event_to_json", "event_from_json", "events_from_json",
    "encode_frame", "decode_frames", "FrameDecoder", "FrameError",
    "sse_format", "parse_sse_stream",
    "ws_accept_key", "ws_encode", "ws_decode", "WSFrame",
]

#: Ingest protocol version spoken by both ends' ``hello`` frames.
PROTO_VERSION = 1

#: Hard ceiling on one frame's JSON body — a malformed length prefix
#: must not make the server allocate gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: RFC 6455 §1.3 handshake GUID.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class FrameError(ValueError):
    """A malformed ingest frame (bad length, bad JSON, over the cap)."""


# ----------------------------------------------------------------------
# Event JSON codec
# ----------------------------------------------------------------------
def event_to_json(event: Event) -> Dict[str, Any]:
    """One event as the protocol's JSON object."""
    return {"ts": event.ts, "eid": event.eid,
            "attrs": dict(event.attributes)}


def event_from_json(obj: Dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from its JSON object."""
    if not isinstance(obj, dict) or "ts" not in obj:
        raise FrameError(f"event object needs a 'ts' field: {obj!r}")
    return Event(ts=obj["ts"], attrs=dict(obj.get("attrs") or {}),
                 eid=obj.get("eid"))


def events_from_json(objs: Iterable[Dict[str, Any]]) -> List[Event]:
    return [event_from_json(obj) for obj in objs]


# ----------------------------------------------------------------------
# Length-framed JSON (ingest TCP protocol)
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one frame: 4-byte big-endian length + JSON body."""
    body = json.dumps(payload, separators=(",", ":"),
                      default=str).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte cap")
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed bytes, collect complete frames.

    Transport-agnostic — the asyncio server feeds it from
    ``StreamReader.read`` chunks, the blocking client from
    ``socket.recv``.
    """

    __slots__ = ("_buffer", "max_frame_bytes")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return frames
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"announced frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte cap")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            if not isinstance(payload, dict) or "type" not in payload:
                raise FrameError(f"frame is not a typed object: {payload!r}")
            frames.append(payload)


def decode_frames(data: bytes) -> List[Dict[str, Any]]:
    """Decode a byte string holding zero or more complete frames."""
    return FrameDecoder().feed(data)


# ----------------------------------------------------------------------
# Server-sent events
# ----------------------------------------------------------------------
def sse_format(data: Dict[str, Any], event_id: Optional[int] = None,
               event: Optional[str] = None) -> bytes:
    """One SSE event block: optional ``id:``/``event:``, JSON ``data:``."""
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    body = json.dumps(data, separators=(",", ":"), default=str)
    lines.append(f"data: {body}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_sse_stream(lines: Iterable[str]):
    """Yield ``(event_type, event_id, data_dict)`` from SSE text lines.

    ``event_type`` defaults to ``"message"``; comment lines (``:``
    heartbeats) are skipped; ``event_id`` is ``None`` until the stream
    sets one.  The iterator ends with the underlying line source.
    """
    event_type = "message"
    event_id: Optional[str] = None
    data_lines: List[str] = []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if line.startswith(":"):
            continue
        if not line:
            if data_lines:
                try:
                    payload = json.loads("\n".join(data_lines))
                except json.JSONDecodeError:
                    payload = {"raw": "\n".join(data_lines)}
                yield event_type, event_id, payload
            event_type, data_lines = "message", []
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event_type = value
        elif field == "id":
            event_id = value
        elif field == "data":
            data_lines.append(value)


# ----------------------------------------------------------------------
# WebSocket (RFC 6455, server side + test client)
# ----------------------------------------------------------------------
class WSFrame:
    """One decoded WebSocket frame."""

    __slots__ = ("opcode", "payload")

    TEXT, CLOSE, PING, PONG = 0x1, 0x8, 0x9, 0xA

    def __init__(self, opcode: int, payload: bytes):
        self.opcode = opcode
        self.payload = payload

    def __repr__(self) -> str:
        return f"WSFrame(opcode=0x{self.opcode:x}, {len(self.payload)}B)"


def ws_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a handshake's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1(client_key.strip().encode("ascii")
                          + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_encode(payload: bytes, opcode: int = WSFrame.TEXT,
              mask: bool = False) -> bytes:
    """Encode one unfragmented frame (masked for client→server)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header.extend(struct.pack(">H", length))
    else:
        header.append(mask_bit | 127)
        header.extend(struct.pack(">Q", length))
    if mask:
        key = b"\x00\x11\x22\x33"  # deterministic; fine for loopback tests
        header.extend(key)
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def ws_decode(buffer: bytearray) -> Optional[WSFrame]:
    """Pop one complete frame off ``buffer`` (``None`` if incomplete)."""
    if len(buffer) < 2:
        return None
    opcode = buffer[0] & 0x0F
    masked = bool(buffer[1] & 0x80)
    length = buffer[1] & 0x7F
    offset = 2
    if length == 126:
        if len(buffer) < 4:
            return None
        (length,) = struct.unpack_from(">H", buffer, 2)
        offset = 4
    elif length == 127:
        if len(buffer) < 10:
            return None
        (length,) = struct.unpack_from(">Q", buffer, 2)
        offset = 10
    key = b""
    if masked:
        if len(buffer) < offset + 4:
            return None
        key = bytes(buffer[offset:offset + 4])
        offset += 4
    if len(buffer) < offset + length:
        return None
    payload = bytes(buffer[offset:offset + length])
    del buffer[:offset + length]
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return WSFrame(opcode, payload)
