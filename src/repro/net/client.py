"""Blocking clients for the push front-end (``repro tail`` / ``repro push``).

Stdlib-only counterparts to :mod:`repro.net.server`:

* :func:`push_events` — the length-framed ingest client.  Sends event
  batches, honours ``slow_down`` backpressure by sleeping out the
  hinted delay and resending (bounded retries), and reports a draining
  server via :exc:`ServerDraining` so callers can fail over.
* :func:`subscribe_sse` — a resumable SSE tail.  Yields every delivered
  event and transparently reconnects with ``Last-Event-ID`` after
  connection loss, so a ``kill -9``'d and restarted server resumes the
  stream gap-free (the hub's match-id dedup makes redelivery safe).
* :func:`subscribe_ws` — the same stream over one WebSocket connection
  (no auto-reconnect; exercise for transports behind SSE-buffering
  proxies).
* :func:`http_push` / :func:`request_quit` — one-shot ``POST /ingest``
  and graceful-drain helpers.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple
from urllib.parse import urlencode

from .protocol import (PROTO_VERSION, FrameDecoder, FrameError, WSFrame,
                       encode_frame, event_to_json, parse_sse_stream,
                       ws_decode, ws_encode)

__all__ = ["push_events", "http_push", "subscribe_sse", "subscribe_ws",
           "request_quit", "ServerDraining", "PushRejected"]


class ServerDraining(RuntimeError):
    """The server refused the batch because it is draining."""


class PushRejected(RuntimeError):
    """The server kept answering ``slow_down`` past the retry budget."""


# ----------------------------------------------------------------------
# Framed ingest client
# ----------------------------------------------------------------------
def _next_frame(sock: socket.socket, decoder: FrameDecoder,
                pending: List[dict]) -> dict:
    while not pending:
        data = sock.recv(65536)
        if not data:
            raise ConnectionError("server closed the ingest connection")
        pending.extend(decoder.feed(data))
    return pending.pop(0)


def push_events(host: str, port: int, events: Iterable, *,
                batch_size: int = 256, timeout: float = 10.0,
                max_retries: int = 60) -> int:
    """Send events over the framed protocol; returns events accepted.

    Each batch waits for the server's answer: ``ack`` advances,
    ``slow_down`` sleeps out ``retry_after_ms`` and resends (up to
    ``max_retries`` per batch — the producer side of backpressure),
    ``draining`` raises :exc:`ServerDraining`.  The client speaks first
    (the server sniffs HTTP vs framed from the opening bytes).
    """
    events = list(events)
    decoder = FrameDecoder()
    pending: List[dict] = []
    accepted = 0
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_frame({"type": "hello", "proto": PROTO_VERSION}))
        hello = _next_frame(sock, decoder, pending)
        if hello.get("type") != "hello":
            raise FrameError(f"expected server hello, got {hello!r}")
        seq = 0
        for start in range(0, len(events), batch_size):
            batch = [event_to_json(e) for e in events[start:start + batch_size]]
            seq += 1
            frame = encode_frame({"type": "batch", "seq": seq,
                                  "events": batch})
            for attempt in range(max_retries + 1):
                sock.sendall(frame)
                reply = _next_frame(sock, decoder, pending)
                kind = reply.get("type")
                if kind == "ack":
                    accepted += reply.get("accepted", len(batch))
                    break
                if kind == "slow_down":
                    time.sleep(reply.get("retry_after_ms", 250) / 1000.0)
                    continue
                if kind == "draining":
                    raise ServerDraining(
                        f"server draining after {accepted} events")
                raise FrameError(f"unexpected reply {reply!r}")
            else:
                raise PushRejected(
                    f"batch {seq} refused {max_retries} times")
        sock.sendall(encode_frame({"type": "bye"}))
    return accepted


def http_push(host: str, port: int, events: Iterable, *,
              timeout: float = 10.0) -> Dict[str, Any]:
    """One ``POST /ingest`` batch; returns the decoded JSON response.

    Raises :exc:`PushRejected` on 429 and :exc:`ServerDraining` on 503
    so callers see the same backpressure vocabulary as the framed path.
    """
    body = json.dumps(
        {"events": [event_to_json(e) for e in events]}).encode("utf-8")
    status, _, payload = _http_request(host, port, "POST", "/ingest", body,
                                       timeout=timeout)
    decoded = json.loads(payload.decode("utf-8") or "{}")
    if status == 429:
        raise PushRejected(f"ingest queue full: {decoded}")
    if status == 503:
        raise ServerDraining(str(decoded))
    if status != 202:
        raise FrameError(f"ingest failed with HTTP {status}: {decoded}")
    return decoded


def request_quit(host: str, port: int, timeout: float = 5.0) -> Dict[str, Any]:
    """``POST /quitquitquit`` — ask the server to drain gracefully."""
    status, _, payload = _http_request(host, port, "POST", "/quitquitquit",
                                       b"", timeout=timeout)
    if status != 200:
        raise RuntimeError(f"quit refused with HTTP {status}")
    return json.loads(payload.decode("utf-8") or "{}")


def _http_request(host: str, port: int, method: str, path: str,
                  body: bytes, timeout: float) -> Tuple[int, dict, bytes]:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n")
        sock.sendall(head.encode("latin-1") + body)
        raw = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw.extend(chunk)
    head_bytes, _, payload = bytes(raw).partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


# ----------------------------------------------------------------------
# SSE subscription client
# ----------------------------------------------------------------------
def _subscribe_query(patterns, tenants, subscriber_id, policy,
                     queue_size) -> Dict[str, str]:
    query: Dict[str, str] = {}
    if patterns:
        query["patterns"] = ",".join(patterns)
    if tenants:
        query["tenants"] = ",".join(tenants)
    if subscriber_id:
        query["id"] = subscriber_id
    if policy:
        query["policy"] = policy
    if queue_size:
        query["queue"] = str(queue_size)
    return query


def subscribe_sse(host: str, port: int, *, resume: Optional[int] = None,
                  patterns: Iterable[str] = (), tenants: Iterable[str] = (),
                  subscriber_id: Optional[str] = None,
                  policy: Optional[str] = None,
                  queue_size: Optional[int] = None,
                  reconnect: bool = True, reconnect_delay: float = 0.2,
                  max_reconnects: int = 100, stop_on_drain: bool = True,
                  read_timeout: float = 60.0,
                  connect_timeout: float = 5.0
                  ) -> Iterator[Dict[str, Any]]:
    """Tail the match stream; yields ``{"event", "id", "data"}`` dicts.

    Maintains the resume cursor across reconnects: after any connection
    loss (server killed, idle disconnect, slow-consumer drop) the next
    attempt carries ``Last-Event-ID`` so no match is lost or repeated.
    Connection-refused attempts count against ``max_reconnects`` with
    ``reconnect_delay`` between them, riding out a supervisor restart.

    Terminal events: ``drain`` ends the generator when ``stop_on_drain``
    (the data carries the resume token); a ``disconnect`` notice
    triggers a resumed reconnect rather than ending the stream.
    """
    last_id: Optional[int] = resume
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except OSError:
            failures += 1
            if not reconnect or failures > max_reconnects:
                return
            time.sleep(reconnect_delay)
            continue
        try:
            sock.settimeout(read_timeout)
            query = _subscribe_query(patterns, tenants, subscriber_id,
                                     policy, queue_size)
            target = "/subscribe"
            if query:
                target += "?" + urlencode(query)
            head = (f"GET {target} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                    f"Accept: text/event-stream\r\n")
            if last_id is not None:
                head += f"Last-Event-ID: {last_id}\r\n"
            head += "Connection: close\r\n\r\n"
            sock.sendall(head.encode("latin-1"))
            stream = sock.makefile("r", encoding="utf-8", newline="\n")
            status_line = stream.readline()
            if "200" not in status_line.split(" ", 2)[1:2]:
                raise ConnectionError(f"subscribe refused: "
                                      f"{status_line.strip()!r}")
            while stream.readline().strip():
                pass  # drain response headers
            failures = 0
            for event_type, event_id, data in parse_sse_stream(stream):
                if event_id is not None:
                    last_id = int(event_id)
                yield {"event": event_type, "id": event_id, "data": data}
                if event_type == "drain":
                    if stop_on_drain:
                        return
                    break
        except (OSError, ConnectionError, ValueError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
        failures += 1
        if not reconnect or failures > max_reconnects:
            return
        time.sleep(reconnect_delay)


# ----------------------------------------------------------------------
# WebSocket subscription client (single connection, tests + tail --ws)
# ----------------------------------------------------------------------
def subscribe_ws(host: str, port: int, *, resume: Optional[int] = None,
                 patterns: Iterable[str] = (), tenants: Iterable[str] = (),
                 subscriber_id: Optional[str] = None,
                 policy: Optional[str] = None,
                 queue_size: Optional[int] = None,
                 read_timeout: float = 60.0,
                 connect_timeout: float = 5.0) -> Iterator[Dict[str, Any]]:
    """One WebSocket subscription; yields decoded JSON payload dicts.

    Ends when the server closes (drain or disconnect); no reconnect —
    resumable tailing is :func:`subscribe_sse`'s job.
    """
    query = _subscribe_query(patterns, tenants, subscriber_id, policy,
                             queue_size)
    if resume is not None:
        query["resume"] = str(resume)
    target = "/ws" + ("?" + urlencode(query) if query else "")
    with socket.create_connection((host, port),
                                  timeout=connect_timeout) as sock:
        sock.sendall((
            f"GET {target} HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            "Sec-WebSocket-Key: cmVwcm8tdGFpbC1rZXk=\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n").encode("latin-1"))
        sock.settimeout(read_timeout)
        buffer = bytearray()
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(4096)
            if not chunk:
                raise ConnectionError("websocket handshake failed")
            buffer.extend(chunk)
        head, _, rest = bytes(buffer).partition(b"\r\n\r\n")
        if b" 101 " not in head.split(b"\r\n", 1)[0]:
            raise ConnectionError(
                f"websocket refused: {head.splitlines()[0]!r}")
        buffer = bytearray(rest)
        while True:
            frame = ws_decode(buffer)
            if frame is None:
                chunk = sock.recv(65536)
                if not chunk:
                    return
                buffer.extend(chunk)
                continue
            if frame.opcode == WSFrame.CLOSE:
                return
            if frame.opcode == WSFrame.PING:
                sock.sendall(ws_encode(frame.payload, WSFrame.PONG,
                                       mask=True))
                continue
            if frame.opcode != WSFrame.TEXT:
                continue
            payload = json.loads(frame.payload.decode("utf-8"))
            yield payload
            if payload.get("event") == "drain":
                return
