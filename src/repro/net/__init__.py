"""Durable push delivery: backpressured ingest + resumable subscriptions.

``repro.net`` is the serving front-end around the streaming matchers:

* :mod:`~repro.net.protocol` — the wire formats (length-framed JSON
  ingest, SSE, minimal WebSocket);
* :mod:`~repro.net.hub` — :class:`SubscriptionHub`, the transport-
  agnostic fan-out core: monotonic per-subscriber cursors, a bounded
  replay ring spilling to the durable
  :class:`~repro.resilience.delivery.DeliveryLog`, match-id dedup for
  exactly-once redelivery, slow-consumer policies (``disconnect`` /
  ``shed`` / ``degrade``) and graceful drain with terminal resume
  tokens;
* :mod:`~repro.net.server` — :class:`PushServer`, the asyncio listener
  (``POST /ingest`` + framed TCP with 429/``slow_down`` backpressure,
  ``GET /subscribe`` SSE with ``Last-Event-ID`` resume, ``GET /ws``,
  ``POST /quitquitquit``);
* :mod:`~repro.net.client` — the blocking clients behind ``repro push``
  and ``repro tail``.

See ``docs/serving.md`` for the protocol walk-through and the
delivered-or-persisted drain guarantees.
"""

from .client import (PushRejected, ServerDraining, http_push, push_events,
                     request_quit, subscribe_sse, subscribe_ws)
from .hub import (DEFAULT_QUEUE, DEFAULT_RING, POLICIES, DeliveredEntry,
                  Subscriber, SubscriptionHub)
from .protocol import (MAX_FRAME_BYTES, PROTO_VERSION, FrameDecoder,
                       FrameError, WSFrame, decode_frames, encode_frame,
                       event_from_json, event_to_json, events_from_json,
                       parse_sse_stream, sse_format, ws_accept_key,
                       ws_decode, ws_encode)
from .server import PushServer

__all__ = [
    "SubscriptionHub", "Subscriber", "DeliveredEntry",
    "POLICIES", "DEFAULT_QUEUE", "DEFAULT_RING",
    "PushServer",
    "push_events", "http_push", "subscribe_sse", "subscribe_ws",
    "request_quit", "ServerDraining", "PushRejected",
    "PROTO_VERSION", "MAX_FRAME_BYTES",
    "FrameDecoder", "FrameError", "encode_frame", "decode_frames",
    "event_to_json", "event_from_json", "events_from_json",
    "sse_format", "parse_sse_stream",
    "ws_accept_key", "ws_encode", "ws_decode", "WSFrame",
]
