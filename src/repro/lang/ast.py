"""Abstract syntax tree of the PERMUTE query language.

A query has the shape::

    PATTERN PERMUTE(c, p+, d) THEN b
    WHERE c.L = 'C' AND ... AND d.ID = b.ID
    WITHIN 264 HOURS

which parses to a :class:`QueryNode` holding a sequence of
:class:`SetNode` (one per PERMUTE group or bare variable), a list of
:class:`ConditionNode`, and a :class:`DurationNode`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

__all__ = [
    "VariableNode", "SetNode", "AttributeNode", "LiteralNode",
    "ConditionNode", "DurationNode", "AggregateNode", "QueryNode",
]


class VariableNode:
    """A declared event variable, e.g. ``p+`` (``quantified=True``)."""

    __slots__ = ("name", "quantified", "line", "column")

    def __init__(self, name: str, quantified: bool,
                 line: int = 0, column: int = 0):
        self.name = name
        self.quantified = quantified
        self.line = line
        self.column = column

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VariableNode):
            return NotImplemented
        return self.name == other.name and self.quantified == other.quantified

    def __hash__(self) -> int:
        return hash((self.name, self.quantified))

    def __repr__(self) -> str:
        return f"{self.name}+" if self.quantified else self.name


class SetNode:
    """One event set pattern: a PERMUTE group or a bare variable."""

    __slots__ = ("variables", "explicit_permute")

    def __init__(self, variables: List[VariableNode],
                 explicit_permute: bool = True):
        self.variables = list(variables)
        self.explicit_permute = explicit_permute

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.variables)
        return f"PERMUTE({inner})" if self.explicit_permute else inner


class AttributeNode:
    """An attribute reference ``v.A`` in a condition."""

    __slots__ = ("variable", "attribute", "line", "column")

    def __init__(self, variable: str, attribute: str,
                 line: int = 0, column: int = 0):
        self.variable = variable
        self.attribute = attribute
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.variable}.{self.attribute}"


class LiteralNode:
    """A constant literal in a condition."""

    __slots__ = ("value", "line", "column")

    def __init__(self, value: Any, line: int = 0, column: int = 0):
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return repr(self.value)


class ConditionNode:
    """A comparison ``left op right`` from the WHERE clause."""

    __slots__ = ("left", "op", "right", "line", "column")

    def __init__(self, left: AttributeNode, op: str,
                 right: Union[AttributeNode, LiteralNode],
                 line: int = 0, column: int = 0):
        self.left = left
        self.op = op
        self.right = right
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class DurationNode:
    """The WITHIN clause: a magnitude and an optional unit keyword."""

    __slots__ = ("magnitude", "unit", "line", "column")

    #: Multipliers to the canonical unit (hours, like the paper).
    UNIT_HOURS = {
        None: 1, "HOUR": 1, "HOURS": 1,
        "DAY": 24, "DAYS": 24,
        "MINUTE": 1 / 60, "MINUTES": 1 / 60,
        "SECOND": 1 / 3600, "SECONDS": 1 / 3600,
    }

    def __init__(self, magnitude: Union[int, float], unit: Optional[str] = None,
                 line: int = 0, column: int = 0):
        self.magnitude = magnitude
        self.unit = unit
        self.line = line
        self.column = column

    def in_hours(self) -> Union[int, float]:
        """The duration converted to hours (the paper's canonical unit)."""
        value = self.magnitude * self.UNIT_HOURS[self.unit]
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def __repr__(self) -> str:
        return (f"{self.magnitude} {self.unit}" if self.unit
                else str(self.magnitude))


class AggregateNode:
    """One SELECT-clause aggregate term, e.g. ``sum(p.dose) AS total``.

    ``variable``/``attribute`` are ``None`` exactly for ``count(*)``.
    """

    __slots__ = ("func", "variable", "attribute", "alias", "line", "column")

    def __init__(self, func: str, variable: Optional[str] = None,
                 attribute: Optional[str] = None, alias: Optional[str] = None,
                 line: int = 0, column: int = 0):
        self.func = func
        self.variable = variable
        self.attribute = attribute
        self.alias = alias
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        inner = ("*" if self.variable is None
                 else f"{self.variable}.{self.attribute}")
        out = f"{self.func}({inner})"
        if self.alias is not None:
            out += f" AS {self.alias}"
        return out


class QueryNode:
    """A full parsed query (optionally with a SELECT aggregate clause)."""

    __slots__ = ("sets", "conditions", "duration", "aggregates")

    def __init__(self, sets: List[SetNode], conditions: List[ConditionNode],
                 duration: DurationNode,
                 aggregates: Optional[List[AggregateNode]] = None):
        self.sets = list(sets)
        self.conditions = list(conditions)
        self.duration = duration
        self.aggregates = list(aggregates) if aggregates else None

    def __repr__(self) -> str:
        sets = " THEN ".join(repr(s) for s in self.sets)
        where = " AND ".join(repr(c) for c in self.conditions)
        out = f"PATTERN {sets}"
        if self.aggregates:
            select = ", ".join(repr(a) for a in self.aggregates)
            out = f"SELECT {select} FROM {out}"
        if where:
            out += f" WHERE {where}"
        return out + f" WITHIN {self.duration!r}"
