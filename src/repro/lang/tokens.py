"""Tokens of the PERMUTE query language."""

from __future__ import annotations

from enum import Enum
from typing import Any

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"        # PATTERN, PERMUTE, THEN, WHERE, AND, WITHIN, ...
    IDENT = "identifier"       # variable and attribute names
    NUMBER = "number"          # integer or float literal
    STRING = "string"          # quoted string literal
    OPERATOR = "operator"      # = != <> < <= > >=
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    PLUS = "+"
    STAR = "*"
    EOF = "end of input"


#: Reserved words (case-insensitive).  ``HOURS``/``DAYS``/etc. are duration
#: units accepted after WITHIN.  ``SELECT``/``FROM``/``AS`` introduce the
#: aggregate clause; aggregate function names (``count``, ``sum``, ...)
#: stay ordinary identifiers so they remain usable as variable names.
KEYWORDS = frozenset({
    "PATTERN", "PERMUTE", "THEN", "WHERE", "AND", "WITHIN",
    "HOURS", "HOUR", "DAYS", "DAY", "MINUTES", "MINUTE", "SECONDS", "SECOND",
    "SELECT", "FROM", "AS",
})


class Token:
    """One lexical token with its source position (1-based)."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_: TokenType, value: Any, line: int, column: int):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def matches(self, type_: TokenType, value: Any = None) -> bool:
        """True iff the token has the given type (and value, if given)."""
        if self.type is not type_:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return (f"Token({self.type.name}, {self.value!r}, "
                f"{self.line}:{self.column})")
