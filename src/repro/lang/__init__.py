"""The PERMUTE query language (SQL change proposal [27] style).

A small declarative front end for SES patterns::

    from repro.lang import parse_pattern

    pattern = parse_pattern('''
        PATTERN PERMUTE(c, p+, d) THEN b
        WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
          AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
        WITHIN 264 HOURS
    ''')
"""

from .ast import (AggregateNode, AttributeNode, ConditionNode, DurationNode,
                  LiteralNode, QueryNode, SetNode, VariableNode)
from .compiler import (compile_aggregates, compile_query, parse_pattern,
                       parse_query_spec)
from .errors import CompileError, LexError, ParseError, QueryError
from .lexer import tokenize
from .parser import parse
from .render import render_pattern, render_query


def parse_query(text):
    """Parse a PERMUTE query into its :class:`~repro.lang.ast.QueryNode`.

    Alias of :func:`parse` under the name the public façade exports
    (``repro.parse_query``); use :func:`parse_pattern` to go straight to
    an executable :class:`~repro.core.pattern.SESPattern`.
    """
    return parse(text)


__all__ = [
    "AggregateNode", "AttributeNode", "CompileError", "ConditionNode",
    "DurationNode", "LexError", "LiteralNode", "ParseError", "QueryError",
    "QueryNode", "SetNode", "VariableNode", "compile_aggregates",
    "compile_query", "parse", "parse_pattern", "parse_query",
    "parse_query_spec", "render_pattern", "render_query", "tokenize",
]
