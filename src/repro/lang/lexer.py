"""Lexer for the PERMUTE query language.

Turns query text into a stream of :class:`~repro.lang.tokens.Token`
objects.  Keywords are case-insensitive; identifiers are case-sensitive.
``--`` starts a comment running to end of line (SQL style).
"""

from __future__ import annotations

from typing import List

from .errors import LexError
from .tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_SINGLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; the result always ends with an EOF token."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(text)

    def error(message: str) -> LexError:
        return LexError(message, line, column)

    while i < n:
        ch = text[i]
        # Whitespace and newlines.
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        # Comments: -- to end of line.
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        # String literals (single or double quotes, '' escapes a quote).
        if ch in ("'", '"'):
            quote = ch
            start_line, start_column = line, column
            i += 1
            column += 1
            chars: List[str] = []
            while True:
                if i >= n:
                    raise LexError("unterminated string literal",
                                   start_line, start_column)
                c = text[i]
                if c == "\n":
                    raise LexError("newline inside string literal",
                                   start_line, start_column)
                if c == quote:
                    if i + 1 < n and text[i + 1] == quote:
                        chars.append(quote)
                        i += 2
                        column += 2
                        continue
                    i += 1
                    column += 1
                    break
                chars.append(c)
                i += 1
                column += 1
            tokens.append(Token(TokenType.STRING, "".join(chars),
                                start_line, start_column))
            continue
        # Numbers (integers and floats).
        if ch.isdigit():
            start_column = column
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            raw = text[i:j]
            value = float(raw) if is_float else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, line, start_column))
            column += j - i
            i = j
            continue
        # Operators (longest match first).
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                canonical = "!=" if op == "<>" else op
                tokens.append(Token(TokenType.OPERATOR, canonical, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        # Single-character punctuation.
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, column))
            i += 1
            column += 1
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start_column = column
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(),
                                    line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, start_column))
            column += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens
