"""Rendering SES patterns back to PERMUTE query text.

The inverse of :func:`repro.lang.compiler.parse_pattern`: useful for
logging, for showing users the query a programmatic pattern corresponds
to, and for round-trip testing of the language front end.
"""

from __future__ import annotations

from typing import Optional

from ..agg.spec import AggregateSpec
from ..core.conditions import Attr, Condition
from ..core.pattern import SESPattern

__all__ = ["render_pattern", "render_query"]


def _render_operand(operand) -> str:
    if isinstance(operand, Attr):
        return f"{operand.variable.name}.{operand.attribute}"
    value = operand.value
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def _render_condition(condition: Condition) -> str:
    return (f"{_render_operand(condition.left)} {condition.op} "
            f"{_render_operand(condition.right)}")


def render_pattern(pattern: SESPattern) -> str:
    """Render ``pattern`` as an equivalent PERMUTE query string.

    The output always parses back (via
    :func:`~repro.lang.compiler.parse_pattern`) to a pattern equal to the
    input, provided every constant is a string, int, or float.
    """
    sets = []
    for variable_set in pattern.sets:
        inner = ", ".join(repr(v) for v in sorted(variable_set))
        sets.append(f"PERMUTE({inner})")
    text = "PATTERN " + " THEN ".join(sets)
    if pattern.conditions:
        rendered = " AND ".join(_render_condition(c)
                                for c in pattern.conditions)
        text += f" WHERE {rendered}"
    return f"{text} WITHIN {pattern.tau}"


def render_query(pattern: SESPattern,
                 aggregate: Optional[AggregateSpec] = None) -> str:
    """Render a pattern (optionally with aggregates) as query text.

    With a spec, prefixes the :func:`render_pattern` output with the
    SELECT clause; the result round-trips through
    :func:`~repro.lang.compiler.parse_query_spec`.
    """
    text = render_pattern(pattern)
    if aggregate is None:
        return text
    return f"{aggregate.render()} FROM {text}"
