"""Errors raised by the PERMUTE query language front end."""

from __future__ import annotations

from typing import Optional

__all__ = ["QueryError", "LexError", "ParseError", "CompileError"]


class QueryError(ValueError):
    """Base class for query language errors, carrying source position.

    ``line`` and ``column`` are 1-based; either may be ``None`` when the
    error is not tied to a specific location.
    """

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexError(QueryError):
    """Raised on an unrecognised character or malformed literal."""


class ParseError(QueryError):
    """Raised when the token stream does not match the grammar."""


class CompileError(QueryError):
    """Raised when a syntactically valid query is semantically invalid."""
