"""Compilation of parsed PERMUTE queries into SES patterns.

The compiler performs the semantic checks the parser cannot: duplicate
variable declarations, conditions over undeclared variables, and the
``T`` attribute being compared against non-temporal operands are all
reported with source positions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..agg.spec import Aggregate, AggregateSpec
from ..core.conditions import Attr, Condition, Const
from ..core.pattern import PatternError, SESPattern
from ..core.variables import Variable
from .ast import AttributeNode, LiteralNode, QueryNode
from .errors import CompileError
from .parser import parse

__all__ = ["compile_query", "compile_aggregates", "parse_pattern",
           "parse_query_spec"]


def compile_query(query: QueryNode) -> SESPattern:
    """Compile a parsed query into a :class:`~repro.core.pattern.SESPattern`."""
    declared: Dict[str, Variable] = {}
    sets = []
    for set_node in query.sets:
        names = []
        for var_node in set_node.variables:
            if var_node.name in declared:
                raise CompileError(
                    f"variable {var_node.name!r} declared more than once",
                    var_node.line, var_node.column,
                )
            variable = Variable(var_node.name, is_group=var_node.quantified)
            declared[var_node.name] = variable
            names.append(variable)
        sets.append(names)

    conditions = []
    for cond in query.conditions:
        left = _attr(cond.left, declared)
        if isinstance(cond.right, LiteralNode):
            right = Const(cond.right.value)
        else:
            right = _attr(cond.right, declared)
        conditions.append(Condition(left, cond.op, right))

    try:
        return SESPattern(sets=sets, conditions=conditions,
                          tau=query.duration.in_hours())
    except PatternError as exc:
        raise CompileError(str(exc)) from exc


def _attr(node: AttributeNode, declared: Dict[str, Variable]) -> Attr:
    variable = declared.get(node.variable)
    if variable is None:
        raise CompileError(
            f"condition references undeclared variable {node.variable!r}",
            node.line, node.column,
        )
    return Attr(variable, node.attribute)


def compile_aggregates(query: QueryNode) -> Optional[AggregateSpec]:
    """Compile a query's SELECT clause into an :class:`AggregateSpec`.

    ``None`` when the query has no SELECT clause (plain enumeration).
    Undeclared variables and duplicate output labels are reported as
    :class:`CompileError` with source positions.
    """
    if not query.aggregates:
        return None
    declared = {var_node.name
                for set_node in query.sets
                for var_node in set_node.variables}
    aggregates = []
    seen_labels = set()
    for node in query.aggregates:
        if node.variable is not None and node.variable not in declared:
            raise CompileError(
                f"aggregate references undeclared variable "
                f"{node.variable!r}", node.line, node.column)
        try:
            aggregate = Aggregate(node.func, node.variable, node.attribute,
                                  node.alias)
        except ValueError as exc:
            raise CompileError(str(exc), node.line, node.column) from exc
        if aggregate.label in seen_labels:
            raise CompileError(
                f"duplicate aggregate output label {aggregate.label!r}; "
                f"disambiguate with 'AS name'", node.line, node.column)
        seen_labels.add(aggregate.label)
        aggregates.append(aggregate)
    return AggregateSpec(tuple(aggregates))


def parse_pattern(text: str) -> SESPattern:
    """Parse and compile query text in one step.

    Example::

        pattern = parse_pattern('''
            PATTERN PERMUTE(c, p+, d) THEN b
            WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
              AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
            WITHIN 11 DAYS
        ''')

    An aggregation query's SELECT clause is accepted but ignored here —
    use :func:`parse_query_spec` to get the pattern *and* the aggregate
    spec.
    """
    return compile_query(parse(text))


def parse_query_spec(
        text: str) -> Tuple[SESPattern, Optional[AggregateSpec]]:
    """Parse and compile query text, keeping the SELECT clause.

    Returns ``(pattern, aggregate_spec)``; the spec is ``None`` for a
    plain enumeration query.  This is the entry point the
    :func:`repro.query` façade, the CLI, and the registry use::

        pattern, spec = parse_query_spec(
            "SELECT count(*) FROM PATTERN PERMUTE(a+, b) "
            "WHERE a.L = 'A' AND b.L = 'B' WITHIN 10")
    """
    query = parse(text)
    return compile_query(query), compile_aggregates(query)
