"""Compilation of parsed PERMUTE queries into SES patterns.

The compiler performs the semantic checks the parser cannot: duplicate
variable declarations, conditions over undeclared variables, and the
``T`` attribute being compared against non-temporal operands are all
reported with source positions.
"""

from __future__ import annotations

from typing import Dict

from ..core.conditions import Attr, Condition, Const
from ..core.pattern import PatternError, SESPattern
from ..core.variables import Variable
from .ast import AttributeNode, LiteralNode, QueryNode
from .errors import CompileError
from .parser import parse

__all__ = ["compile_query", "parse_pattern"]


def compile_query(query: QueryNode) -> SESPattern:
    """Compile a parsed query into a :class:`~repro.core.pattern.SESPattern`."""
    declared: Dict[str, Variable] = {}
    sets = []
    for set_node in query.sets:
        names = []
        for var_node in set_node.variables:
            if var_node.name in declared:
                raise CompileError(
                    f"variable {var_node.name!r} declared more than once",
                    var_node.line, var_node.column,
                )
            variable = Variable(var_node.name, is_group=var_node.quantified)
            declared[var_node.name] = variable
            names.append(variable)
        sets.append(names)

    conditions = []
    for cond in query.conditions:
        left = _attr(cond.left, declared)
        if isinstance(cond.right, LiteralNode):
            right = Const(cond.right.value)
        else:
            right = _attr(cond.right, declared)
        conditions.append(Condition(left, cond.op, right))

    try:
        return SESPattern(sets=sets, conditions=conditions,
                          tau=query.duration.in_hours())
    except PatternError as exc:
        raise CompileError(str(exc)) from exc


def _attr(node: AttributeNode, declared: Dict[str, Variable]) -> Attr:
    variable = declared.get(node.variable)
    if variable is None:
        raise CompileError(
            f"condition references undeclared variable {node.variable!r}",
            node.line, node.column,
        )
    return Attr(variable, node.attribute)


def parse_pattern(text: str) -> SESPattern:
    """Parse and compile query text in one step.

    Example::

        pattern = parse_pattern('''
            PATTERN PERMUTE(c, p+, d) THEN b
            WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
              AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
            WITHIN 11 DAYS
        ''')
    """
    return compile_query(parse(text))
