"""Recursive-descent parser for the PERMUTE query language.

Grammar (keywords case-insensitive)::

    query      := ["SELECT" aggregates "FROM"]
                  "PATTERN" sets ["WHERE" conditions] "WITHIN" duration
    aggregates := aggregate ("," aggregate)*
    aggregate  := FUNC "(" ("*" | IDENT "." IDENT) ")" ["AS" IDENT]
    FUNC       := "count" | "sum" | "min" | "max" | "avg"
    sets       := set ("THEN" set)*
    set        := "PERMUTE" "(" variables ")" | variable
    variables  := variable ("," variable)*
    variable   := IDENT ["+"]
    conditions := condition ("AND" condition)*
    condition  := operand OPERATOR operand
    operand    := IDENT ["+"] "." IDENT | NUMBER | STRING
    duration   := NUMBER [unit]
    unit       := "HOURS" | "HOUR" | "DAYS" | "DAY" | "MINUTES" | ...

Only ``count`` admits ``*``.  Aggregate function names are ordinary
identifiers (not reserved), so they stay usable as variable names.
"""

from __future__ import annotations

from typing import List, Union

from .ast import (AggregateNode, AttributeNode, ConditionNode, DurationNode,
                  LiteralNode, QueryNode, SetNode, VariableNode)
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["parse"]

_AGGREGATE_FUNCS = frozenset({"count", "sum", "min", "max", "avg"})

_UNIT_KEYWORDS = frozenset({
    "HOURS", "HOUR", "DAYS", "DAY", "MINUTES", "MINUTE", "SECONDS", "SECOND",
})


class _Parser:
    """Token-stream cursor with the grammar's productions."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def expect(self, type_: TokenType, value=None) -> Token:
        token = self.current
        if not token.matches(type_, value):
            wanted = value if value is not None else type_.value
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}",
                token.line, token.column,
            )
        return self.advance()

    def accept(self, type_: TokenType, value=None) -> bool:
        if self.current.matches(type_, value):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Productions
    # ------------------------------------------------------------------
    def query(self) -> QueryNode:
        aggregates = None
        if self.accept(TokenType.KEYWORD, "SELECT"):
            aggregates = [self.aggregate()]
            while self.accept(TokenType.COMMA):
                aggregates.append(self.aggregate())
            self.expect(TokenType.KEYWORD, "FROM")
        self.expect(TokenType.KEYWORD, "PATTERN")
        sets = [self.set_expr()]
        while self.accept(TokenType.KEYWORD, "THEN"):
            sets.append(self.set_expr())
        conditions: List[ConditionNode] = []
        if self.accept(TokenType.KEYWORD, "WHERE"):
            conditions.append(self.condition())
            while self.accept(TokenType.KEYWORD, "AND"):
                conditions.append(self.condition())
        self.expect(TokenType.KEYWORD, "WITHIN")
        duration = self.duration()
        eof = self.current
        if eof.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input {eof.value!r}",
                             eof.line, eof.column)
        return QueryNode(sets, conditions, duration, aggregates=aggregates)

    def aggregate(self) -> AggregateNode:
        token = self.expect(TokenType.IDENT)
        func = token.value.lower()
        if func not in _AGGREGATE_FUNCS:
            raise ParseError(
                f"unknown aggregate function {token.value!r}; expected one "
                f"of {sorted(_AGGREGATE_FUNCS)}", token.line, token.column)
        self.expect(TokenType.LPAREN)
        variable = attribute = None
        if self.current.type is TokenType.STAR:
            star = self.advance()
            if func != "count":
                raise ParseError(f"{func}(*) is not defined; only count(*) "
                                 f"may aggregate without an attribute",
                                 star.line, star.column)
        else:
            var_token = self.expect(TokenType.IDENT)
            self.accept(TokenType.PLUS)  # optional v+ spelling
            self.expect(TokenType.DOT)
            attr_token = self.expect(TokenType.IDENT)
            variable, attribute = var_token.value, attr_token.value
        self.expect(TokenType.RPAREN)
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect(TokenType.IDENT).value
        return AggregateNode(func, variable, attribute, alias,
                             token.line, token.column)

    def set_expr(self) -> SetNode:
        if self.accept(TokenType.KEYWORD, "PERMUTE"):
            self.expect(TokenType.LPAREN)
            variables = [self.variable()]
            while self.accept(TokenType.COMMA):
                variables.append(self.variable())
            self.expect(TokenType.RPAREN)
            return SetNode(variables, explicit_permute=True)
        return SetNode([self.variable()], explicit_permute=False)

    def variable(self) -> VariableNode:
        token = self.expect(TokenType.IDENT)
        quantified = self.accept(TokenType.PLUS)
        return VariableNode(token.value, quantified, token.line, token.column)

    def condition(self) -> ConditionNode:
        left = self.operand()
        if not isinstance(left, AttributeNode):
            raise ParseError("left side of a condition must be v.A",
                             left.line, left.column)
        op_token = self.expect(TokenType.OPERATOR)
        right = self.operand()
        return ConditionNode(left, op_token.value, right,
                             op_token.line, op_token.column)

    def operand(self) -> Union[AttributeNode, LiteralNode]:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            self.accept(TokenType.PLUS)  # optional v+ spelling
            self.expect(TokenType.DOT)
            attribute = self.expect(TokenType.IDENT)
            return AttributeNode(token.value, attribute.value,
                                 token.line, token.column)
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            self.advance()
            return LiteralNode(token.value, token.line, token.column)
        raise ParseError(f"expected v.A or a literal, found {token.value!r}",
                         token.line, token.column)

    def duration(self) -> DurationNode:
        token = self.expect(TokenType.NUMBER)
        unit = None
        if (self.current.type is TokenType.KEYWORD
                and self.current.value in _UNIT_KEYWORDS):
            unit = self.advance().value
        return DurationNode(token.value, unit, token.line, token.column)


def parse(text: str) -> QueryNode:
    """Parse query text into a :class:`~repro.lang.ast.QueryNode`."""
    return _Parser(tokenize(text)).query()
