"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``match``
    Run a PERMUTE query over a CSV event relation and print the matches.
    With a ``SELECT`` aggregation clause (``SELECT count(*), avg(v.a)
    FROM PATTERN ...``) matches are folded incrementally instead of
    materialised and the finalised aggregates are printed.
    ``--profile`` adds a per-stage timing table (filter / consume /
    select), an Ω-population sparkline, and — with ``--metrics-out`` — a
    JSON-lines metrics snapshot (see ``docs/observability.md``).
    ``--listen HOST:PORT`` serves live ``/metrics`` + ``/healthz`` while
    the run lasts; ``--trace-out`` writes a Perfetto/Chrome trace.
``serve``
    Replay a relation through the continuous matcher and keep serving
    the observability endpoint until stopped (``POST /quitquitquit``,
    SIGTERM, or Ctrl-C).  ``SIGUSR2`` dumps the flight recorder.
    Single-worker serves run on a :class:`~repro.registry.PatternRegistry`
    — further patterns can be registered and deregistered hot over HTTP
    (``/patterns``) or via the ``registry`` subcommand, all sharing one
    admission pass (see ``docs/registry.md``).  ``--supervise`` restarts
    dead shard workers from their checkpoints and ``--dead-letter``
    quarantines poison events instead of failing (see
    ``docs/resilience.md``); ``--max-instances``/``--max-buffer-mb``
    put resource-guard ceilings on executor state.  ``--subscribe``
    additionally serves the push endpoint — backpressured event ingest
    (framed TCP + ``POST /ingest``) and resumable SSE/WebSocket match
    subscriptions with slow-consumer policies and graceful drain
    (``--delivery-wal`` makes resume survive restarts; see
    ``docs/serving.md``).
``tail``
    Follow a push endpoint's match stream: one JSON line per delivered
    event, resumable via ``--resume``/``--resume-file`` (exactly-once
    across client and server restarts), with ``--patterns``/
    ``--tenants`` filters and a ``--out`` transcript.
``push``
    Send a CSV relation to a push endpoint over the framed protocol
    (or ``--http``), honouring 429/``slow_down`` backpressure;
    ``--quit`` asks the server to drain afterwards.
``registry``
    Client for a running serve process: ``registry add --server URL
    --query ...`` registers a pattern hot, ``registry rm ID`` removes
    it, ``registry list`` shows what is registered (with predicate-
    sharing statistics).
``generate``
    Write a synthetic chemotherapy relation to CSV.
``explain``
    EXPLAIN / EXPLAIN ANALYZE for a query: automaton topology, prefilter
    predicate vectors, complexity bounds, plan-cache provenance and
    persisted statistics (``--format text|json|dot``).  With
    ``--analyze`` (requires ``--data``) the query runs over a counting
    automaton and the report carries observed per-transition /
    per-condition counters; the observed selectivities feed the
    statistics store (see ``docs/explain.md``).
``analyze``
    Complexity report (Theorems 1–3) for a query and a data set or an
    explicit window size.
``lint``
    Static diagnostics for a query (unsatisfiable variables, open join
    graphs, heavy complexity classes).
``stats``
    Render a saved metrics snapshot (table, Prometheus text, or JSON).
``trace``
    Run a query with lineage sampling on and render every delivered
    match's provenance — contributing event ids, transition path,
    per-stage latency breakdown, delivering site
    (``--format text|json|dot``; see ``docs/tracing.md``).
    ``--otel-out`` additionally writes the records as OTLP/JSON spans.

Event CSVs use the typed format of :mod:`repro.storage.csvio` (also what
``generate`` writes).  Queries may be given inline with ``--query`` or
from a file with ``--query-file``.  ``--verbose``/``--quiet`` (before
the subcommand) configure the ``repro.*`` logging hierarchy.
"""

from __future__ import annotations

import argparse
import logging
import re
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from .automaton.metrics import sparkline
from .bench.report import format_table
from .complexity import analyze
from .core.diagnostics import diagnose
from .core.rewrite import close_equality_joins
from .data.chemo import generate_chemo
from .lang import QueryError, parse_query_spec
from .plan.cache import compile as compile_plan
from .resilience.guards import ResourceExhausted
from .obs import (FlightRecorder, LineageRecorder, ObsServer, Observability,
                  SpanTracer, TraceConfig, configure_logging,
                  install_flight_signal_handler, live_snapshot, parse_listen,
                  read_jsonl, snapshot_quantile, to_jsonl, to_prometheus,
                  write_chrome_trace, write_jsonl, write_otel_spans)
from .storage.csvio import load_relation, save_relation

__all__ = ["main", "build_parser"]

logger = logging.getLogger(__name__)

#: Ω-history samples retained under ``--profile`` (uniformly downsampled
#: beyond; keeps long runs at bounded memory).
PROFILE_HISTORY_SAMPLES = 4096


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequenced event set pattern matching (EDBT 2011).",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log at INFO (-v) or DEBUG (-vv)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="log errors only")
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser(
        "match", help="run a PERMUTE query over a CSV event relation")
    _add_query_arguments(p_match)
    p_match.add_argument("--data", required=True, type=Path,
                         help="event relation CSV (typed format)")
    p_match.add_argument("--no-filter", action="store_true",
                         help="disable the Section 4.5 event pre-filter")
    p_match.add_argument("--selection", default="paper",
                         choices=["paper", "all-starts", "accepted"],
                         help="result selection policy (default: paper)")
    p_match.add_argument("--mode", default="greedy",
                         choices=["greedy", "exhaustive", "contiguous"],
                         help="consumption mode (default: greedy)")
    p_match.add_argument("--workers", type=int, default=1, metavar="N",
                         help="evaluate partitions on a pool of N worker "
                              "processes (requires a pattern that "
                              "equi-joins all variables on one attribute; "
                              "see docs/parallel.md)")
    p_match.add_argument("--stats", action="store_true",
                         help="also print execution statistics")
    p_match.add_argument("--profile", action="store_true",
                         help="print a per-stage timing table and an "
                              "Ω-population sparkline")
    p_match.add_argument("--metrics-out", type=Path, metavar="PATH",
                         help="write a JSON-lines metrics snapshot "
                              "(implies instrumentation; render with "
                              "'repro stats')")
    p_match.add_argument("--listen", metavar="HOST:PORT",
                         help="serve /metrics, /varz, /healthz and "
                              "/debug/flight over HTTP while the run "
                              "lasts (implies instrumentation; port 0 "
                              "picks an ephemeral port)")
    p_match.add_argument("--trace-out", type=Path, metavar="PATH",
                         help="write a Perfetto/Chrome trace of the run "
                              "(open in ui.perfetto.dev; requires "
                              "--workers 1)")
    p_match.add_argument("--dead-letter", type=Path, metavar="PATH",
                         help="run supervised (sharded streaming with "
                              "restart/replay; see docs/resilience.md) "
                              "and write quarantined poison events to "
                              "PATH as JSON lines")
    _add_guard_arguments(p_match)

    p_serve = sub.add_parser(
        "serve", help="replay a relation through the streaming matcher "
                      "and serve live metrics over HTTP until stopped")
    _add_query_arguments(p_serve)
    p_serve.add_argument("--data", required=True, type=Path,
                         help="event relation CSV (typed format)")
    p_serve.add_argument("--listen", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="bind address of the observability "
                              "endpoint (default: 127.0.0.1 on an "
                              "ephemeral port, printed at startup)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="shard the stream over N worker processes "
                              "(requires a partitionable pattern; "
                              "/healthz then reports per-shard liveness)")
    p_serve.add_argument("--no-filter", action="store_true",
                         help="disable the Section 4.5 event pre-filter")
    p_serve.add_argument("--flight-dump", type=Path, metavar="PATH",
                         help="where SIGUSR2 (and a crash) dumps the "
                              "flight recorder (default: stderr)")
    p_serve.add_argument("--once", action="store_true",
                         help="exit right after the replay instead of "
                              "serving until stopped")
    p_serve.add_argument("--supervise", action="store_true",
                         help="restart dead shard workers from their "
                              "checkpoints instead of failing the "
                              "stream (implies sharded execution; "
                              "/healthz reports 'degraded' while "
                              "running on the restart budget)")
    p_serve.add_argument("--restart-budget", type=int, default=5,
                         metavar="N",
                         help="restarts allowed per shard before the "
                              "stream fails hard (default: 5)")
    p_serve.add_argument("--dead-letter", type=Path, metavar="PATH",
                         help="write quarantined poison events to PATH "
                              "as JSON lines on shutdown (implies "
                              "--supervise)")
    p_serve.add_argument("--subscribe", nargs="?", const="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="also serve the push endpoint: framed/HTTP "
                              "event ingest with backpressure plus "
                              "resumable SSE (/subscribe) and WebSocket "
                              "(/ws) match subscriptions (default bind: "
                              "127.0.0.1 on an ephemeral port, printed "
                              "at startup; see docs/serving.md)")
    p_serve.add_argument("--delivery-wal", type=Path, metavar="PATH",
                         help="durable delivery log backing subscriber "
                              "resume across server restarts (with "
                              "--subscribe)")
    p_serve.add_argument("--replay-ring", type=int, default=1024,
                         metavar="N",
                         help="in-memory replay ring capacity for "
                              "subscriber resume (default: 1024)")
    p_serve.add_argument("--sub-queue", type=int, default=256, metavar="N",
                         help="default per-subscriber delivery queue "
                              "bound (default: 256)")
    p_serve.add_argument("--sub-policy", default="disconnect",
                         choices=["disconnect", "shed", "degrade"],
                         help="default slow-consumer policy when a "
                              "subscriber queue overflows (default: "
                              "disconnect; subscribers may override per "
                              "connection)")
    p_serve.add_argument("--ingest-queue", type=int, default=64,
                         metavar="N",
                         help="bound on queued unprocessed ingest "
                              "batches; beyond it producers get "
                              "429/slow_down (default: 64)")
    p_serve.add_argument("--heartbeat", type=float, default=15.0,
                         metavar="SEC",
                         help="subscriber keep-alive interval "
                              "(default: 15)")
    p_serve.add_argument("--idle-timeout", type=float, default=300.0,
                         metavar="SEC",
                         help="disconnect a subscriber whose connection "
                              "stalls writes for this long "
                              "(default: 300)")
    p_serve.add_argument("--drain-grace", type=float, default=5.0,
                         metavar="SEC",
                         help="graceful-drain budget for flushing "
                              "in-flight matches to subscribers "
                              "(default: 5)")
    _add_guard_arguments(p_serve)

    p_tail = sub.add_parser(
        "tail", help="follow the match stream of a 'serve --subscribe' "
                     "process (resumable; exactly-once across "
                     "reconnects)")
    p_tail.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="push endpoint address (printed at serve "
                             "startup)")
    p_tail.add_argument("--resume", metavar="CURSOR",
                        help="resume after this cursor; 'live' starts "
                             "at the stream tail (default)")
    p_tail.add_argument("--resume-file", type=Path, metavar="PATH",
                        help="persist the last received cursor to PATH "
                             "and resume from it on the next run")
    p_tail.add_argument("--out", type=Path, metavar="PATH",
                        help="append every received event to PATH as "
                             "JSON lines (the subscriber transcript)")
    p_tail.add_argument("--max", type=int, metavar="N",
                        help="exit after N delivered matches")
    p_tail.add_argument("--patterns", metavar="IDS",
                        help="comma-separated pattern-id filter")
    p_tail.add_argument("--tenants", metavar="NAMES",
                        help="comma-separated tenant filter")
    p_tail.add_argument("--id", dest="subscriber_id", metavar="NAME",
                        help="stable subscriber id (shows up in lineage "
                             "push hops and /statz)")
    p_tail.add_argument("--policy",
                        choices=["disconnect", "shed", "degrade"],
                        help="slow-consumer policy for this subscriber")
    p_tail.add_argument("--queue", type=int, metavar="N",
                        help="delivery queue bound for this subscriber")
    p_tail.add_argument("--ws", action="store_true",
                        help="use a single WebSocket connection instead "
                             "of resumable SSE")
    p_tail.add_argument("--follow", action="store_true",
                        help="keep reconnecting after a graceful drain "
                             "(ride out server restarts)")
    p_tail.add_argument("--reconnect-delay", type=float, default=0.2,
                        metavar="SEC")
    p_tail.add_argument("--max-reconnects", type=int, default=100,
                        metavar="N")

    p_push = sub.add_parser(
        "push", help="send a CSV relation to a 'serve --subscribe' "
                     "ingest endpoint (honours backpressure)")
    p_push.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="push endpoint address")
    p_push.add_argument("--data", required=True, type=Path,
                        help="event relation CSV (typed format)")
    p_push.add_argument("--batch-size", type=int, default=256, metavar="N")
    p_push.add_argument("--http", action="store_true",
                        help="use POST /ingest instead of the framed "
                             "TCP protocol")
    p_push.add_argument("--quit", action="store_true",
                        help="ask the server to drain gracefully after "
                             "the push")

    p_registry = sub.add_parser(
        "registry", help="register/deregister/list patterns on a running "
                         "serve process (hot, over its /patterns route)")
    rsub = p_registry.add_subparsers(dest="registry_command", required=True)
    r_add = rsub.add_parser("add", help="register a pattern")
    _add_query_arguments(r_add)
    r_add.add_argument("--server", required=True, metavar="URL",
                       help="base URL of the serve process (printed at "
                            "its startup)")
    r_add.add_argument("--id", dest="pattern_id", metavar="ID",
                       help="pattern id (default: assigned p<N>)")
    r_add.add_argument("--tenant", default="default",
                       help="owning tenant (default: 'default')")
    r_rm = rsub.add_parser("rm", help="deregister a pattern")
    r_rm.add_argument("pattern_id", metavar="ID")
    r_rm.add_argument("--server", required=True, metavar="URL")
    r_list = rsub.add_parser("list", help="list registered patterns")
    r_list.add_argument("--server", required=True, metavar="URL")

    p_generate = sub.add_parser(
        "generate", help="write a synthetic chemotherapy relation to CSV")
    p_generate.add_argument("--out", required=True, type=Path,
                            help="output CSV path")
    p_generate.add_argument("--patients", type=int, default=12)
    p_generate.add_argument("--cycles", type=int, default=4)
    p_generate.add_argument("--seed", type=int, default=7)
    p_generate.add_argument("--labs-per-cycle", type=int, default=30,
                            help="background lab events per cycle")
    p_generate.add_argument("--duplicate", type=int, default=1,
                            metavar="FACTOR",
                            help="repeat each event FACTOR times (D2-D5)")

    p_explain = sub.add_parser(
        "explain", help="EXPLAIN / EXPLAIN ANALYZE a query (automaton, "
                        "prefilters, bounds, cache provenance, observed "
                        "counters)")
    _add_query_arguments(p_explain)
    p_explain.add_argument("--data", type=Path, metavar="CSV",
                           help="event relation CSV; enables the "
                                "complexity section and is required by "
                                "--analyze")
    p_explain.add_argument("--analyze", action="store_true",
                           help="run the query over the data with "
                                "per-transition counters (EXPLAIN "
                                "ANALYZE; feeds the statistics store)")
    p_explain.add_argument("--format", default="text",
                           choices=["text", "json", "dot"],
                           help="output format (default: text); dot "
                                "edges are hotness-annotated after "
                                "--analyze")
    p_explain.add_argument("--dot", action="store_true",
                           help="shorthand for --format dot")
    p_explain.add_argument("--no-filter", action="store_true",
                           help="disable the pre-filter in the analyzed "
                                "run")
    p_explain.add_argument("--out", type=Path, metavar="PATH",
                           help="write the report to PATH instead of "
                                "stdout")

    p_lint = sub.add_parser(
        "lint", help="static diagnostics for a query")
    _add_query_arguments(p_lint)
    p_lint.add_argument("--fix-joins", action="store_true",
                        help="print the query with equality joins "
                             "transitively closed")

    p_analyze = sub.add_parser(
        "analyze", help="complexity report (Theorems 1-3) for a query")
    _add_query_arguments(p_analyze)
    group = p_analyze.add_mutually_exclusive_group(required=True)
    group.add_argument("--data", type=Path,
                       help="compute the window size W from this CSV")
    group.add_argument("--window", type=int,
                       help="use this window size W directly")

    p_trace = sub.add_parser(
        "trace", help="run a query with lineage sampling on and render "
                      "match provenance (event-to-delivery causal "
                      "traces with per-stage latency)")
    _add_query_arguments(p_trace)
    p_trace.add_argument("--data", required=True, type=Path,
                         help="event relation CSV (typed format)")
    p_trace.add_argument("--sample", type=float, default=1.0,
                         metavar="RATE",
                         help="trace sample rate in [0, 1] (default: 1.0 "
                              "— trace every event)")
    p_trace.add_argument("--slow-ms", type=float, default=100.0,
                         metavar="MS",
                         help="tail-sampling threshold: matches slower "
                              "end-to-end are always kept (default: 100)")
    p_trace.add_argument("--workers", type=int, default=1, metavar="N",
                         help="evaluate partitions on a pool of N worker "
                              "processes (lineage reconciles across the "
                              "pool; see docs/tracing.md)")
    p_trace.add_argument("--format", default="text",
                         choices=["text", "json", "dot"],
                         help="output format (default: text)")
    p_trace.add_argument("--otel-out", type=Path, metavar="PATH",
                         help="also write the lineage records as "
                              "OTLP/JSON spans (POST to a collector's "
                              "/v1/traces)")
    p_trace.add_argument("--out", type=Path, metavar="PATH",
                         help="write the rendered report to PATH instead "
                              "of stdout")

    p_stats = sub.add_parser(
        "stats", help="render a saved metrics snapshot")
    p_stats.add_argument("snapshot", type=Path,
                         help="JSON-lines snapshot (from 'repro match "
                              "--metrics-out' or the benchmarks)")
    p_stats.add_argument("--format", default="table",
                         choices=["table", "prom", "json"],
                         help="output format (default: table)")

    return parser


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="PERMUTE query text")
    group.add_argument("--query-file", type=Path,
                       help="file containing the PERMUTE query")


def _add_guard_arguments(parser: argparse.ArgumentParser) -> None:
    """Resource-guard ceilings (see docs/resilience.md)."""
    parser.add_argument("--max-instances", type=int, metavar="N",
                        help="ceiling on live automaton instances per "
                             "executor (resource guard)")
    parser.add_argument("--max-buffer-mb", type=float, metavar="MB",
                        help="ceiling on estimated match-buffer memory "
                             "per executor (resource guard)")
    parser.add_argument("--guard-policy", default="raise",
                        choices=["raise", "shed", "degrade"],
                        help="what a guard breach does: raise a typed "
                             "error, shed oldest instances, or degrade "
                             "group arity (default: raise)")


def _guard_from_args(args: argparse.Namespace):
    """A :class:`~repro.resilience.guards.GuardConfig` from the CLI
    guard flags, or ``None`` when no ceiling was requested."""
    if args.max_instances is None and args.max_buffer_mb is None:
        return None
    from .resilience import GuardConfig
    return GuardConfig(
        max_instances=args.max_instances,
        max_buffer_bytes=(None if args.max_buffer_mb is None
                          else int(args.max_buffer_mb * 1024 * 1024)),
        policy=args.guard_policy)


def _load_query(args: argparse.Namespace):
    """The query text as ``(pattern, aggregate_spec_or_None)``."""
    text = args.query
    if text is None:
        text = args.query_file.read_text()
    return parse_query_spec(text)


def _load_pattern(args: argparse.Namespace):
    # Commands that analyse the pattern itself (explain/analyze/lint)
    # accept aggregation queries too: the SELECT clause changes what a
    # run returns, not the automaton being analysed.
    pattern, _aggregate = _load_query(args)
    return pattern


def _cmd_match(args: argparse.Namespace) -> int:
    pattern, aggregate = _load_query(args)
    relation = load_relation(args.data)
    tracing = args.trace_out is not None
    profiling = (args.profile or args.metrics_out is not None
                 or args.listen is not None or tracing)
    if args.workers < 1:
        raise ValueError("--workers must be >= 1")
    if tracing and args.workers != 1:
        raise ValueError("--trace-out requires --workers 1 (worker "
                         "processes only ship aggregated spans back)")
    if tracing and args.dead_letter is not None:
        raise ValueError("--trace-out and --dead-letter are mutually "
                         "exclusive (supervised runs execute in shard "
                         "processes)")
    guard = _guard_from_args(args)
    if (guard is not None and args.workers != 1
            and args.dead_letter is None):
        raise ValueError("guard ceilings require --workers 1 or a "
                         "supervised run (--dead-letter)")
    obs = None
    if profiling:
        # Individual span records are only needed for the trace export;
        # aggregation alone keeps --profile and --listen cheap.
        obs = Observability(spans=SpanTracer(keep_records=tracing))
    flight = (FlightRecorder() if (tracing or args.listen is not None)
              and args.workers == 1 else None)
    plan = compile_plan(pattern, aggregate=aggregate, observability=obs)
    server = None
    if args.listen is not None:
        from .explain import explain
        host, port = parse_listen(args.listen)
        server = ObsServer(host=host, port=port,
                           snapshot=lambda: live_snapshot(obs),
                           flight=flight,
                           explain=lambda: explain(plan).to_dict(),
                           lineage=lambda: obs.lineage).start()
        print(f"serving observability on {server.url}")
    try:
        if args.dead_letter is not None:
            result = _run_supervised_match(plan, relation, args, obs, guard)
        elif args.workers == 1 and (profiling or guard is not None):
            executor = plan.executor(
                use_filter=not args.no_filter, selection=args.selection,
                consume=args.mode, observability=obs, flight=flight,
                guard=guard, record_history=profiling,
                history_max_samples=PROFILE_HISTORY_SAMPLES)
            result = executor.run(relation)
        else:
            result = plan.match(relation,
                                use_filter=not args.no_filter,
                                selection=args.selection,
                                consume=args.mode,
                                workers=args.workers,
                                observability=obs)
    finally:
        if server is not None:
            server.stop()
    series = getattr(result, "aggregates", None)
    if series is not None:
        print(f"{series.matches_folded} match(es) folded over "
              f"{len(relation)} events (none materialised)")
        for label, value in series:
            print(f"  {label} = {value}")
    else:
        print(f"{len(result)} match(es) in {len(relation)} events")
        for i, substitution in enumerate(result, start=1):
            bindings = ", ".join(f"{variable!r}/{event.eid or event.ts}"
                                 for variable, event in substitution)
            print(f"  {i}. {{{bindings}}}  "
                  f"[T={substitution.min_ts()}..{substitution.max_ts()}]")
    if args.stats:
        stats = result.stats
        print(f"events read:      {stats.events_read}")
        print(f"events filtered:  {stats.events_filtered}")
        print(f"max instances:    {stats.max_simultaneous_instances}")
        print(f"transitions:      {stats.transitions_fired}")
        print(f"accepted buffers: {stats.accepted_buffers}")
    if args.profile:
        _print_profile(obs, result.stats)
    if args.metrics_out is not None:
        path = write_jsonl(obs.snapshot(), args.metrics_out)
        print(f"metrics snapshot: {path}")
    if tracing:
        write_chrome_trace(args.trace_out, spans=obs.spans, flight=flight,
                           lineage=obs.lineage)
        print(f"chrome trace: {args.trace_out} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _run_supervised_match(plan, relation, args: argparse.Namespace,
                          obs, guard):
    """``match --dead-letter``: a supervised sharded streaming run.

    Events are replayed through a
    :class:`~repro.parallel.sharded.ShardedStreamMatcher` under a
    :class:`~repro.resilience.supervisor.Supervisor` — poison events go
    to the dead-letter file instead of failing the run.  Result
    selection follows the streaming semantics (accepted buffers with
    overlap suppression), not ``--selection``.
    """
    from .automaton.executor import MatchResult
    from .parallel.sharded import ShardedStreamMatcher
    from .resilience import DeadLetterQueue, Supervisor
    dead_letter = DeadLetterQueue()
    supervisor = Supervisor(dead_letter=dead_letter)
    matcher = ShardedStreamMatcher(
        plan, workers=args.workers, use_filter=not args.no_filter,
        observability=obs, supervisor=supervisor, guard=guard)
    try:
        with matcher:
            matcher.push_many(relation)
    finally:
        # Always write the file: "exists and empty" is the scriptable
        # signature of a clean run (CI's chaos smoke relies on it).
        dead_letter.write_jsonl(args.dead_letter)
        if len(dead_letter):
            print(f"{len(dead_letter)} quarantined event(s) written to "
                  f"{args.dead_letter}")
        if supervisor.restarts_total:
            print(f"recovered from {supervisor.restarts_total} shard "
                  f"crash(es)")
    matches = matcher.matches
    aggregates = (matcher.aggregates() if plan.aggregate is not None
                  else None)
    return MatchResult(matches=matches, accepted=list(matches),
                       aggregates=aggregates)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay ``--data`` through a streaming matcher, then serve until
    stopped (POST /quitquitquit, SIGTERM, Ctrl-C, or ``--once``)."""
    pattern, aggregate = _load_query(args)
    relation = load_relation(args.data)
    if args.workers < 1:
        raise ValueError("--workers must be >= 1")
    if args.restart_budget < 0:
        raise ValueError("--restart-budget must be >= 0")
    guard = _guard_from_args(args)
    obs = Observability()
    plan = compile_plan(pattern, aggregate=aggregate, observability=obs)
    stop = threading.Event()
    supervising = args.supervise or args.dead_letter is not None
    sharded = args.workers > 1 or supervising
    flight = None if sharded else FlightRecorder()
    supervisor = None
    dead_letter = None
    patterns = None

    if sharded:
        from .parallel.sharded import ShardedStreamMatcher
        if supervising:
            from .resilience import (DeadLetterQueue, RestartPolicy,
                                     Supervisor)
            dead_letter = DeadLetterQueue()
            supervisor = Supervisor(
                restart=RestartPolicy(max_restarts=args.restart_budget),
                dead_letter=dead_letter)
        matcher = ShardedStreamMatcher(plan, workers=args.workers,
                                       use_filter=not args.no_filter,
                                       observability=obs,
                                       supervisor=supervisor, guard=guard)

        def health():
            # "degraded" (restart budget in use, guards shedding) still
            # answers 200 — the stream is alive; only "failed" is a 503.
            report = matcher.health()
            return report["status"] != "failed", report
    else:
        # Single-worker serves run on a PatternRegistry: the replayed
        # query is the first registered pattern, and further patterns
        # can be added/removed hot over /patterns while the process
        # serves (sharded serves keep the fixed single-pattern path —
        # hot registration is not supported there).
        from .registry import PatternRegistry, RegistryHTTPAdapter, TenantQuota
        default_quota = None if guard is None else TenantQuota(guard=guard)
        matcher = PatternRegistry(use_filter=not args.no_filter,
                                  observability=obs, flight=flight,
                                  default_quota=default_quota)
        matcher.register(plan)
        patterns = RegistryHTTPAdapter(matcher)

        def health():
            return True, {"status": "ok", "workers": 1,
                          "patterns": len(matcher),
                          "active_instances": matcher.active_instances,
                          "matches": len(matcher.matches)}

    # --subscribe: the push front-end (ingest + subscriptions) wraps the
    # matcher; every reported match is published to the hub, and the
    # end-of-stream flush happens inside the push server's drain so
    # subscribers see the final matches before their terminal notice.
    push = None
    hub = None
    matcher_closed = []

    def close_matcher() -> None:
        if not matcher_closed:
            matcher_closed.append(True)
            matcher.close()

    if args.subscribe is not None:
        from .net import PushServer, SubscriptionHub
        wal = None
        if args.delivery_wal is not None:
            from .resilience import DeliveryLog
            wal = DeliveryLog(args.delivery_wal)
        hub = SubscriptionHub(ring_size=args.replay_ring, wal=wal,
                              observability=obs,
                              default_queue=args.sub_queue,
                              default_policy=args.sub_policy,
                              heartbeat_seconds=args.heartbeat,
                              idle_timeout_seconds=args.idle_timeout)
        if sharded:
            matcher.on_match(lambda match: hub.publish(match))
        else:
            matcher.on_match(lambda pid, match: hub.publish(
                match, pattern_id=pid, tenant=matcher.tenant_of(pid)))
        push_host, push_port = parse_listen(args.subscribe)
        push = PushServer(hub, submit=matcher.push_many,
                          flush=close_matcher,
                          host=push_host, port=push_port,
                          ingest_queue=args.ingest_queue,
                          observability=obs, health=health,
                          on_quit=stop.set)

    from .explain import explain
    restore_signals = _install_serve_signal_handlers(stop, flight,
                                                     args.flight_dump)
    server = ObsServer(*parse_listen(args.listen),
                       snapshot=lambda: live_snapshot(obs),
                       health=health, flight=flight,
                       explain=lambda: explain(plan).to_dict(),
                       patterns=patterns,
                       lineage=lambda: obs.lineage,
                       on_quit=stop.set)
    try:
        server.start()
        print(f"serving observability on {server.url}", flush=True)
        if push is not None:
            push.start()
            print(f"serving push endpoint on {push.url}", flush=True)
            # Replay through the same bounded ingest queue remote
            # producers use: one worker owns every matcher call, so
            # concurrent 'repro push' batches interleave safely.
            push.submit_events(relation)
            if sharded:
                push.submit_call(matcher.flush)
            else:
                push.submit_call(matcher.publish_stats)
        else:
            matcher.push_many(relation)
            if sharded:
                matcher.flush()
            else:
                matcher.publish_stats()
        print(f"replayed {len(relation)} events, "
              f"{len(matcher.matches)} match(es) so far", flush=True)
        if not args.once:
            while not stop.wait(0.25):
                pass
        if push is not None:
            push.shutdown(grace=args.drain_grace)
        close_matcher()
    except KeyboardInterrupt:
        if push is not None:
            push.shutdown(grace=args.drain_grace)
        close_matcher()
    except Exception as exc:
        dump = getattr(exc, "flight_dump", None)
        if dump is None and flight is not None:
            dump = flight.dump()
        if dump is not None and args.flight_dump is not None:
            import json as _json
            args.flight_dump.write_text(
                _json.dumps(dump, indent=2, default=str) + "\n")
            print(f"flight dump: {args.flight_dump}", file=sys.stderr)
        raise
    finally:
        if push is not None:
            push.shutdown(grace=args.drain_grace)  # idempotent
        server.stop()
        restore_signals()
        if args.dead_letter is not None and dead_letter is not None:
            dead_letter.write_jsonl(args.dead_letter)
            if len(dead_letter):
                print(f"{len(dead_letter)} quarantined event(s) written "
                      f"to {args.dead_letter}", file=sys.stderr)
    if supervisor is not None and supervisor.restarts_total:
        print(f"recovered from {supervisor.restarts_total} shard crash(es)")
    print(f"done: {len(matcher.matches)} match(es) reported")
    return 0


def _install_serve_signal_handlers(stop: threading.Event, flight,
                                   dump_path):
    """SIGTERM stops the serve loop; SIGUSR2 dumps the flight recorder.

    Returns a zero-argument callable restoring the previous handlers —
    serve must not leak its handlers into the host process (a child
    forked afterwards would inherit a SIGTERM handler pointing at a
    dead serve loop and become unkillable by ``terminate()``).
    ``signal.signal`` is main-thread-only, so this is a no-op when the
    CLI runs on a worker thread (as the tests do)."""
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = [(signal.SIGTERM, signal.getsignal(signal.SIGTERM))]
    signal.signal(signal.SIGTERM, lambda signo, frame: stop.set())
    if flight is not None:
        sigusr2 = getattr(signal, "SIGUSR2", None)
        if sigusr2 is not None:
            previous.append((sigusr2, signal.getsignal(sigusr2)))
        install_flight_signal_handler(flight, path=dump_path)

    def restore() -> None:
        for signum, handler in previous:
            signal.signal(signum, handler)

    return restore


def _print_profile(obs: Observability, stats) -> None:
    """The ``--profile`` report: stage timings and the Ω timeline."""
    print()
    print(format_table(
        ["stage", "calls", "total s", "self s", "share"],
        obs.stage_rows(),
        title="per-stage timing"))
    latency_rows = _quantile_rows(obs)
    if latency_rows:
        print()
        print(format_table(["latency", "p50", "p95", "p99", "count"],
                           latency_rows, title="latency quantiles"))
    worker_rows = _worker_rows(obs)
    if worker_rows:
        print()
        print(format_table(["worker", "events"], worker_rows,
                           title="per-worker events"))
    history = stats.omega_history
    if history:
        print()
        print(f"Ω timeline (peak {stats.max_simultaneous_instances}):")
        print(f"  {sparkline(history)}")


def _quantile_rows(obs: Observability) -> List[List[object]]:
    """p50/p95/p99 rows for every non-empty histogram in the bundle."""
    rows = []
    for name, record in sorted(obs.snapshot().items()):
        if record.get("type") != "histogram" or not record.get("count"):
            continue
        quantiles = [snapshot_quantile(record, q)
                     for q in (0.5, 0.95, 0.99)]
        rows.append([name] + [f"{value:.3g}" for value in quantiles]
                    + [record["count"]])
    return rows


def _worker_rows(obs: Observability) -> List[List[object]]:
    """Per-worker event counts from the ``ses_pool_worker*`` gauges."""
    rows = []
    for name, record in sorted(obs.snapshot().items()):
        match_ = re.fullmatch(r"ses_pool_worker(\d+)_events_total", name)
        if match_:
            rows.append([f"worker {match_.group(1)}",
                         int(record["value"])])
    return rows


def _cmd_registry(args: argparse.Namespace) -> int:
    """HTTP client for a running serve process's ``/patterns`` routes."""
    import json
    import urllib.error
    import urllib.request

    base = args.server.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = "http://" + base

    def call(method: str, path: str, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(base + path, data=data,
                                         headers=headers, method=method)
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.load(response)

    try:
        if args.registry_command == "list":
            listing = call("GET", "/patterns")
            rows = listing["patterns"]
            for row in rows:
                print(f"{row['id']}  tenant={row['tenant']}  "
                      f"matches={row['matches']}  "
                      f"active={row['active_instances']}  "
                      f"events={row['events_delivered']}  "
                      f"plan={row['fingerprint'][:12]}")
            print(f"{len(rows)} pattern(s), {listing['predicates']} shared "
                  f"predicate(s), {listing['prefix_groups']} prefix "
                  f"group(s)")
        elif args.registry_command == "add":
            payload = {"query": (args.query if args.query is not None
                                 else args.query_file.read_text()),
                       "tenant": args.tenant}
            if args.pattern_id is not None:
                payload["id"] = args.pattern_id
            row = call("POST", "/patterns", payload)
            print(f"registered {row['id']} "
                  f"(plan {row.get('fingerprint', '?')[:12]})")
        else:  # rm
            row = call("DELETE", f"/patterns/{args.pattern_id}")
            print(f"deregistered {row['id']} after {row['matches']} "
                  f"match(es)")
        return 0
    except urllib.error.HTTPError as exc:
        try:
            detail = json.load(exc).get("error", "")
        except (ValueError, AttributeError):
            detail = exc.reason
        print(f"error: {base} answered {exc.code}: {detail}",
              file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
        return 1


def _cmd_tail(args: argparse.Namespace) -> int:
    """``repro tail``: follow a push endpoint's match stream.

    Prints one JSON line per received event to stdout (and, with
    ``--out``, to a transcript file).  The resume cursor survives the
    process via ``--resume-file``, so re-running the command continues
    exactly where the last run stopped — combined with the server-side
    delivery log this gives exactly-once tailing across both client and
    server restarts.
    """
    import json
    from .net import subscribe_sse, subscribe_ws

    host, port = parse_listen(args.server)
    resume = None
    if args.resume is not None and args.resume != "live":
        resume = int(args.resume)
    if (resume is None and args.resume_file is not None
            and args.resume_file.exists()):
        text = args.resume_file.read_text().strip()
        if text:
            resume = int(text)
    patterns = [p for p in (args.patterns or "").split(",") if p]
    tenants = [t for t in (args.tenants or "").split(",") if t]
    if args.ws:
        source = subscribe_ws(host, port, resume=resume,
                              patterns=patterns, tenants=tenants,
                              subscriber_id=args.subscriber_id,
                              policy=args.policy, queue_size=args.queue)
        stream = (({"event": payload.get("event", "match"),
                    "id": payload.get("seq"), "data": payload})
                  for payload in source)
    else:
        stream = subscribe_sse(
            host, port, resume=resume, patterns=patterns, tenants=tenants,
            subscriber_id=args.subscriber_id, policy=args.policy,
            queue_size=args.queue, reconnect=True,
            reconnect_delay=args.reconnect_delay,
            max_reconnects=args.max_reconnects,
            stop_on_drain=not args.follow)
    out = None if args.out is None else args.out.open("a", encoding="utf-8")
    matches = 0
    last_id = resume
    try:
        for item in stream:
            line = json.dumps(item, default=str)
            print(line, flush=True)
            if out is not None:
                out.write(line + "\n")
                out.flush()
            if item.get("id") is not None:
                last_id = int(item["id"])
                if args.resume_file is not None:
                    args.resume_file.write_text(f"{last_id}\n")
            if item.get("event") == "match":
                matches += 1
                if args.max is not None and matches >= args.max:
                    break
    except KeyboardInterrupt:
        pass
    finally:
        if out is not None:
            out.close()
    print(f"received {matches} match(es); resume cursor: "
          f"{'live' if last_id is None else last_id}", file=sys.stderr)
    return 0


def _cmd_push(args: argparse.Namespace) -> int:
    """``repro push``: feed a relation to a running push endpoint."""
    from .net import (PushRejected, ServerDraining, http_push, push_events,
                      request_quit)

    host, port = parse_listen(args.server)
    relation = load_relation(args.data)
    try:
        if args.http:
            accepted = 0
            events = list(relation)
            for start in range(0, len(events), args.batch_size):
                response = http_push(host, port,
                                     events[start:start + args.batch_size])
                accepted += response.get("accepted", 0)
        else:
            accepted = push_events(host, port, relation,
                                   batch_size=args.batch_size)
    except (ServerDraining, PushRejected) as exc:
        print(f"push refused: {exc}", file=sys.stderr)
        return 1
    print(f"pushed {accepted} events to {host}:{port}")
    if args.quit:
        summary = request_quit(host, port)
        print(f"server draining (resume cursor {summary.get('resume')})")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = generate_chemo(patients=args.patients, cycles=args.cycles,
                              seed=args.seed,
                              lab_events_per_cycle=args.labs_per_cycle)
    if args.duplicate > 1:
        relation = relation.duplicated(args.duplicate)
    save_relation(relation, args.out)
    window = relation.window_size(264)
    print(f"wrote {len(relation)} events to {args.out} "
          f"(W = {window} at tau = 264)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .explain import explain, explain_analyze
    pattern = _load_pattern(args)
    format = "dot" if args.dot else args.format
    relation = None if args.data is None else load_relation(args.data)
    if args.analyze:
        if relation is None:
            raise ValueError("--analyze requires --data")
        report = explain_analyze(pattern, relation,
                                 use_filter=not args.no_filter)
    else:
        report = explain(pattern, relation=relation)
    rendered = report.render(format)
    if args.out is not None:
        args.out.write_text(rendered + "\n", encoding="utf-8")
        print(f"explain report: {args.out}")
    else:
        print(rendered)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    pattern = _load_pattern(args)
    findings = diagnose(pattern)
    if not findings:
        print("no findings")
    for finding in findings:
        print(finding)
    if args.fix_joins:
        from .lang import render_pattern
        print()
        print(render_pattern(close_equality_joins(pattern)))
    return 0 if not any(f.severity == "error" for f in findings) else 3


def _cmd_stats(args: argparse.Namespace) -> int:
    snapshot = read_jsonl(args.snapshot)
    if args.format == "prom":
        sys.stdout.write(to_prometheus(snapshot))
        return 0
    if args.format == "json":
        sys.stdout.write(to_jsonl(snapshot))
        return 0
    by_type = {}
    # Sorted by name so the rendering is deterministic whatever order
    # the snapshot file accumulated records in.
    for name, record in sorted(snapshot.items()):
        by_type.setdefault(record.get("type", "gauge"), []).append(
            (name, record))
    if "counter" in by_type:
        print(format_table(
            ["counter", "value"],
            [[n, r["value"]] for n, r in by_type["counter"]],
            title="counters"))
        print()
    if "gauge" in by_type:
        print(format_table(
            ["gauge", "value", "max"],
            [[n, r["value"], r.get("max", "")] for n, r in by_type["gauge"]],
            title="gauges"))
        print()
    if "stage" in by_type:
        print(format_table(
            ["stage", "calls", "total s", "self s"],
            [[n.replace("repro_stage_", ""), r["count"], r["total_seconds"],
              r["self_seconds"]] for n, r in by_type["stage"]],
            title="stage timings"))
        print()
    for name, record in by_type.get("histogram", ()):
        mean = record["sum"] / record["count"] if record["count"] else 0.0
        print(f"{name}: n={record['count']}  sum={record['sum']:.6g}  "
              f"mean={mean:.6g}")
        if record["count"]:
            quantiles = "  ".join(
                f"p{int(q * 100)}={snapshot_quantile(record, q):.3g}"
                for q in (0.5, 0.95, 0.99))
            print(f"  {quantiles}")
            print(f"  {sparkline(record['buckets'])}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: a batch run with lineage sampling forced on,
    rendering every delivered match's provenance record."""
    pattern, aggregate = _load_query(args)
    relation = load_relation(args.data)
    if args.workers < 1:
        raise ValueError("--workers must be >= 1")
    if not 0.0 <= args.sample <= 1.0:
        raise ValueError("--sample must be in [0, 1]")
    config = TraceConfig(sample_rate=args.sample,
                         slow_seconds=args.slow_ms / 1000.0)
    obs = Observability(lineage=LineageRecorder(config))
    plan = compile_plan(pattern, aggregate=aggregate, observability=obs)
    from .api import query as run_query
    result = run_query(plan, relation, workers=args.workers,
                       observability=obs)
    lineage = obs.lineage
    summary = lineage.summary()
    if result.kind == "aggregates":
        print(f"{result.matches_folded} match(es) folded over "
              f"{len(relation)} events; "
              f"{summary['records']} lineage record(s)", file=sys.stderr)
    else:
        print(f"{len(result)} match(es) in {len(relation)} events; "
              f"{summary['records']} lineage record(s), "
              f"{summary['ingested']} traced", file=sys.stderr)
    rendered = lineage.report().render(args.format)
    if args.out is not None:
        args.out.write_text(rendered + "\n", encoding="utf-8")
        print(f"lineage report: {args.out}", file=sys.stderr)
    else:
        print(rendered)
    if args.otel_out is not None:
        write_otel_spans(args.otel_out, lineage)
        # stderr: stdout must stay a clean json/dot document for pipes.
        print(f"otel spans: {args.otel_out}", file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    pattern = _load_pattern(args)
    if args.window is not None:
        window = args.window
    else:
        relation = load_relation(args.data)
        window = relation.window_size(pattern.tau)
        print(f"data: {len(relation)} events")
    print(analyze(pattern, window).describe())
    return 0


_COMMANDS = {
    "match": _cmd_match,
    "serve": _cmd_serve,
    "registry": _cmd_registry,
    "tail": _cmd_tail,
    "push": _cmd_push,
    "generate": _cmd_generate,
    "explain": _cmd_explain,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    logger.debug("command: %s", args.command)
    try:
        return _COMMANDS[args.command](args)
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    except ResourceExhausted as exc:
        print(f"resource guard: {exc}", file=sys.stderr)
        return 4
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
