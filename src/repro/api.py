"""The unified query entry point: one call, one typed result.

:func:`query` is the single front door to batch evaluation.  It takes a
query in any spelling — PERMUTE query text (optionally with a ``SELECT``
aggregation clause), a :class:`~repro.core.pattern.SESPattern`, or a
compiled :class:`~repro.plan.plan.PatternPlan` — runs it over the given
events, and returns the typed :data:`~repro.agg.result.Result` union:

* an enumeration query returns a :class:`~repro.agg.result.MatchSet`
  (iteration yields unified :class:`~repro.agg.result.Match` objects);
* an aggregation query (``SELECT count(*) | sum(v.a) | min | max | avg``)
  returns an :class:`~repro.agg.result.AggregateSeries` of finalised
  values — no match is ever materialised on the way.

Dispatch on ``result.kind`` (``"matches"`` / ``"aggregates"``) or with
``isinstance``::

    import repro

    result = repro.query(
        "SELECT count(*) AS n, avg(a.x) "
        "FROM PATTERN PERMUTE(a+, b) "
        "WHERE a.L = 'A' AND b.L = 'B' WITHIN 20",
        events)
    print(result["n"], result["avg(a.x)"])

    for match in repro.query("PATTERN PERMUTE(a, b) WHERE ... WITHIN 20",
                             events):
        print(match.events())

The legacy :func:`repro.match` / :class:`repro.Matcher` surfaces remain
as shims over the same plan cache and emit a one-shot
:class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Optional

from .agg.result import MatchSet, Result
from .core.pattern import SESPattern
from .plan.cache import compile as compile_plan
from .plan.plan import PatternPlan

__all__ = ["query"]


def query(source, events, *, use_filter: bool = True,
          filter_mode: str = "conjunctive", selection: str = "paper",
          consume: str = "greedy", workers: int = 1,
          partition_by: Optional[str] = None, observability=None,
          optimizations=None) -> Result:
    """Evaluate ``source`` over ``events`` and return a typed result.

    Parameters
    ----------
    source:
        Query text (``[SELECT ...] [FROM] PATTERN ... WHERE ... WITHIN
        ...``), a :class:`SESPattern`, or a compiled
        :class:`PatternPlan` (plans compiled with an
        :class:`~repro.agg.spec.AggregateSpec` aggregate).
    events:
        An :class:`~repro.core.relation.EventRelation` or any iterable
        of :class:`~repro.core.events.Event`.
    use_filter / filter_mode / selection / consume:
        Forwarded to :meth:`PatternPlan.match`.  Aggregation queries
        fold the raw accepted buffers, so ``selection`` only affects
        enumeration queries.
    workers:
        ``> 1`` fans partitions out over a process pool; aggregate
        partials merge back losslessly.
    partition_by:
        Forces serial partitioned execution on the given attribute.
    observability:
        Optional :class:`~repro.obs.Observability` bundle.
    optimizations:
        Optional iterable of plan optimization names (query-text and
        pattern sources only; a compiled plan keeps its own).

    Returns
    -------
    :class:`~repro.agg.result.MatchSet` for enumeration queries,
    :class:`~repro.agg.result.AggregateSeries` for aggregation queries.
    """
    if isinstance(source, PatternPlan):
        plan = source
    elif isinstance(source, str):
        from .lang import parse_query_spec
        pattern, aggregate = parse_query_spec(source)
        plan = compile_plan(pattern, aggregate=aggregate,
                            optimizations=optimizations,
                            observability=observability)
    elif isinstance(source, SESPattern):
        plan = compile_plan(source, optimizations=optimizations,
                            observability=observability)
    else:
        raise TypeError(
            f"expected query text, SESPattern or PatternPlan, got "
            f"{type(source).__name__}")
    result = plan.match(events, use_filter=use_filter,
                        filter_mode=filter_mode, selection=selection,
                        consume=consume, workers=workers,
                        partition_by=partition_by,
                        observability=observability)
    lineage = (None if observability is None
               else getattr(observability, "lineage", None))
    if plan.aggregate is not None:
        series = result.aggregates
        if lineage is not None:
            series.provenance = lineage.aggregate_provenance(
                folded=series.matches_folded)
        return series
    matches = MatchSet.from_result(result)
    if lineage is not None:
        # Batch delivery happens here: stamp every match and attach the
        # per-match records (positionally aligned with the match list).
        by = "serial" if workers <= 1 else f"pool:{workers}"
        matches.attach_lineage([
            lineage.deliver(substitution, by=by)
            for substitution in matches.matches])
    return matches
