"""Naive declarative matcher: Definition 2 executed literally.

This matcher enumerates the candidate set Γ exhaustively and filters it
with Definition 2's conditions — no automaton involved.  It is exponential
in the relation size and exists purely as a *correctness oracle*: on any
input small enough to enumerate, the automaton engine and the brute force
baseline must agree with it.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..core.semantics import matching_substitutions
from ..core.substitution import Substitution

__all__ = ["NaiveMatcher", "naive_match"]


class NaiveMatcher:
    """Reference matcher implementing Definition 2 by enumeration.

    Parameters
    ----------
    pattern:
        The SES pattern.
    max_group_bindings:
        Cap on events a single group variable may bind during enumeration
        (bounds the exponential search).
    overlap:
        ``"suppress"`` (paper's intended results, default) or ``"allow"``.
    """

    def __init__(self, pattern: SESPattern, max_group_bindings: int = 6,
                 overlap: str = "suppress"):
        self.pattern = pattern
        self.max_group_bindings = max_group_bindings
        self.overlap = overlap

    def run(self, relation: Union[EventRelation, Iterable[Event]]
            ) -> List[Substitution]:
        """Return the matching substitutions of the pattern in ``relation``."""
        return matching_substitutions(
            self.pattern, relation,
            max_group_bindings=self.max_group_bindings,
            overlap=self.overlap,
        )

    def __repr__(self) -> str:
        return f"NaiveMatcher({self.pattern!r})"


def naive_match(pattern: SESPattern,
                relation: Union[EventRelation, Iterable[Event]],
                overlap: str = "suppress") -> List[Substitution]:
    """One-shot naive evaluation (see :class:`NaiveMatcher`)."""
    return NaiveMatcher(pattern, overlap=overlap).run(relation)
