"""Enumeration of variable sequences for the brute force baseline.

The brute force algorithm (Section 5.2) rewrites a SES pattern into the set
of *all possible sequences* of its event variables: one permutation per
event set pattern, concatenated in pattern order.  The number of sequences
is ``|V1|! · |V2|! · ... · |Vm|!``.  Each sequence becomes an ordinary
sequential pattern — a SES pattern whose event set patterns are all
singletons — which existing engines (DejaVu, SASE+, Cayuga) can evaluate.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Tuple

from ..core.pattern import SESPattern
from ..core.variables import Variable

__all__ = ["sequence_count", "enumerate_sequences", "sequence_pattern"]


def sequence_count(pattern: SESPattern) -> int:
    """``|V1|! · ... · |Vm|!`` — the number of brute force sequences."""
    count = 1
    for vs in pattern.sets:
        count *= math.factorial(len(vs))
    return count


def enumerate_sequences(pattern: SESPattern) -> Iterator[Tuple[Variable, ...]]:
    """Yield every sequence of event variables (Section 5.2).

    A sequence is the concatenation of one permutation of each event set
    pattern, in pattern order.  Variables within each set are permuted in a
    deterministic (sorted) base order so the enumeration is reproducible.
    """
    per_set = [itertools.permutations(sorted(vs)) for vs in pattern.sets]
    for combo in itertools.product(*per_set):
        sequence: List[Variable] = []
        for permutation in combo:
            sequence.extend(permutation)
        yield tuple(sequence)


def sequence_pattern(pattern: SESPattern,
                     sequence: Tuple[Variable, ...]) -> SESPattern:
    """Build the sequential SES pattern for one variable sequence.

    Every variable becomes its own (singleton) event set pattern; the
    conditions Θ and duration τ are inherited unchanged.  Note the caveat
    the paper's related-work section raises for sequence-based rewritings:
    a group variable in a sequence loops at a fixed position, so its
    bindings must be *consecutive* — the rewriting is exact only for
    patterns without group variables (which is what the paper's
    Experiment 1 uses).
    """
    return SESPattern(
        sets=[[v] for v in sequence],
        conditions=list(pattern.conditions),
        tau=pattern.tau,
    )
