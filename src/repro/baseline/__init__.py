"""Baselines: the brute force rewriting (Section 5.2) and the naive oracle."""

from .bruteforce import BruteForceMatcher, brute_force_match
from .naive import NaiveMatcher, naive_match
from .sequences import enumerate_sequences, sequence_count, sequence_pattern

__all__ = [
    "BruteForceMatcher", "NaiveMatcher", "brute_force_match",
    "enumerate_sequences", "naive_match", "sequence_count",
    "sequence_pattern",
]
