"""The brute force baseline of Section 5.2.

Instead of a single SES automaton whose states are sets of variables, the
brute force algorithm creates one *sequential* automaton per possible
ordering of the pattern's variables (``|V1|!·…·|Vm|!`` automata) and
executes them all in parallel: every input event is offered to every
automaton.  This corresponds to how systems without a PERMUTE operator
(DejaVu, SASE+/NFAb, Cayuga) would have to express a SES pattern.

The implementation reuses :class:`~repro.automaton.executor.SESExecutor`
for each sequential automaton and interleaves them event-by-event, so the
measured ``max_simultaneous_instances`` is the true peak of the *combined*
instance population — the quantity Figure 11 and Table 1 report.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..automaton.builder import build_automaton
from ..automaton.executor import MatchResult, SESExecutor
from ..automaton.filtering import EventFilter
from ..automaton.metrics import ExecutionStats
from ..core.events import Event
from ..core.pattern import PatternError, SESPattern
from ..core.relation import EventRelation
from ..core.semantics import select_matches
from ..core.substitution import Substitution
from .sequences import enumerate_sequences, sequence_pattern

__all__ = ["BruteForceMatcher", "brute_force_match"]


class BruteForceMatcher:
    """Evaluates a SES pattern with one automaton per variable sequence.

    Parameters
    ----------
    pattern:
        The SES pattern.  Group variables are rejected by default because
        the sequence rewriting forces their bindings to be consecutive,
        which is not SES semantics (the paper's Experiment 1 uses
        singleton-only patterns); pass ``allow_group=True`` to accept the
        approximation anyway.
    use_filter:
        Apply the Section 4.5 pre-filter in front of the shared event loop.
    selection:
        Result selection, as in :class:`~repro.automaton.executor.SESExecutor`.
    allow_group:
        Permit group variables despite the consecutive-bindings caveat.
    """

    def __init__(self, pattern: SESPattern, use_filter: bool = False,
                 filter_mode: str = "conjunctive", selection: str = "paper",
                 allow_group: bool = False):
        if pattern.group_variables and not allow_group:
            raise PatternError(
                "the brute force rewriting is only exact for patterns "
                "without group variables; pass allow_group=True to force "
                "the consecutive-bindings approximation"
            )
        self.pattern = pattern
        self.selection = selection
        self.event_filter: Optional[EventFilter] = (
            EventFilter(pattern, mode=filter_mode) if use_filter else None
        )
        self.automata = [
            build_automaton(sequence_pattern(pattern, sequence))
            for sequence in enumerate_sequences(pattern)
        ]

    @property
    def automaton_count(self) -> int:
        """Number of sequential automata (``|V1|!·…·|Vm|!``)."""
        return len(self.automata)

    def run(self, relation: Union[EventRelation, Iterable[Event]]) -> MatchResult:
        """Execute all sequential automata in parallel over ``relation``."""
        executors = [SESExecutor(a, selection="accepted") for a in self.automata]
        stats = ExecutionStats()
        for event in relation:
            stats.events_read += 1
            if self.event_filter is not None and not self.event_filter.admits(event):
                stats.events_filtered += 1
                continue
            stats.events_processed += 1
            for executor in executors:
                executor.feed(event)
            stats.observe_omega(sum(e.active_instances for e in executors))
        accepted: List[Substitution] = []
        for executor in executors:
            executor.finish()
            accepted.extend(executor.accepted_buffers)
            stats.instances_created += executor.stats.instances_created
            stats.transitions_fired += executor.stats.transitions_fired
            stats.branchings += executor.stats.branchings
            stats.expired_instances += executor.stats.expired_instances
            stats.accepted_buffers += executor.stats.accepted_buffers

        if self.selection == "accepted":
            matches = list(accepted)
        else:
            overlap = "suppress" if self.selection == "paper" else "allow"
            matches = select_matches(accepted, overlap=overlap)
        stats.matches = len(matches)
        return MatchResult(matches=matches, accepted=accepted, stats=stats)

    def __repr__(self) -> str:
        return (f"BruteForceMatcher({self.pattern!r}, "
                f"{self.automaton_count} automata)")


def brute_force_match(pattern: SESPattern,
                      relation: Union[EventRelation, Iterable[Event]],
                      use_filter: bool = False,
                      selection: str = "paper") -> MatchResult:
    """One-shot brute force evaluation (see :class:`BruteForceMatcher`)."""
    matcher = BruteForceMatcher(pattern, use_filter=use_filter,
                                selection=selection)
    return matcher.run(relation)
