"""Run the full evaluation: ``python -m repro.bench [profile]``.

Executes Experiments 1-3 at the selected scale profile and prints the
paper-style tables.  Profiles: quick, default, large (or set the
``REPRO_BENCH_PROFILE`` environment variable).
"""

import sys

from .experiments import (print_experiment1, print_experiment2,
                          print_experiment3, run_experiment1, run_experiment2,
                          run_experiment3)
from .harness import resolve_profile


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    profile = resolve_profile(argv[0] if argv else None)
    exp1_relation = profile.exp1_relation()
    exp23_base = profile.exp23_base()
    print(f"profile: {profile.name}")
    print(f"experiment 1 relation: {len(exp1_relation)} events, "
          f"W = {exp1_relation.window_size(264)}")
    print(f"experiment 2/3 base:   {len(exp23_base)} events, "
          f"W = {exp23_base.window_size(264)}")

    print_experiment1(run_experiment1(exp1_relation,
                                      max_vars=profile.exp1_max_vars))
    print_experiment2(run_experiment2(exp23_base, factors=profile.factors))
    print_experiment3(run_experiment3(exp23_base, factors=profile.factors))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
