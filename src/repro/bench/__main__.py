"""Run the full evaluation: ``python -m repro.bench [profile]``.

Executes Experiments 1-3 at the selected scale profile and prints the
paper-style tables.  Profiles: quick, default, large (or set the
``REPRO_BENCH_PROFILE`` environment variable).  With ``--metrics-out``
the measurements are also written as a JSON-lines metrics snapshot
(render it later with ``repro stats``); CI uses this to accumulate a
per-commit performance trajectory.
"""

import argparse
import logging

from ..obs import configure_logging, write_jsonl
from .aggregation import (aggregation_ladder, aggregation_snapshot,
                          print_aggregation, run_aggregation)
from .experiments import (print_experiment1, print_experiment2,
                          print_experiment3, run_experiment1, run_experiment2,
                          run_experiment3)
from .harness import resolve_profile, rows_to_snapshot
from .plancache import plan_cache_snapshot, print_plan_cache, run_plan_cache
from .registry import print_registry, registry_snapshot, run_registry
from .scaling import (print_scaling, run_scaling, scaling_snapshot,
                      workers_ladder)

logger = logging.getLogger(__name__)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Run the paper's Experiments 1-3 and print the tables.")
    parser.add_argument("profile", nargs="?", default=None,
                        help="scale profile (quick / default / large)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="also write a JSON-lines metrics snapshot")
    parser.add_argument("--explain-out", metavar="DIR", default=None,
                        help="also write JSON EXPLAIN reports for the "
                             "experiment patterns (bench_exp1.json / "
                             "bench_exp2.json; the CI build artifact)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="also run the parallel scaling benchmark with "
                             "pool sizes up to N (default: 1 = skip)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)

    profile = resolve_profile(args.profile)
    exp1_relation = profile.exp1_relation()
    exp23_base = profile.exp23_base()
    print(f"profile: {profile.name}")
    print(f"experiment 1 relation: {len(exp1_relation)} events, "
          f"W = {exp1_relation.window_size(264)}")
    print(f"experiment 2/3 base:   {len(exp23_base)} events, "
          f"W = {exp23_base.window_size(264)}")

    rows1 = run_experiment1(exp1_relation, max_vars=profile.exp1_max_vars)
    print_experiment1(rows1)
    rows2 = run_experiment2(exp23_base, factors=profile.factors)
    print_experiment2(rows2)
    rows3 = run_experiment3(exp23_base, factors=profile.factors)
    print_experiment3(rows3)
    plan_cache_row = run_plan_cache()
    print_plan_cache(plan_cache_row)
    registry_row = run_registry()
    print_registry(registry_row)
    agg_rows = run_aggregation(aggregation_ladder(profile.name))
    print_aggregation(agg_rows)
    scaling_rows = None
    if args.workers > 1:
        scaling_rows = run_scaling(exp1_relation,
                                   workers=workers_ladder(args.workers))
        print_scaling(scaling_rows)

    if args.metrics_out:
        snapshot = {"bench_profile_events_exp1": {
            "type": "gauge", "value": len(exp1_relation),
            "max": len(exp1_relation)}}
        snapshot.update(rows_to_snapshot("exp1", rows1))
        snapshot.update(rows_to_snapshot("exp2", rows2))
        snapshot.update(rows_to_snapshot("exp3", rows3))
        snapshot.update(plan_cache_snapshot(plan_cache_row))
        snapshot.update(registry_snapshot(registry_row))
        snapshot.update(aggregation_snapshot(agg_rows))
        if scaling_rows is not None:
            snapshot.update(scaling_snapshot(scaling_rows))
        path = write_jsonl(snapshot, args.metrics_out)
        logger.info("wrote %d metrics to %s", len(snapshot), path)
        print(f"metrics snapshot: {path} ({len(snapshot)} series)")

    if args.explain_out:
        from pathlib import Path

        from ..data.workloads import experiment1_pattern, pattern_p3
        from ..explain import explain
        out_dir = Path(args.explain_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        reports = {
            "bench_exp1.json": explain(
                experiment1_pattern(profile.exp1_max_vars, exclusive=True),
                relation=exp1_relation),
            "bench_exp2.json": explain(pattern_p3(), relation=exp23_base),
        }
        for filename, report in reports.items():
            path = out_dir / filename
            path.write_text(report.to_json() + "\n", encoding="utf-8")
            print(f"explain report: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
