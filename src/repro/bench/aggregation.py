"""Aggregation benchmark: incremental fold vs enumerate-then-fold.

The asymptotic claim behind :mod:`repro.agg`: on patterns whose match
count explodes combinatorially, an aggregation query that *folds*
matches inside the executor (GRETA-style, over coalesced instance
groups) beats enumerating the match set and folding it afterwards — and
the gap widens superlinearly with the blow-up.  The ladder below drives
the canonical worst case, ``PERMUTE(a+, b+)`` with constant conditions
over a uniform stream: ``k`` admissible events yield ``2^k - 2``
accepted buffers, while the coalesced group population stays linear in
the window.

``python -m repro.bench`` always runs this and CI's benchmark gate
tracks the resulting ``bench_agg_*`` metrics (``*_seconds``
lower-better, ``*_speedup`` higher-better).  Every rung asserts the
incremental values equal the enumerate-then-fold reference before its
row is returned — a benchmark that drifted from the semantics would
fail, not mislead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..agg.engine import finalize_snapshot, fold_reference
from ..agg.spec import Aggregate, AggregateSpec
from ..core.events import Event
from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..plan.cache import compile as compile_plan
from .harness import timed
from .report import print_table

__all__ = ["aggregation_ladder", "aggregation_pattern",
           "aggregation_relation", "aggregation_spec", "run_aggregation",
           "print_aggregation", "aggregation_snapshot"]

#: Admissible-event counts per profile: each +2 quadruples the match
#: count (2^k - 2 accepted buffers) while the incremental cost stays
#: effectively flat.
LADDERS = {
    "quick": (8, 10, 12),
    "default": (10, 12, 14),
    "large": (12, 14, 16),
}


def aggregation_ladder(profile: str = "default") -> Sequence[int]:
    """The ``k`` ladder for a profile name (unknown names -> default)."""
    return LADDERS.get(profile, LADDERS["default"])


def aggregation_pattern(tau: int = 1000) -> SESPattern:
    """``PERMUTE(a+, b+)`` with constant conditions: the blow-up case."""
    return SESPattern(sets=[["a+", "b+"]],
                      conditions=["a.L = 'A'", "b.L = 'A'"], tau=tau)


def aggregation_relation(k: int) -> EventRelation:
    """``k`` uniformly admissible events (every one matches both vars)."""
    return EventRelation([Event(ts=i, eid=f"e{i}", L="A", V=float(i))
                          for i in range(k)])


def aggregation_spec() -> AggregateSpec:
    return AggregateSpec(aggregates=(
        Aggregate("count", alias="n"),
        Aggregate("sum", "a", "V"),
        Aggregate("avg", "b", "V"),
    ))


def run_aggregation(ks: Optional[Sequence[int]] = None) -> List[Dict]:
    """Time both strategies at each rung of the ladder.

    Returns one row per ``k`` with wall-clock seconds for the
    enumerate-then-fold reference and the incremental fold, the match
    count both folded, and the peak live population of each (accepted
    buffers vs coalesced groups) — the space side of the asymptotic
    argument.
    """
    if ks is None:
        ks = aggregation_ladder()
    spec = aggregation_spec()
    pattern = aggregation_pattern()
    rows: List[Dict] = []
    for k in ks:
        relation = aggregation_relation(k)

        def run_reference():
            plan = compile_plan(pattern)
            result = plan.match(relation, selection="accepted")
            snapshot = fold_reference(spec, list(result))
            return (finalize_snapshot(spec, snapshot), snapshot["matches"],
                    result.stats.max_simultaneous_instances)

        def run_incremental():
            plan = compile_plan(pattern, aggregate=spec)
            executor = plan.executor()
            result = executor.run(relation)
            series = result.aggregates
            return series.values, series.matches_folded, (
                executor._agg.max_groups)

        (ref_values, ref_matches, ref_peak), ref_seconds = timed(
            run_reference)
        (inc_values, inc_matches, inc_peak), inc_seconds = timed(
            run_incremental)
        if inc_matches != ref_matches:
            raise AssertionError(
                f"k={k}: incremental folded {inc_matches} matches, "
                f"reference enumerated {ref_matches}")
        for label in ref_values:
            a, b = ref_values[label], inc_values[label]
            if a != b and abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0):
                raise AssertionError(
                    f"k={k}: {label} diverges: reference {a!r}, "
                    f"incremental {b!r}")
        rows.append({
            "k": k,
            "matches": ref_matches,
            "enumerate_seconds": ref_seconds,
            "incremental_seconds": inc_seconds,
            "speedup": (ref_seconds / inc_seconds
                        if inc_seconds else 0.0),
            "enumerate_peak": ref_peak,
            "groups_peak": inc_peak,
        })
    return rows


def print_aggregation(rows: List[Dict]) -> None:
    """Render the comparison table."""
    print_table(
        ["k", "matches", "enumerate s", "incremental s", "speedup",
         "enum peak", "groups peak"],
        [[row["k"], row["matches"], row["enumerate_seconds"],
          row["incremental_seconds"], row["speedup"],
          row["enumerate_peak"], row["groups_peak"]]
         for row in rows],
        title="Online aggregation (incremental fold vs enumerate-then-fold)",
    )
    print()


def aggregation_snapshot(rows: List[Dict]) -> Dict[str, dict]:
    """The largest rung as exportable gauges (``bench_agg_<field>``).

    Only the headline rung feeds the CI gate: the small rungs are noise-
    floor territory, and gating on the largest k is exactly the
    asymptotic claim the benchmark exists to defend.
    """
    row = max(rows, key=lambda r: r["k"])
    snapshot: Dict[str, dict] = {}
    for field in ("enumerate_seconds", "incremental_seconds", "speedup",
                  "groups_peak"):
        value = row[field]
        snapshot[f"bench_agg_{field}"] = {
            "type": "gauge", "value": value, "max": value}
    return snapshot
