"""Plain-text charts for the experiment reports.

The paper presents Experiments 1–3 as figures; the harness renders the
same series as aligned text bar charts so ``python -m repro.bench``
output reads like the paper's plots without any plotting dependency.
``log=True`` uses a logarithmic bar length — Figure 11 is log-scale in
the paper too.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "series_chart"]

_BAR = "█"
_HALF = "▌"


def _bar(value: float, peak: float, width: int, log: bool,
         floor: float = 1.0) -> str:
    if value <= 0 or peak <= 0:
        return ""
    if log:
        # Map [floor, peak] to [~0.05, 1] logarithmically so the smallest
        # positive value still shows a stub (works for sub-second timings).
        if peak <= floor:
            scale = 1.0
        else:
            scale = 0.05 + 0.95 * (math.log10(value / floor)
                                   / math.log10(peak / floor))
        scale = max(0.0, min(scale, 1.0))
    else:
        scale = value / peak
    cells = scale * width
    full = int(cells)
    return _BAR * full + (_HALF if cells - full >= 0.5 else "")


def _positive_floor(values) -> float:
    positives = [v for v in values if v > 0]
    return min(positives) if positives else 1.0


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 40, log: bool = False,
              unit: str = "") -> str:
    """One horizontal bar per (label, value), scaled to the maximum."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max(values)
    floor = _positive_floor(values)
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        rendered = (f"{value:.3g}{unit}" if isinstance(value, float)
                    else f"{value}{unit}")
        lines.append(f"  {str(label).rjust(label_width)}  "
                     f"{_bar(value, peak, width, log, floor):<{width}} "
                     f"{rendered}")
    return "\n".join(lines)


def series_chart(x_labels: Sequence[str],
                 series: Sequence[Tuple[str, Sequence[float]]],
                 title: str = "", width: int = 40, log: bool = False,
                 unit: str = "") -> str:
    """Several named series over shared x labels, one block per series."""
    peak = max((max(values) for _, values in series if values), default=0)
    floor = _positive_floor([v for _, values in series for v in values])
    lines: List[str] = [title] if title else []
    label_width = max((len(str(x)) for x in x_labels), default=0)
    for name, values in series:
        lines.append(f"  {name}:")
        for x, value in zip(x_labels, values):
            rendered = f"{value:.3g}{unit}" if isinstance(value, float) \
                else f"{value}{unit}"
            lines.append(f"    {str(x).rjust(label_width)}  "
                         f"{_bar(value, peak, width, log, floor):<{width}} "
                         f"{rendered}")
    return "\n".join(lines)
