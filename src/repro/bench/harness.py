"""Benchmark harness: scale profiles, timing, and result records.

The paper's workload (W = 1322 … 6610, a C implementation on a 2006
server) is impractical to run at full size in pure Python, so the harness
supports *scale profiles*.  All of the paper's findings are shape
statements (ratios, growth classes, relative speedups), which are
scale-invariant; EXPERIMENTS.md records our measurements next to the
paper's.  Select a profile with the ``REPRO_BENCH_PROFILE`` environment
variable (``quick`` / ``default`` / ``large``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.relation import EventRelation
from ..data.chemo import generate_chemo

__all__ = ["Profile", "PROFILES", "resolve_profile", "timed"]


@dataclass(frozen=True)
class Profile:
    """A benchmark scale profile."""

    name: str
    #: Patients / cycles of the Experiment 1 relation.
    exp1_patients: int
    exp1_cycles: int
    #: Largest |V1| for Experiment 1 (the paper uses 6).
    exp1_max_vars: int
    #: Patients / cycles of the Experiment 2/3 base relation (D1).
    exp23_patients: int
    exp23_cycles: int
    #: Duplication factors (the paper uses 1..5 for D1..D5).
    factors: Tuple[int, ...]

    def exp1_relation(self, seed: int = 7) -> EventRelation:
        """The relation Experiment 1 runs on."""
        return generate_chemo(patients=self.exp1_patients,
                              cycles=self.exp1_cycles, seed=seed)

    def exp23_base(self, seed: int = 7) -> EventRelation:
        """The D1 base relation for Experiments 2 and 3."""
        return generate_chemo(patients=self.exp23_patients,
                              cycles=self.exp23_cycles, seed=seed)


PROFILES: Dict[str, Profile] = {
    # Seconds-scale: CI and iteration.
    "quick": Profile("quick", exp1_patients=6, exp1_cycles=2, exp1_max_vars=5,
                     exp23_patients=6, exp23_cycles=2, factors=(1, 2, 3)),
    # The shipping default: every experiment in a few minutes.
    "default": Profile("default", exp1_patients=8, exp1_cycles=2,
                       exp1_max_vars=6, exp23_patients=10, exp23_cycles=3,
                       factors=(1, 2, 3, 4, 5)),
    # Closer to the paper's scale; expect long runtimes in pure Python.
    "large": Profile("large", exp1_patients=16, exp1_cycles=4,
                     exp1_max_vars=6, exp23_patients=24, exp23_cycles=4,
                     factors=(1, 2, 3, 4, 5)),
}


def resolve_profile(name: str = None) -> Profile:
    """The profile named by ``name`` or ``$REPRO_BENCH_PROFILE`` (default
    ``default``)."""
    name = name or os.environ.get("REPRO_BENCH_PROFILE", "default")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
