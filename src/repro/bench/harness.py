"""Benchmark harness: scale profiles, timing, and result records.

The paper's workload (W = 1322 … 6610, a C implementation on a 2006
server) is impractical to run at full size in pure Python, so the harness
supports *scale profiles*.  All of the paper's findings are shape
statements (ratios, growth classes, relative speedups), which are
scale-invariant; EXPERIMENTS.md records our measurements next to the
paper's.  Select a profile with the ``REPRO_BENCH_PROFILE`` environment
variable (``quick`` / ``default`` / ``large``).
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..core.relation import EventRelation
from ..data.chemo import generate_chemo
from ..obs import Observability, SpanTracer

__all__ = ["Profile", "PROFILES", "resolve_profile", "timed", "measured",
           "rows_to_snapshot"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Profile:
    """A benchmark scale profile."""

    name: str
    #: Patients / cycles of the Experiment 1 relation.
    exp1_patients: int
    exp1_cycles: int
    #: Largest |V1| for Experiment 1 (the paper uses 6).
    exp1_max_vars: int
    #: Patients / cycles of the Experiment 2/3 base relation (D1).
    exp23_patients: int
    exp23_cycles: int
    #: Duplication factors (the paper uses 1..5 for D1..D5).
    factors: Tuple[int, ...]

    def exp1_relation(self, seed: int = 7) -> EventRelation:
        """The relation Experiment 1 runs on."""
        return generate_chemo(patients=self.exp1_patients,
                              cycles=self.exp1_cycles, seed=seed)

    def exp23_base(self, seed: int = 7) -> EventRelation:
        """The D1 base relation for Experiments 2 and 3."""
        return generate_chemo(patients=self.exp23_patients,
                              cycles=self.exp23_cycles, seed=seed)


PROFILES: Dict[str, Profile] = {
    # Seconds-scale: CI and iteration.
    "quick": Profile("quick", exp1_patients=6, exp1_cycles=2, exp1_max_vars=5,
                     exp23_patients=6, exp23_cycles=2, factors=(1, 2, 3)),
    # The shipping default: every experiment in a few minutes.
    "default": Profile("default", exp1_patients=8, exp1_cycles=2,
                       exp1_max_vars=6, exp23_patients=10, exp23_cycles=3,
                       factors=(1, 2, 3, 4, 5)),
    # Closer to the paper's scale; expect long runtimes in pure Python.
    "large": Profile("large", exp1_patients=16, exp1_cycles=4,
                     exp1_max_vars=6, exp23_patients=24, exp23_cycles=4,
                     factors=(1, 2, 3, 4, 5)),
}


def resolve_profile(name: str = None) -> Profile:
    """The profile named by ``name`` or ``$REPRO_BENCH_PROFILE`` (default
    ``default``)."""
    name = name or os.environ.get("REPRO_BENCH_PROFILE", "default")
    try:
        profile = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    logger.info("benchmark profile: %s", profile.name)
    return profile


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``.

    Timing goes through a throwaway :class:`repro.obs.SpanTracer`, so
    benchmark accounting and engine profiling share one clock and one
    aggregation path.
    """
    spans = SpanTracer()
    with spans.span("run"):
        result = fn(*args, **kwargs)
    return result, spans.total_seconds("run")


def measured(fn: Callable, *args, obs: Observability = None, **kwargs):
    """Run ``fn`` under an observability bundle; return ``(result, obs)``.

    The call is timed as the ``run`` stage of ``obs`` (a fresh bundle
    unless one is passed in).  Hand the same bundle to an instrumented
    matcher/executor to get engine metrics and harness timing in a
    single exportable snapshot.
    """
    if obs is None:
        obs = Observability()
    with obs.span("run"):
        result = fn(*args, **kwargs)
    return result, obs


#: Row fields that identify a measurement rather than carry one.
_IDENTITY_FIELDS = ("pattern", "dataset", "n_vars")


def rows_to_snapshot(experiment: str,
                     rows: Sequence[Dict]) -> Dict[str, dict]:
    """Flatten experiment row dicts into an exportable metrics snapshot.

    Each row becomes a family of gauges named
    ``bench_<experiment>_<identity>_<field>`` — e.g. Experiment 1's
    ``{"pattern": "P1", "n_vars": 3, "ses_seconds": ...}`` row yields
    ``bench_exp1_p1_3_ses_seconds``.  Feed the result to
    :func:`repro.obs.write_jsonl` to persist a run (the CI artifact).
    """
    snapshot: Dict[str, dict] = {}
    for row in rows:
        tag = "_".join(str(row[key]) for key in _IDENTITY_FIELDS
                       if key in row).lower()
        for field, value in row.items():
            if field in _IDENTITY_FIELDS or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                name = f"bench_{experiment}_{tag}_{field}"
                snapshot[name] = {"type": "gauge", "value": value,
                                  "max": value}
    return snapshot
