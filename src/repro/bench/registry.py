"""Registry benchmark: shared admission pass vs independent matchers.

The multi-tenant workload :mod:`repro.registry` targets: many *distinct*
live patterns over one event stream.  The baseline is the repo's own
:class:`~repro.stream.multi.MultiPatternMatcher`, which offers every
event to every pattern's matcher (N filter checks per event).  The
registry instead evaluates the deduplicated predicate bank once per
event batch and fans admission out through per-pattern bitmasks, so the
per-event cost grows with the number of *distinct predicates*, not the
number of patterns.  ``python -m repro.bench`` always runs this and CI's
benchmark gate tracks the resulting ``bench_registry_*`` metrics
(``*_seconds`` lower-better, ``*_speedup`` / ``*_events_per_second``
higher-better).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from ..core.events import Event
from ..core.relation import EventRelation
from ..data.chemo import generate_chemo
from ..lang import parse_pattern
from ..registry import PatternRegistry
from ..stream.multi import MultiPatternMatcher
from .harness import timed
from .report import print_table

__all__ = ["registry_queries", "registry_relation", "run_registry",
           "print_registry", "registry_snapshot"]

#: Event labels the generated patterns pair up — the sparse clinical
#: events (admission, completion, discharge, prednisone, leukapheresis),
#: so the stream is dominated by lab events no pattern admits: the
#: regime the shared admission pass targets (and the common monitoring
#: shape — selective alerts over a noisy feed).
LABELS = ("B", "C", "D", "P", "L")

#: Time windows the label pairs are instantiated at.
TAUS = (60, 120, 264, 480, 960)

#: Default pattern-set size: 25 ordered label pairs x 5 windows.
DEFAULT_PATTERNS = len(LABELS) ** 2 * len(TAUS)


def registry_queries(n: int = DEFAULT_PATTERNS) -> List[str]:
    """``n`` distinct two-variable queries over the chemo schema."""
    queries = []
    for (first, second), tau in itertools.product(
            itertools.product(LABELS, repeat=2), TAUS):
        queries.append(
            f"PATTERN PERMUTE(a, b) WHERE a.L = '{first}' AND "
            f"b.L = '{second}' AND a.ID = b.ID WITHIN {tau}")
        if len(queries) == n:
            return queries
    raise ValueError(f"only {len(queries)} distinct queries available, "
                     f"{n} requested")


def registry_relation(patients: int = 6, cycles: int = 3,
                      seed: int = 11) -> EventRelation:
    """The event stream both contenders replay (lab-event heavy)."""
    return generate_chemo(patients=patients, cycles=cycles, seed=seed,
                          lab_events_per_cycle=60)


def _match_keys(matches) -> List[frozenset]:
    return sorted((frozenset((v, e.eid) for v, e in sub.bindings)
                   for sub in matches),
                  key=sorted)


def run_registry(relation: Optional[EventRelation] = None,
                 queries: Optional[Sequence[str]] = None) -> Dict:
    """Replay the stream through both contenders and time them.

    Both feed the same events to the same compiled plans; the registry
    run shares one admission pass, the baseline run offers every event
    to every pattern.  The per-pattern match sets are asserted equal
    before the row is returned.
    """
    if relation is None:
        relation = registry_relation()
    if queries is None:
        queries = registry_queries()
    patterns = {f"p{i}": parse_pattern(text)
                for i, text in enumerate(queries)}
    events: List[Event] = list(relation)

    def run_shared() -> Dict[str, List]:
        registry = PatternRegistry()
        for name, pattern in patterns.items():
            registry.register(pattern, pattern_id=name)
        registry.push_many(events)
        registry.close()
        return {name: registry.matches_of(name) for name in patterns}

    def run_independent() -> Dict[str, List]:
        matcher = MultiPatternMatcher(dict(patterns))
        matcher.push_many(events)
        matcher.close()
        return {name: matcher.matches(name) for name in patterns}

    independent_matches, independent_seconds = timed(run_independent)
    shared_matches, shared_seconds = timed(run_shared)
    for name in patterns:
        if _match_keys(shared_matches[name]) != _match_keys(
                independent_matches[name]):
            raise AssertionError(
                f"shared and independent runs disagree on {name}")

    registry = PatternRegistry()
    for name, pattern in patterns.items():
        registry.register(pattern, pattern_id=name)
    predicates = registry.predicate_count
    prefix_groups = registry.prefix_group_count
    registry.close()

    return {
        "patterns": len(patterns),
        "events": len(events),
        "predicates": predicates,
        "prefix_groups": prefix_groups,
        "independent_seconds": independent_seconds,
        "shared_seconds": shared_seconds,
        "speedup": (independent_seconds / shared_seconds
                    if shared_seconds else 0.0),
        "events_per_second": (len(events) / shared_seconds
                              if shared_seconds else 0.0),
        "matches": sum(len(m) for m in shared_matches.values()),
    }


def print_registry(row: Dict) -> None:
    """Render the registry comparison table."""
    print_table(
        ["patterns", "events", "preds", "groups", "independent s",
         "shared s", "speedup", "events/s", "matches"],
        [[row["patterns"], row["events"], row["predicates"],
          row["prefix_groups"], row["independent_seconds"],
          row["shared_seconds"], row["speedup"],
          row["events_per_second"], row["matches"]]],
        title="Pattern registry (many patterns, one admission pass)",
    )
    print()


def registry_snapshot(row: Dict) -> Dict[str, dict]:
    """The row as exportable gauges (``bench_registry_<field>``)."""
    snapshot: Dict[str, dict] = {}
    for field in ("independent_seconds", "shared_seconds", "speedup",
                  "events_per_second"):
        value = row[field]
        snapshot[f"bench_registry_{field}"] = {
            "type": "gauge", "value": value, "max": value}
    return snapshot
