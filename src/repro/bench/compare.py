"""Compare two benchmark metric snapshots for regressions.

CI's benchmark gate runs ``python -m repro.bench quick --metrics-out``
on both the PR head and ``main``, then feeds the two JSON-lines
snapshots through :func:`compare_snapshots` (via the
``benchmarks/compare_metrics.py`` wrapper).  A tracked metric that
moves in the bad direction by more than the threshold fails the gate.

Tracked metrics, by suffix of the series name:

* ``*_seconds`` — wall-clock timings, lower is better.  Timings whose
  baseline **and** head are below the noise floor (``min_seconds``) are
  skipped: micro-timings on shared CI runners jitter far beyond any
  real regression signal.
* ``*_events_per_second``, ``*_throughput``, ``*_speedup`` — rates,
  higher is better.

Everything else (instance counts, ratios, match counts) is compared for
information but never gates; those are correctness-tested elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .report import format_table

__all__ = ["Delta", "compare_snapshots", "format_report", "regressions",
           "metric_direction", "DEFAULT_THRESHOLD", "DEFAULT_MIN_SECONDS"]

#: Fractional change in the bad direction that fails the gate (25%).
DEFAULT_THRESHOLD = 0.25

#: Timings below this many seconds in both snapshots are pure noise.
DEFAULT_MIN_SECONDS = 0.05

_LOWER_IS_BETTER = ("_seconds",)
_HIGHER_IS_BETTER = ("_events_per_second", "_throughput", "_speedup")

#: Resilience and lineage metrics never gate regardless of suffix: the
#: former count injected faults and recovery work
#: (``ses_restart_backoff_seconds`` is cumulative sleep, not a run
#: timing); the latter measure the *observed stream* — the
#: ``ses_event_latency_*_seconds`` histograms track per-event pipeline
#: residence and the ``ses_lineage_*`` counters sampling volume, both a
#: function of workload and sample rate, so chaos runs or a raised
#: sample rate would otherwise read as performance regressions.
_NEVER_GATE_PREFIXES = ("ses_restart", "ses_quarantined", "ses_shed",
                        "ses_guard", "ses_degraded", "ses_event_latency",
                        "ses_lineage", "ses_backpressure", "ses_queue")


@dataclass
class Delta:
    """One metric's movement between the baseline and head snapshots."""

    name: str
    baseline: float
    head: float
    #: ``"lower"`` / ``"higher"`` (is better), or ``None`` if untracked.
    direction: Optional[str]
    #: Signed fractional change in the *bad* direction; positive means
    #: worse.  ``0.0`` for untracked metrics.
    change: float = 0.0
    regressed: bool = False

    @property
    def percent(self) -> float:
        return 100.0 * self.change


def metric_direction(name: str) -> Optional[str]:
    """Which way ``name`` should move, or ``None`` if it never gates."""
    if name.startswith(_NEVER_GATE_PREFIXES):
        return None
    if name.endswith(_LOWER_IS_BETTER):
        return "lower"
    if name.endswith(_HIGHER_IS_BETTER):
        return "higher"
    return None


def compare_snapshots(baseline: Dict[str, dict], head: Dict[str, dict],
                      threshold: float = DEFAULT_THRESHOLD,
                      min_seconds: float = DEFAULT_MIN_SECONDS
                      ) -> List[Delta]:
    """Compare gauge values present in *both* snapshots.

    Returns one :class:`Delta` per shared numeric series, sorted with
    regressions first (worst first), then tracked metrics by name, then
    untracked ones.  Metrics present in only one snapshot are ignored —
    a PR that adds or removes a benchmark must not trip the gate.
    """
    deltas: List[Delta] = []
    for name in sorted(set(baseline) & set(head)):
        base_rec, head_rec = baseline[name], head[name]
        if base_rec.get("type") == "stage" or head_rec.get("type") == "stage":
            continue
        try:
            base = float(base_rec["value"])
            new = float(head_rec["value"])
        except (KeyError, TypeError, ValueError):
            continue
        direction = metric_direction(name)
        delta = Delta(name=name, baseline=base, head=new,
                      direction=direction)
        if direction is not None:
            if direction == "lower" and max(base, new) < min_seconds:
                delta.direction = None  # below the noise floor
            elif base > 0:
                worse = (new - base) if direction == "lower" else (base - new)
                delta.change = worse / base
                delta.regressed = delta.change > threshold
        deltas.append(delta)
    deltas.sort(key=lambda d: (not d.regressed,
                               d.direction is None,
                               -d.change if d.regressed else 0.0,
                               d.name))
    return deltas


def regressions(deltas: List[Delta]) -> List[Delta]:
    """The subset of deltas that fail the gate."""
    return [d for d in deltas if d.regressed]


def format_report(deltas: List[Delta],
                  threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable comparison table plus a verdict line."""
    rows = []
    for d in deltas:
        if d.direction is None:
            verdict = "-"
        elif d.regressed:
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        rows.append([d.name, f"{d.baseline:.6g}", f"{d.head:.6g}",
                     f"{d.percent:+.1f}%" if d.direction else "",
                     verdict])
    table = format_table(
        ["metric", "baseline", "head", "worse by", "gate"], rows,
        title=f"benchmark comparison (gate at +{threshold:.0%})")
    bad = regressions(deltas)
    if bad:
        verdict = (f"FAIL: {len(bad)} metric(s) regressed more than "
                   f"{threshold:.0%}: " + ", ".join(d.name for d in bad))
    else:
        verdict = f"OK: no tracked metric regressed more than {threshold:.0%}"
    return f"{table}\n\n{verdict}"
