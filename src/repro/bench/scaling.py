"""Parallel scaling benchmark: speedup vs worker count.

Runs the partitioned Experiment-1 workload (Query-Q1-style same-patient
joins, so every variable equi-joins on ``ID``) through
:class:`~repro.parallel.pool.ParallelPartitionedMatcher` at increasing
pool sizes and reports throughput and speedup against the single-worker
run.  ``python -m repro.bench <profile> --workers N`` appends this to
the paper's three experiments; CI's benchmark gate tracks the resulting
``bench_scaling_*`` metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..data.workloads import DEFAULT_TAU, experiment1_pattern
from ..parallel import ParallelPartitionedMatcher
from .harness import timed
from .plots import series_chart
from .report import print_table

__all__ = ["scaling_pattern", "workers_ladder", "run_scaling",
           "print_scaling", "scaling_snapshot"]


def scaling_pattern(n_variables: int = 3, tau: int = DEFAULT_TAU
                    ) -> SESPattern:
    """The partitioned Experiment-1 pattern the scaling run uses.

    ``joins=True`` adds the same-patient equality conditions of Query
    Q1, which connect every variable through ``ID`` — the precondition
    for sound partition parallelism.
    """
    return experiment1_pattern(n_variables, exclusive=True, tau=tau,
                               joins=True)


def workers_ladder(max_workers: int) -> List[int]:
    """Worker counts to measure: powers of two up to ``max_workers``."""
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    ladder = [1]
    while ladder[-1] * 2 <= max_workers:
        ladder.append(ladder[-1] * 2)
    if ladder[-1] != max_workers:
        ladder.append(max_workers)
    return ladder


def run_scaling(relation: EventRelation,
                workers: Sequence[int] = (1, 2, 4),
                pattern: Optional[SESPattern] = None) -> List[Dict]:
    """Measure the parallel matcher at each worker count.

    Returns one row per worker count with wall-clock seconds, events per
    second, speedup vs the first (baseline) worker count, and the match
    count (which must not vary with the pool size — parallel execution
    is deterministic).
    """
    if pattern is None:
        pattern = scaling_pattern()
    rows: List[Dict] = []
    baseline_seconds = None
    for n in workers:
        matcher = ParallelPartitionedMatcher(pattern, workers=n)
        result, seconds = timed(matcher.run, relation)
        if baseline_seconds is None:
            baseline_seconds = seconds
        rows.append({
            "workers": n,
            "seconds": seconds,
            "events_per_second": len(relation) / seconds if seconds else 0.0,
            "speedup": baseline_seconds / seconds if seconds else 0.0,
            "matches": len(result.matches),
        })
    match_counts = {row["matches"] for row in rows}
    if len(match_counts) > 1:
        raise AssertionError(
            f"parallel runs disagree on match count: {sorted(match_counts)}")
    return rows


def print_scaling(rows: Sequence[Dict]) -> None:
    """Render the scaling table and the speedup curve."""
    print_table(
        ["workers", "seconds", "events/s", "speedup", "matches"],
        [[r["workers"], r["seconds"], r["events_per_second"], r["speedup"],
          r["matches"]] for r in rows],
        title="Parallel scaling (partitioned Experiment-1 workload)",
    )
    x = [str(r["workers"]) for r in rows]
    print(series_chart(
        x,
        [("speedup vs 1 worker", [r["speedup"] for r in rows])],
        title="Speedup vs worker count",
    ))
    print()


def scaling_snapshot(rows: Sequence[Dict]) -> Dict[str, dict]:
    """Scaling rows as exportable gauges (``bench_scaling_w<n>_<field>``)."""
    snapshot: Dict[str, dict] = {}
    for row in rows:
        tag = f"w{row['workers']}"
        for field in ("seconds", "events_per_second", "speedup"):
            value = row[field]
            snapshot[f"bench_scaling_{tag}_{field}"] = {
                "type": "gauge", "value": value, "max": value}
    return snapshot
