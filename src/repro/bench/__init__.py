"""Benchmark harness for the paper's evaluation (Section 5)."""

from .aggregation import (aggregation_snapshot, print_aggregation,
                          run_aggregation)
from .experiments import (print_experiment1, print_experiment2,
                          print_experiment3, run_experiment1, run_experiment2,
                          run_experiment3)
from .harness import (PROFILES, Profile, measured, resolve_profile,
                      rows_to_snapshot, timed)
from .plots import bar_chart, series_chart
from .report import format_table, print_table

__all__ = [
    "PROFILES", "Profile", "aggregation_snapshot", "bar_chart",
    "format_table", "measured", "print_aggregation", "print_experiment1",
    "print_experiment2", "print_experiment3", "print_table",
    "resolve_profile", "rows_to_snapshot", "run_aggregation",
    "run_experiment1", "run_experiment2", "run_experiment3", "series_chart",
    "timed",
]
