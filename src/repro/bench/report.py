"""Plain-text reporting of benchmark results, paper-style."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "print_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    cells: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                title: str = "") -> None:
    """Print :func:`format_table` output (with surrounding blank lines)."""
    print()
    print(format_table(headers, rows, title=title))
    print()
