"""Plan-cache benchmark: compile-once vs compile-per-call.

The workload the :mod:`repro.plan` subsystem targets: one pattern
matched against **many** small relations (per-patient extracts, per-day
slices, streaming micro-batches).  Without the cache every ``match()``
call pays powerset-automaton construction, trimming and prefilter
compilation; with it the plan is built once and every later call is a
fingerprint lookup.  ``python -m repro.bench`` always runs this and CI's
benchmark gate tracks the resulting ``bench_plan_cache_*`` metrics
(``*_seconds`` lower-better, ``*_speedup`` higher-better).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..data.chemo import generate_chemo
from ..plan import clear_plan_cache, compile, plan_cache
from .harness import timed
from .report import print_table
from .scaling import scaling_pattern

__all__ = ["plan_cache_relations", "run_plan_cache", "print_plan_cache",
           "plan_cache_snapshot"]

#: Number of small relations the pattern is matched against.
DEFAULT_RELATIONS = 50


def plan_cache_relations(n: int = DEFAULT_RELATIONS) -> List[EventRelation]:
    """``n`` small independent relations (one two-patient extract each)."""
    return [generate_chemo(patients=2, cycles=1, seed=seed,
                           lab_events_per_cycle=10)
            for seed in range(n)]


def run_plan_cache(relations: Optional[Sequence[EventRelation]] = None,
                   pattern: Optional[SESPattern] = None) -> Dict:
    """Time ``match()`` over every relation, cached vs uncached.

    The uncached loop compiles the pattern per call
    (``compile(pattern, cache=False)``); the cached loop compiles once
    through the process-global cache and hits it thereafter.  Returns a
    row with both timings, the speedup, and the (asserted equal) match
    counts.
    """
    if relations is None:
        relations = plan_cache_relations()
    if pattern is None:
        pattern = scaling_pattern(5)

    def run_uncached() -> List[int]:
        counts = []
        for relation in relations:
            plan = compile(pattern, cache=False)
            counts.append(len(plan.match(relation).matches))
        return counts

    def run_cached() -> List[int]:
        counts = []
        for relation in relations:
            plan = compile(pattern)
            counts.append(len(plan.match(relation).matches))
        return counts

    uncached_counts, uncached_seconds = timed(run_uncached)
    clear_plan_cache()
    before = plan_cache().stats()
    cached_counts, cached_seconds = timed(run_cached)
    after = plan_cache().stats()
    if cached_counts != uncached_counts:
        raise AssertionError(
            f"cached and uncached runs disagree: {cached_counts} != "
            f"{uncached_counts}")
    return {
        "relations": len(relations),
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": (uncached_seconds / cached_seconds
                    if cached_seconds else 0.0),
        "matches": sum(cached_counts),
        "cache_hits": after["hits"] - before["hits"],
        "cache_misses": after["misses"] - before["misses"],
    }


def print_plan_cache(row: Dict) -> None:
    """Render the plan-cache comparison table."""
    print_table(
        ["relations", "uncached s", "cached s", "speedup", "matches",
         "hits", "misses"],
        [[row["relations"], row["uncached_seconds"], row["cached_seconds"],
          row["speedup"], row["matches"], row["cache_hits"],
          row["cache_misses"]]],
        title="Plan cache (one pattern, many relations)",
    )
    print()


def plan_cache_snapshot(row: Dict) -> Dict[str, dict]:
    """The row as exportable gauges (``bench_plan_cache_<field>``)."""
    snapshot: Dict[str, dict] = {}
    for field in ("uncached_seconds", "cached_seconds", "speedup"):
        value = row[field]
        snapshot[f"bench_plan_cache_{field}"] = {
            "type": "gauge", "value": value, "max": value}
    return snapshot
