"""The paper's three experiments as reusable functions (Section 5).

Each ``run_experiment*`` function executes the measurements and returns
row dictionaries; each ``print_experiment*`` renders them like the
paper's figures/tables.  The benchmark scripts under ``benchmarks/`` wrap
these with pytest-benchmark timing; ``python -m repro.bench`` runs all
three and prints the full report.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..baseline.bruteforce import BruteForceMatcher
from ..core.relation import EventRelation
from ..data.workloads import (DEFAULT_TAU, duplicated_datasets,
                              experiment1_pattern, pattern_p3, pattern_p4,
                              pattern_p5, pattern_p6)
from .harness import timed
from .plots import series_chart
from .report import print_table

__all__ = [
    "run_experiment1", "print_experiment1",
    "run_experiment2", "print_experiment2",
    "run_experiment3", "print_experiment3",
]


class _AcceptedRunner:
    """Cached plan bound to accepted-buffer selection, as the paper's
    measurements use; avoids routing benchmarks through the deprecated
    :class:`~repro.core.matcher.Matcher` shim."""

    def __init__(self, pattern, use_filter: bool = True,
                 filter_mode: str = "conjunctive"):
        from ..plan.cache import compile as compile_plan
        self._plan = compile_plan(pattern)
        self._use_filter = use_filter
        self._filter_mode = filter_mode

    def run(self, relation):
        executor = self._plan.executor(use_filter=self._use_filter,
                                       filter_mode=self._filter_mode,
                                       selection="accepted")
        return executor.run(relation)


# ----------------------------------------------------------------------
# Experiment 1 — SES vs brute force (Figure 11, Table 1)
# ----------------------------------------------------------------------
def run_experiment1(relation: EventRelation,
                    max_vars: int = 6,
                    exclusive_only: bool = False) -> List[Dict]:
    """Max simultaneous instances, SES vs brute force, |V1| = 2..max_vars.

    One row per (|V1|, pattern): P1 (mutually exclusive conditions) and,
    unless ``exclusive_only``, P2 (same-type conditions).  Both engines
    run with the Section 4.5 filter, as in the paper's setup.
    """
    rows: List[Dict] = []
    variants = [("P1", True)] if exclusive_only else [("P1", True), ("P2", False)]
    for n in range(2, max_vars + 1):
        for label, exclusive in variants:
            pattern = experiment1_pattern(n, exclusive=exclusive)
            ses_result, ses_seconds = timed(
                _AcceptedRunner(pattern).run, relation)
            bf = BruteForceMatcher(pattern, use_filter=True,
                                   selection="accepted")
            bf_result, bf_seconds = timed(bf.run, relation)
            rows.append({
                "pattern": label,
                "n_vars": n,
                "ses_instances": ses_result.stats.max_simultaneous_instances,
                "bf_instances": bf_result.stats.max_simultaneous_instances,
                "ses_seconds": ses_seconds,
                "bf_seconds": bf_seconds,
                "ratio": (bf_result.stats.max_simultaneous_instances
                          / max(1, ses_result.stats.max_simultaneous_instances)),
                "factorial": math.factorial(n - 1),
            })
    return rows


def print_experiment1(rows: Sequence[Dict]) -> None:
    """Figure 11 (instance counts) and Table 1 (ratios for P1)."""
    print_table(
        ["pattern", "|V1|", "|Ω| SES", "|Ω| BF", "SES s", "BF s"],
        [[r["pattern"], r["n_vars"], r["ses_instances"], r["bf_instances"],
          r["ses_seconds"], r["bf_seconds"]] for r in rows],
        title="Experiment 1 (Figure 11): max simultaneous automaton instances",
    )
    p1_rows = [r for r in rows if r["pattern"] == "P1"]
    p2_rows = [r for r in rows if r["pattern"] == "P2"]
    if p1_rows:
        x = [str(r["n_vars"]) for r in p1_rows]
        series = [("SES with P1", [r["ses_instances"] for r in p1_rows]),
                  ("BF with P1", [r["bf_instances"] for r in p1_rows])]
        if p2_rows:
            series = [
                ("SES with P2", [r["ses_instances"] for r in p2_rows]),
                ("BF with P2", [r["bf_instances"] for r in p2_rows]),
            ] + series
        print(series_chart(x, series, log=True,
                           title="Figure 11 (log scale): instances vs |V1|"))
        print()
    print_table(
        ["|V1|", "|Ω| BF", "|Ω| SES", "ratio BF/SES", "(|V1|-1)!"],
        [[r["n_vars"], r["bf_instances"], r["ses_instances"], r["ratio"],
          r["factorial"]] for r in p1_rows],
        title="Table 1: ratio of instance counts (pattern P1)",
    )


# ----------------------------------------------------------------------
# Experiment 2 — instance growth with window size (Figure 12)
# ----------------------------------------------------------------------
def run_experiment2(base: EventRelation,
                    factors: Sequence[int] = (1, 2, 3, 4, 5),
                    tau: int = DEFAULT_TAU) -> List[Dict]:
    """Max simultaneous instances of P3 (group var) and P4 (no group var)
    on the duplicated data sets D1..D5."""
    rows: List[Dict] = []
    p3 = _AcceptedRunner(pattern_p3(tau))
    p4 = _AcceptedRunner(pattern_p4(tau))
    for factor, relation in duplicated_datasets(base, factors).items():
        window = relation.window_size(tau)
        r3, s3 = timed(p3.run, relation)
        r4, s4 = timed(p4.run, relation)
        rows.append({
            "dataset": f"D{factor}",
            "window": window,
            "p3_instances": r3.stats.max_simultaneous_instances,
            "p4_instances": r4.stats.max_simultaneous_instances,
            "p3_seconds": s3,
            "p4_seconds": s4,
        })
    return rows


def print_experiment2(rows: Sequence[Dict]) -> None:
    """Figure 12: instances vs window size (P3 polynomial, P4 linear)."""
    print_table(
        ["dataset", "W", "|Ω| P3 (c,d,p+)", "|Ω| P4 (c,d,p)",
         "P3 s", "P4 s"],
        [[r["dataset"], r["window"], r["p3_instances"], r["p4_instances"],
          r["p3_seconds"], r["p4_seconds"]] for r in rows],
        title="Experiment 2 (Figure 12): instances vs window size",
    )
    x = [f"W={r['window']}" for r in rows]
    print(series_chart(
        x,
        [("SES with P3 (polynomial)", [r["p3_instances"] for r in rows]),
         ("SES with P4 (linear)", [r["p4_instances"] for r in rows])],
        title="Figure 12: instances vs window size",
    ))
    print()


# ----------------------------------------------------------------------
# Experiment 3 — effect of event filtering (Figure 13)
# ----------------------------------------------------------------------
def run_experiment3(base: EventRelation,
                    factors: Sequence[int] = (1, 2, 3, 4, 5),
                    tau: int = DEFAULT_TAU) -> List[Dict]:
    """Execution time of P5/P6 with and without the Section 4.5 filter,
    plus the statistics-ordered condition evaluation of a filterless
    adversarial P6 (largest data set only)."""
    rows: List[Dict] = []
    configurations = [
        ("P5", pattern_p5(tau)),
        ("P6", pattern_p6(tau)),
    ]
    matchers = {
        (label, filtered): _AcceptedRunner(pattern, use_filter=filtered,
                                           filter_mode="paper")
        for label, pattern in configurations
        for filtered in (False, True)
    }
    largest = None
    for factor, relation in duplicated_datasets(base, factors).items():
        row: Dict = {"dataset": f"D{factor}",
                     "window": relation.window_size(tau)}
        for label, _ in configurations:
            _, seconds_without = timed(matchers[(label, False)].run, relation)
            result, seconds_with = timed(matchers[(label, True)].run, relation)
            row[f"{label.lower()}_without"] = seconds_without
            row[f"{label.lower()}_with"] = seconds_with
            row[f"{label.lower()}_speedup"] = (
                seconds_without / seconds_with if seconds_with > 0 else float("inf")
            )
            row[f"{label.lower()}_filtered_events"] = result.stats.events_filtered
        rows.append(row)
        largest = relation
    if rows and largest is not None:
        rows[-1].update(_statsorder_measurement(largest, tau))
    return rows


def _statsorder_measurement(relation: EventRelation, tau: int) -> Dict:
    """Statistics-informed condition ordering on an adversarial P6.

    The chemo patterns already declare their cheap *selective* constant
    conditions first, so reordering them is a no-op.  The adversarial
    variant models the query-author anti-pattern selectivity ordering
    exists for: per-variable range guards that nearly always pass
    (``x.T >= 0`` …) declared before the selective label constants, so
    declaration order wastes three guard evaluations on every rejected
    event.  One calibration run over a counting automaton feeds a
    private :class:`~repro.explain.stats.StatsStore`; the timed
    comparison is declaration order vs statistics order, both
    filterless, so every event exercises the condition chains.
    """
    from ..core.pattern import SESPattern
    from ..explain import explain_analyze, ordered_plan
    from ..explain.stats import StatsStore
    from ..plan.cache import as_plan
    pattern = pattern_p6(tau)
    guards = []
    for group in pattern.sets:
        for variable in sorted(group, key=lambda v: v.name):
            guards.extend([f"{variable.name}.T >= 0",
                           f"{variable.name}.T <= 1000000000",
                           f"{variable.name}.T != -1"])
    adversarial = SESPattern(sets=[list(group) for group in pattern.sets],
                             conditions=guards + list(pattern.conditions),
                             tau=pattern.tau)
    store = StatsStore(autosave=False)
    explain_analyze(adversarial, relation, use_filter=False,
                    selection="accepted", store=store)
    declared = as_plan(adversarial)
    ordered = ordered_plan(declared, store=store)
    _, seconds_declared = timed(
        lambda: declared.match(relation, use_filter=False,
                               selection="accepted"))
    _, seconds_ordered = timed(
        lambda: ordered.match(relation, use_filter=False,
                              selection="accepted"))
    return {
        "p6_statsorder_without": seconds_declared,
        "p6_statsorder_with": seconds_ordered,
        "p6_statsorder_speedup": (seconds_declared / seconds_ordered
                                  if seconds_ordered > 0 else float("inf")),
    }


def print_experiment3(rows: Sequence[Dict]) -> None:
    """Figure 13: execution time with vs without event filtering."""
    print_table(
        ["dataset", "W", "P5 wo [s]", "P5 w [s]", "P5 ×", "P6 wo [s]",
         "P6 w [s]", "P6 ×"],
        [[r["dataset"], r["window"], r["p5_without"], r["p5_with"],
          r["p5_speedup"], r["p6_without"], r["p6_with"], r["p6_speedup"]]
         for r in rows],
        title="Experiment 3 (Figure 13): execution time with/without filtering",
    )
    x = [f"W={r['window']}" for r in rows]
    print(series_chart(
        x,
        [("P6 wo filter", [r["p6_without"] for r in rows]),
         ("P6 with filter", [r["p6_with"] for r in rows]),
         ("P5 wo filter", [r["p5_without"] for r in rows]),
         ("P5 with filter", [r["p5_with"] for r in rows])],
        log=True, unit=" s",
        title="Figure 13 (log scale): execution time",
    ))
    print()
    statsorder = [r for r in rows if "p6_statsorder_speedup" in r]
    if statsorder:
        print_table(
            ["dataset", "declared order [s]", "stats order [s]", "×"],
            [[r["dataset"], r["p6_statsorder_without"],
              r["p6_statsorder_with"], r["p6_statsorder_speedup"]]
             for r in statsorder],
            title="Statistics-ordered conditions (adversarial P6, "
                  "no filter)",
        )
