"""Compiled pattern plans: the compile-once / run-many seam.

A :class:`PatternPlan` bundles everything that is derivable from a SES
pattern alone — the built automaton with its transition tables trimmed
(:func:`repro.automaton.minimize.trim`), the Section 4.5 constant-
condition prefilter compiled to per-attribute predicate vectors for both
filter modes, the planner's applied rewrites, and the pattern's
canonical fingerprint.  Plans are immutable and picklable: parallel
workers receive the pickled plan instead of rebuilding the automaton,
and the process-global :class:`~repro.plan.cache.PlanCache` shares one
plan across every matcher that compiles an equal pattern.

Execution state never lives on the plan.  ``match`` / ``executor`` /
``stream`` hand out fresh executors and per-use filter adapters, so one
plan can serve any number of concurrent matchers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from ..automaton.automaton import SESAutomaton
from ..automaton.builder import build_automaton
from ..automaton.executor import MatchResult, SESExecutor
from ..automaton.minimize import trim
from ..core.events import Event
from ..core.options import resolve_option
from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from .fingerprint import aggregate_fingerprint, pattern_fingerprint
from .prefilter import FILTER_MODES, VectorizedPrefilter, popcount

__all__ = ["PatternPlan", "OPTIMIZATIONS", "DEFAULT_OPTIMIZATIONS",
           "build_plan"]

#: Optimizations :func:`repro.compile` knows about.  ``"trim"`` removes
#: provably dead transitions and unreachable states from the automaton
#: (result-preserving); ``"prefilter"`` enables the columnar admission
#: mask on batch runs (scalar filtering is used when disabled).
OPTIMIZATIONS = ("prefilter", "trim")
DEFAULT_OPTIMIZATIONS = ("prefilter", "trim")


def normalise_optimizations(optimizations) -> Tuple[str, ...]:
    """Validate and canonicalise an optimizations spec."""
    if optimizations is None:
        return DEFAULT_OPTIMIZATIONS
    out = tuple(sorted(set(optimizations)))
    unknown = [name for name in out if name not in OPTIMIZATIONS]
    if unknown:
        raise ValueError(
            f"unknown optimizations {unknown!r}; known: {OPTIMIZATIONS}")
    return out


def build_plan(pattern: SESPattern,
               optimizations: Optional[Iterable[str]] = None,
               fingerprint: Optional[str] = None,
               aggregate=None) -> "PatternPlan":
    """Compile ``pattern`` into a fresh :class:`PatternPlan` (no cache).

    ``aggregate`` (an :class:`~repro.agg.spec.AggregateSpec`) turns the
    plan into an aggregation plan: its executors fold incrementally
    instead of enumerating, and the fingerprint is suffixed so the plan
    cache never conflates it with the enumeration plan of the same
    pattern.
    """
    if not isinstance(pattern, SESPattern):
        raise TypeError(f"expected SESPattern, got {type(pattern).__name__}")
    optimizations = normalise_optimizations(optimizations)
    if fingerprint is None:
        fingerprint = pattern_fingerprint(pattern, optimizations)
        if aggregate is not None:
            fingerprint = aggregate_fingerprint(fingerprint, aggregate)
    if aggregate is not None:
        aggregate.validate(pattern)
    automaton = build_automaton(pattern)
    rewrites = []
    if "trim" in optimizations:
        report = trim(automaton)
        if not report.satisfiable or report.changed:
            rewrites.append(f"trim: {report.describe()}")
        if report.satisfiable:
            automaton = report.automaton
    prefilters = {mode: VectorizedPrefilter(pattern, mode)
                  for mode in FILTER_MODES}
    return PatternPlan(pattern=pattern, automaton=automaton,
                       fingerprint=fingerprint, optimizations=optimizations,
                       prefilters=prefilters, rewrites=tuple(rewrites),
                       aggregate=aggregate)


class PatternPlan:
    """An immutable, picklable compiled form of one SES pattern.

    Build plans with :func:`repro.compile` (which consults the process-
    global plan cache) rather than directly.  The run-time API:

    * :meth:`match` — batch execution over a relation, with the same
      options every matcher understands (``selection=``, ``consume=``,
      ``workers=``, ``partition_by=``, ``observability=``);
    * :meth:`executor` — a fresh incremental :class:`SESExecutor`;
    * :meth:`stream` — a continuous (optionally partitioned) matcher.
    """

    def __init__(self, pattern: SESPattern, automaton: SESAutomaton,
                 fingerprint: str, optimizations: Tuple[str, ...],
                 prefilters: Dict[str, VectorizedPrefilter],
                 rewrites: Tuple[str, ...] = (), aggregate=None):
        self._pattern = pattern
        self._automaton = automaton
        self._fingerprint = fingerprint
        self._optimizations = tuple(optimizations)
        self._prefilters = dict(prefilters)
        self._rewrites = tuple(rewrites)
        self._aggregate = aggregate

    # ------------------------------------------------------------------
    # Compile-time artifacts
    # ------------------------------------------------------------------
    @property
    def pattern(self) -> SESPattern:
        """The source pattern."""
        return self._pattern

    @property
    def automaton(self) -> SESAutomaton:
        """The built (and, with ``"trim"``, minimized) SES automaton."""
        return self._automaton

    @property
    def fingerprint(self) -> str:
        """The canonical cache key (pattern + optimizations)."""
        return self._fingerprint

    @property
    def optimizations(self) -> Tuple[str, ...]:
        """The optimizations the plan was compiled with."""
        return self._optimizations

    @property
    def rewrites(self) -> Tuple[str, ...]:
        """Human-readable descriptions of applied compile-time rewrites."""
        return self._rewrites

    @property
    def aggregate(self):
        """The :class:`~repro.agg.spec.AggregateSpec`, or ``None``."""
        return self._aggregate

    def prefilter(self, filter_mode: str = "conjunctive"
                  ) -> VectorizedPrefilter:
        """The compiled constant-condition prefilter for one mode."""
        try:
            return self._prefilters[filter_mode]
        except KeyError:
            raise ValueError(f"unknown filter mode {filter_mode!r}") from None

    def filter_handle(self, filter_mode: str = "conjunctive"):
        """A fresh scalar filter for one matcher (metrics-bindable)."""
        return self.prefilter(filter_mode).handle()

    # ------------------------------------------------------------------
    # Run-time API
    # ------------------------------------------------------------------
    def match(self, relation: Union[EventRelation, Iterable[Event]], *,
              use_filter: bool = True, filter_mode: str = "conjunctive",
              selection: str = "paper", consume: Optional[str] = None,
              workers: int = 1, partition_by: Optional[str] = None,
              observability=None, record_history: bool = False,
              history_max_samples: Optional[int] = None,
              chunks_per_worker: int = 4,
              start_method: Optional[str] = None,
              consume_mode: Optional[str] = None, obs=None) -> MatchResult:
        """Run the plan over ``relation`` and return a :class:`MatchResult`.

        ``workers > 1`` fans partitions out over a process pool
        (:class:`~repro.parallel.pool.ParallelPartitionedMatcher`);
        ``partition_by`` forces serial partitioned execution; otherwise
        the plain executor runs, preceded — when the plan was compiled
        with the ``"prefilter"`` optimization — by the columnar
        admission-mask pass.
        """
        consume = resolve_option("PatternPlan.match", "consume", consume,
                                 "consume_mode", consume_mode,
                                 default="greedy")
        observability = resolve_option("PatternPlan.match", "observability",
                                       observability, "obs", obs)
        if workers is None or workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > 1:
            from ..parallel.pool import ParallelPartitionedMatcher
            matcher = ParallelPartitionedMatcher(
                self, partition_by=partition_by, workers=workers,
                use_filter=use_filter, selection=selection, consume=consume,
                chunks_per_worker=chunks_per_worker,
                start_method=start_method, observability=observability)
            return matcher.run(relation)
        if partition_by is not None:
            if self._aggregate is not None:
                return self._match_agg_partitioned(
                    relation, partition_by, use_filter=use_filter,
                    filter_mode=filter_mode, consume=consume)
            from ..automaton.optimizations import PartitionedMatcher
            matcher = PartitionedMatcher(self, partition_by=partition_by,
                                         use_filter=use_filter,
                                         selection=selection, consume=consume)
            return matcher.run(relation)
        events = list(relation)
        event_filter = None
        if use_filter:
            prefilter = self.prefilter(filter_mode)
            if "prefilter" in self._optimizations:
                mask = prefilter.admission_mask(events)
                event_filter = prefilter.cursor(mask, len(events))
                if observability is not None and events:
                    admitted = popcount(mask)
                    observability.registry.gauge(
                        "ses_prefilter_selectivity",
                        help="fraction of the batch rejected by the "
                             "vectorized pre-filter",
                    ).set(1.0 - admitted / len(events))
            else:
                event_filter = prefilter.handle()
        executor = SESExecutor(self._automaton, event_filter=event_filter,
                               selection=selection, consume_mode=consume,
                               obs=observability,
                               record_history=record_history,
                               history_max_samples=history_max_samples,
                               aggregate=self._aggregate)
        return executor.run(events)

    def _match_agg_partitioned(self, relation, partition_by, *,
                               use_filter: bool, filter_mode: str,
                               consume: str) -> MatchResult:
        """Serial per-partition aggregation: fold each partition with a
        fresh executor and merge the partial snapshots (the same merge
        the process pool and the sharded runtime use)."""
        from ..agg.engine import merge_snapshots
        from ..agg.result import AggregateSeries
        from ..automaton.metrics import ExecutionStats
        partitions: Dict = {}
        for event in relation:
            partitions.setdefault(event.get(partition_by), []).append(event)
        total = ExecutionStats()
        snapshot = None
        for key in sorted(partitions, key=str):
            executor = self.executor(use_filter=use_filter,
                                     filter_mode=filter_mode,
                                     consume=consume)
            result = executor.run(partitions[key])
            total.merge(result.stats)
            snapshot = merge_snapshots(self._aggregate, snapshot,
                                       executor.aggregate_snapshot())
        series = AggregateSeries(self._aggregate, snapshot, stats=total)
        return MatchResult(matches=[], accepted=[], stats=total,
                           aggregates=series)

    def executor(self, *, use_filter: bool = True,
                 filter_mode: str = "conjunctive", selection: str = "paper",
                 consume: Optional[str] = None,
                 expire_on_filtered: bool = False, observability=None,
                 record_history: bool = False,
                 history_max_samples: Optional[int] = None, tracer=None,
                 flight=None, guard=None,
                 consume_mode: Optional[str] = None, obs=None) -> SESExecutor:
        """A fresh incremental executor over the compiled automaton."""
        consume = resolve_option("PatternPlan.executor", "consume", consume,
                                 "consume_mode", consume_mode,
                                 default="greedy")
        observability = resolve_option("PatternPlan.executor",
                                       "observability", observability,
                                       "obs", obs)
        event_filter = self.filter_handle(filter_mode) if use_filter else None
        if flight is not None:
            flight.note_plan(self._fingerprint)
        return SESExecutor(self._automaton, event_filter=event_filter,
                           selection=selection,
                           expire_on_filtered=expire_on_filtered,
                           consume_mode=consume, tracer=tracer,
                           obs=observability, record_history=record_history,
                           history_max_samples=history_max_samples,
                           flight=flight, guard=guard,
                           aggregate=self._aggregate)

    def stream(self, *, use_filter: bool = True,
               suppress_overlaps: bool = True,
               partition_by: Optional[str] = None, observability=None,
               flight=None, guard=None, obs=None):
        """A continuous matcher over this plan.

        Returns a :class:`~repro.stream.runner.ContinuousMatcher`, or —
        with ``partition_by`` — a
        :class:`~repro.stream.partitioned.PartitionedContinuousMatcher`
        routing events to per-key matchers that all share this plan.
        """
        observability = resolve_option("PatternPlan.stream", "observability",
                                       observability, "obs", obs)
        if partition_by is not None:
            from ..stream.partitioned import PartitionedContinuousMatcher
            return PartitionedContinuousMatcher(
                self, partition_by=partition_by, use_filter=use_filter,
                suppress_overlaps=suppress_overlaps,
                observability=observability, flight=flight, guard=guard)
        from ..stream.runner import ContinuousMatcher
        return ContinuousMatcher(self, use_filter=use_filter,
                                 suppress_overlaps=suppress_overlaps,
                                 observability=observability, flight=flight,
                                 guard=guard)

    # ------------------------------------------------------------------
    # Introspection and plumbing
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line summary: fingerprint, sizes, rewrites, prefilter."""
        automaton = self._automaton
        lines = [
            f"plan {self._fingerprint[:12]} for {self._pattern!r}",
            f"  optimizations: {', '.join(self._optimizations) or 'none'}",
        ]
        if self._aggregate is not None:
            lines.append(
                f"  aggregate: {self._aggregate.render()} "
                f"(incremental fold, no match materialisation)")
        lines += [
            f"  automaton: {len(automaton.states)} states, "
            f"{len(automaton.transitions)} transitions",
        ]
        for mode in FILTER_MODES:
            lines.append(f"  prefilter[{mode}]: {self._prefilters[mode]!r}")
        for rewrite in self._rewrites:
            lines.append(f"  rewrite: {rewrite}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternPlan):
            return NotImplemented
        return self._fingerprint == other._fingerprint

    def __hash__(self) -> int:
        return hash(self._fingerprint)

    def __repr__(self) -> str:
        return (f"PatternPlan({self._fingerprint[:12]}, "
                f"optimizations={self._optimizations!r})")
