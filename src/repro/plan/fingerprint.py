"""Canonical pattern fingerprints for the plan cache.

A fingerprint is a SHA-256 digest over a *canonical* encoding of a SES
pattern plus the optimization set a plan was compiled with.  Canonical
means the encoding is invariant under everything
:meth:`repro.core.pattern.SESPattern.__eq__` is invariant under:

* variables inside one event set pattern are sorted (sets are unordered);
* conditions are sorted by their canonical token (pattern equality
  compares the *set* of conditions — declaration order only affects
  evaluation order, never results);
* numeric constants and the window ``tau`` are normalised through
  :class:`fractions.Fraction`, so ``264`` and ``264.0`` — which compare
  equal and therefore build identical automata — fingerprint identically
  (``bool`` is an ``int`` in Python, so ``True`` normalises like ``1``,
  again matching ``==``).

Equal patterns compiled with equal optimizations are guaranteed to
collide; differing patterns are guaranteed (up to SHA-256) not to.  For
exotic constant types without a faithful ``repr`` the encoding falls
back to ``repr`` and may tell equal values apart — that only costs a
cache miss, never a wrong plan.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Tuple

from ..core.conditions import Attr, Condition, Const
from ..core.pattern import SESPattern

__all__ = ["pattern_fingerprint", "aggregate_fingerprint",
           "FINGERPRINT_VERSION"]

#: Bump when the canonical encoding (or plan layout) changes; old
#: fingerprints then stop matching, which invalidates stale caches.
FINGERPRINT_VERSION = 1


def _value_token(value) -> Tuple:
    """A canonical, sortable token for a constant value."""
    if isinstance(value, (bool, int, float)):
        try:
            return ("num", str(Fraction(value)))
        except (ValueError, OverflowError):  # nan / inf
            return ("num", repr(value))
    if isinstance(value, str):
        return ("str", value)
    return ("obj", type(value).__module__, type(value).__qualname__,
            repr(value))


def _operand_token(operand) -> Tuple:
    if isinstance(operand, Const):
        return ("const",) + _value_token(operand.value)
    if isinstance(operand, Attr):
        return ("attr", operand.variable.name, operand.variable.is_group,
                operand.attribute)
    raise TypeError(f"unknown operand {operand!r}")  # pragma: no cover


def _condition_token(condition: Condition) -> Tuple:
    return (_operand_token(condition.left), condition.op,
            _operand_token(condition.right))


def _canonical(pattern: SESPattern,
               optimizations: Tuple[str, ...]) -> Tuple:
    sets = tuple(
        tuple(sorted((v.name, v.is_group) for v in event_set))
        for event_set in pattern.sets
    )
    conditions = tuple(sorted(
        _condition_token(c) for c in pattern.conditions))
    return ("ses-plan", FINGERPRINT_VERSION, sets, conditions,
            _value_token(pattern.tau), tuple(sorted(optimizations)))


def pattern_fingerprint(pattern: SESPattern,
                        optimizations: Tuple[str, ...] = ()) -> str:
    """The canonical SHA-256 fingerprint of ``pattern`` + optimizations.

    Memoised on the pattern instance (patterns are immutable), so
    repeated :func:`repro.compile` calls with the same object reduce to
    a dict lookup.
    """
    optimizations = tuple(sorted(optimizations))
    memo = pattern.__dict__.setdefault("_fingerprint_memo", {})
    cached = memo.get(optimizations)
    if cached is None:
        payload = repr(_canonical(pattern, optimizations))
        cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        memo[optimizations] = cached
    return cached


def aggregate_fingerprint(base: str, aggregate) -> str:
    """Suffix a plan fingerprint with an aggregate spec's canonical token.

    Aggregate plans must not collide with enumeration plans of the same
    pattern in the plan cache (they execute differently), so the base
    fingerprint is re-digested together with the spec's canonical token.
    The result stays a 64-hex SHA-256 digest.
    """
    payload = f"{base}|agg{FINGERPRINT_VERSION}|{aggregate.canonical()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
