"""The Section 4.5 constant-condition pre-filter, compiled.

:class:`~repro.automaton.filtering.EventFilter` re-derives the
per-variable constant conditions from the pattern on every construction
and evaluates them condition-object-by-condition-object per event.
:class:`VectorizedPrefilter` compiles the same conditions **once** into
per-attribute predicate vectors ``(attribute, op, constant)`` and offers
two evaluation paths:

* :meth:`admission_mask` — columnar batch evaluation: each attribute's
  "column" is walked once over the whole event batch, every predicate on
  that attribute is applied in the same pass, and the per-predicate bit
  masks (``bit i`` = event ``i``) are combined with ``&``/``|`` exactly
  as the filter's boolean structure dictates.  The result is one Python
  big-int admission mask computed *before* the per-event instance loop.
* :meth:`admits` — the scalar per-event check, identical in outcome to
  :meth:`EventFilter.admits` (missing attributes and incomparable values
  count as ``False``; the ``"paper"`` mode disables itself when any
  variable carries no constant condition).

Plans are shared (cached, pickled to workers), so the prefilter itself
is never mutated at match time; per-use state — metric binding, the
sequential mask cursor — lives in the small :class:`PrefilterHandle` and
:class:`MaskCursor` adapters instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.conditions import OPERATORS
from ..core.events import Event
from ..core.pattern import SESPattern

__all__ = ["VectorizedPrefilter", "PrefilterHandle", "MaskCursor",
           "FILTER_MODES"]

#: Supported filter modes (see :mod:`repro.automaton.filtering`).
FILTER_MODES = ("paper", "conjunctive")

#: Sentinel distinguishing "attribute absent" from any real value.
_MISSING = object()

#: One compiled predicate: ``(attribute, operator name, constant)``.
Predicate = Tuple[str, str, object]


def popcount(mask: int) -> int:
    """Number of set bits (admitted events) in an admission mask."""
    return bin(mask).count("1")


class VectorizedPrefilter:
    """A pattern's constant conditions, compiled to predicate vectors.

    The boolean structure mirrors :class:`EventFilter` exactly:

    * ``"conjunctive"`` — an event passes iff *some variable's* predicates
      all hold (a variable without constant conditions admits everything);
    * ``"paper"`` — an event passes iff *any* predicate holds, but only
      when every variable has at least one constant condition (otherwise
      the filter is a pass-through, like the published filter).
    """

    def __init__(self, pattern: SESPattern, mode: str = "conjunctive"):
        if mode not in FILTER_MODES:
            raise ValueError(f"unknown filter mode {mode!r}")
        self.mode = mode
        predicates: List[Predicate] = []
        groups: List[Tuple[int, ...]] = []
        for variable in sorted(pattern.variables):
            ids = []
            for condition in pattern.constant_conditions(variable):
                ids.append(len(predicates))
                predicates.append((condition.left.attribute, condition.op,
                                   condition.right.value))
            groups.append(tuple(ids))
        self._predicates: Tuple[Predicate, ...] = tuple(predicates)
        self._groups: Tuple[Tuple[int, ...], ...] = tuple(groups)
        # Predicate ids per attribute: the columnar layout.
        by_attribute: Dict[str, List[int]] = {}
        for pid, (attribute, _, _) in enumerate(self._predicates):
            by_attribute.setdefault(attribute, []).append(pid)
        self._by_attribute: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(
            (attribute, tuple(ids))
            for attribute, ids in by_attribute.items())
        unconstrained = any(not ids for ids in groups)
        if mode == "paper" and unconstrained:
            self._effective = False
        else:
            self._effective = bool(groups)

    @property
    def is_effective(self) -> bool:
        """False iff the filter passes every event (no pruning possible)."""
        return self._effective

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """The compiled ``(attribute, op, constant)`` predicate vector."""
        return self._predicates

    # ------------------------------------------------------------------
    # Scalar path (streaming, incremental executors)
    # ------------------------------------------------------------------
    def admits(self, event: Event) -> bool:
        """True iff ``event`` may be relevant to some variable."""
        if not self._effective:
            return True
        predicates = self._predicates
        if self.mode == "paper":
            return any(self._holds(predicates[pid], event)
                       for pid in range(len(predicates)))
        for ids in self._groups:
            if all(self._holds(predicates[pid], event) for pid in ids):
                return True
        return False

    @staticmethod
    def _holds(predicate: Predicate, event: Event) -> bool:
        attribute, op, constant = predicate
        value = event.get(attribute, _MISSING)
        if value is _MISSING:
            return False
        try:
            return bool(OPERATORS[op](value, constant))
        except TypeError:
            return False

    # ------------------------------------------------------------------
    # Columnar path (batch execution)
    # ------------------------------------------------------------------
    def admission_mask(self, events) -> int:
        """The admission bitmask over an event batch (bit i = event i).

        Each attribute column is walked once; all predicates on that
        attribute evaluate in the same pass.  Per-predicate masks then
        combine AND-within-variable / OR-across-variables (conjunctive)
        or OR-over-everything (paper), matching :meth:`admits` bit for
        bit.
        """
        n = len(events)
        full = (1 << n) - 1
        if not self._effective or not n:
            return full
        masks = [0] * len(self._predicates)
        operators = OPERATORS
        predicates = self._predicates
        for attribute, ids in self._by_attribute:
            bit = 1
            for event in events:
                value = event.get(attribute, _MISSING)
                if value is not _MISSING:
                    for pid in ids:
                        op, constant = predicates[pid][1], predicates[pid][2]
                        try:
                            if operators[op](value, constant):
                                masks[pid] |= bit
                        except TypeError:
                            pass
                bit <<= 1
        if self.mode == "paper":
            out = 0
            for mask in masks:
                out |= mask
            return out
        out = 0
        for ids in self._groups:
            if not ids:
                return full  # an unconstrained variable admits everything
            group = full
            for pid in ids:
                group &= masks[pid]
            out |= group
            if out == full:
                break
        return out

    # ------------------------------------------------------------------
    # Per-use adapters
    # ------------------------------------------------------------------
    def handle(self) -> "PrefilterHandle":
        """A fresh scalar filter handle (safe to bind metrics to)."""
        return PrefilterHandle(self)

    def cursor(self, mask: int, n_events: int) -> "MaskCursor":
        """A sequential cursor over a precomputed admission mask."""
        return MaskCursor(self, mask, n_events)

    def __repr__(self) -> str:
        state = "effective" if self._effective else "pass-through"
        return (f"VectorizedPrefilter(mode={self.mode!r}, "
                f"{len(self._predicates)} predicates, {state})")


class _FilterAdapter:
    """Shared plumbing: the executor-facing filter protocol.

    Executors call :meth:`admits` once per input event and — when
    instrumented — :meth:`bind_metrics` first.  Binding swaps
    :meth:`admits` for a counting wrapper *on the adapter instance*, so
    the shared plan is never mutated and unbound matching pays nothing.
    """

    def __init__(self, prefilter: VectorizedPrefilter):
        self.prefilter = prefilter
        self._admitted_counter = None
        self._rejected_counter = None

    @property
    def mode(self) -> str:
        return self.prefilter.mode

    @property
    def is_effective(self) -> bool:
        return self.prefilter.is_effective

    def admits(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def bind_metrics(self, registry) -> "_FilterAdapter":
        """Report admitted/rejected counts to an obs registry.

        Same counter names as :class:`EventFilter`, so instrumented runs
        look identical whichever filter implementation served them.
        """
        self._admitted_counter = registry.counter(
            "ses_filter_admitted_total",
            help="events admitted by the Section 4.5 pre-filter")
        self._rejected_counter = registry.counter(
            "ses_filter_rejected_total",
            help="events rejected by the Section 4.5 pre-filter")
        unbound = type(self).admits
        self.admits = lambda event: self._admits_counted(unbound, event)
        return self

    def _admits_counted(self, unbound, event: Event) -> bool:
        ok = unbound(self, event)
        counter = self._admitted_counter if ok else self._rejected_counter
        counter.inc()
        return ok


class PrefilterHandle(_FilterAdapter):
    """Scalar per-use view of a shared :class:`VectorizedPrefilter`."""

    def admits(self, event: Event) -> bool:
        return self.prefilter.admits(event)

    def __repr__(self) -> str:
        return f"PrefilterHandle({self.prefilter!r})"


class MaskCursor(_FilterAdapter):
    """Sequential reader over a precomputed admission mask.

    The batch path computes the mask columnar up front; the executor
    still calls ``admits`` once per event in input order, and the cursor
    answers from the mask bit by bit — counters, stats and control flow
    stay bit-identical to scalar filtering.
    """

    def __init__(self, prefilter: VectorizedPrefilter, mask: int,
                 n_events: int):
        super().__init__(prefilter)
        self._mask = mask
        self._n_events = n_events
        self._position = 0

    def admits(self, event: Event) -> bool:
        position = self._position
        if position >= self._n_events:  # defensive: past the batch
            return self.prefilter.admits(event)
        self._position = position + 1
        return bool((self._mask >> position) & 1)

    def __repr__(self) -> str:
        return (f"MaskCursor({self._position}/{self._n_events}, "
                f"{popcount(self._mask)} admitted)")
