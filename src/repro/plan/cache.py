"""The process-global plan cache and the :func:`compile` entry point.

Compiling a SES pattern — powerset automaton construction, trimming,
prefilter compilation — costs orders of magnitude more than matching it
over a small relation, and real deployments run a handful of patterns
against many relations (the paper's own Experiments 1–3 do exactly
that).  :class:`PlanCache` is a bounded, thread-safe LRU keyed by the
pattern's canonical fingerprint; :func:`compile` consults the process-
global instance so every matcher in the process — including the ones
the parallel pools build in worker processes — shares one compiled
:class:`~repro.plan.plan.PatternPlan` per distinct pattern.

Size the global cache with the ``REPRO_PLAN_CACHE_SIZE`` environment
variable (default 128 plans) or :func:`set_plan_cache_size` at runtime.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..core.pattern import SESPattern
from .fingerprint import aggregate_fingerprint, pattern_fingerprint
from .plan import PatternPlan, build_plan, normalise_optimizations

__all__ = ["PlanCache", "compile", "as_plan", "plan_cache",
           "clear_plan_cache", "set_plan_cache_size", "DEFAULT_CACHE_SIZE"]

#: Default bound of the process-global cache (plans, not bytes).
DEFAULT_CACHE_SIZE = 128


class PlanCache:
    """A bounded, thread-safe LRU cache of compiled pattern plans.

    Keys are canonical pattern fingerprints, so *equal* patterns share
    one plan no matter how many distinct :class:`SESPattern` objects
    spell them.  Eviction is least-recently-used; ``maxsize`` bounds the
    number of retained plans.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._lock = threading.RLock()
        self._plans: "OrderedDict[str, PatternPlan]" = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> Optional[PatternPlan]:
        """The cached plan for ``fingerprint``, or ``None`` (counted)."""
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is None:
                self._misses += 1
                return None
            self._plans.move_to_end(fingerprint)
            self._hits += 1
            return plan

    def get_or_build(self, fingerprint: str,
                     builder: Callable[[], PatternPlan]
                     ) -> Tuple[PatternPlan, bool]:
        """``(plan, hit)`` — building and inserting on a miss."""
        with self._lock:
            plan = self.lookup(fingerprint)
            if plan is not None:
                return plan, True
            plan = builder()
            self._insert(fingerprint, plan)
            return plan, False

    def seed(self, plan: PatternPlan) -> PatternPlan:
        """Install ``plan`` unless an equal one is cached; return the
        canonical instance.

        Used by pool workers: the parent ships a pickled plan, the
        worker seeds its own global cache so later compiles of the same
        pattern hit instead of rebuilding.  Does not count as a hit or a
        miss.
        """
        with self._lock:
            cached = self._plans.get(plan.fingerprint)
            if cached is not None:
                self._plans.move_to_end(plan.fingerprint)
                return cached
            self._insert(plan.fingerprint, plan)
            return plan

    def _insert(self, fingerprint: str, plan: PatternPlan) -> None:
        self._plans[fingerprint] = plan
        self._plans.move_to_end(fingerprint)
        while len(self._plans) > self._maxsize:
            self._plans.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached plan (counters keep accumulating)."""
        with self._lock:
            self._plans.clear()

    def resize(self, maxsize: int) -> None:
        """Change the bound, evicting LRU entries if now over it."""
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        with self._lock:
            self._maxsize = maxsize
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
                self._evictions += 1

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "evictions": self._evictions, "size": len(self._plans),
                    "maxsize": self._maxsize}

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    def __repr__(self) -> str:
        s = self.stats()
        return (f"PlanCache({s['size']}/{s['maxsize']} plans, "
                f"{s['hits']} hits, {s['misses']} misses)")


def _initial_size() -> int:
    raw = os.environ.get("REPRO_PLAN_CACHE_SIZE", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CACHE_SIZE


_GLOBAL_CACHE = PlanCache(_initial_size())


def plan_cache() -> PlanCache:
    """The process-global plan cache."""
    return _GLOBAL_CACHE


def clear_plan_cache() -> None:
    """Drop every plan from the process-global cache."""
    _GLOBAL_CACHE.clear()


def set_plan_cache_size(maxsize: int) -> None:
    """Re-bound the process-global cache (evicts LRU plans if needed)."""
    _GLOBAL_CACHE.resize(maxsize)


def compile(pattern, *, optimizations=None, cache=True,
            observability=None, aggregate=None) -> PatternPlan:
    """Compile ``pattern`` into a :class:`PatternPlan`.

    Parameters
    ----------
    pattern:
        A :class:`SESPattern` — or an existing :class:`PatternPlan`,
        which is returned as-is (so every API taking a pattern also
        takes a plan).
    optimizations:
        Iterable of optimization names (default: all of
        :data:`~repro.plan.plan.OPTIMIZATIONS`).  Part of the cache key.
    cache:
        ``True`` uses the process-global :class:`PlanCache`; ``False``
        always rebuilds; a :class:`PlanCache` instance uses that cache.
    observability:
        Optional :class:`repro.obs.Observability` bundle; compilation
        reports ``ses_plan_cache_hits_total`` /
        ``ses_plan_cache_misses_total`` and the cache occupancy gauge.
    aggregate:
        Optional :class:`~repro.agg.spec.AggregateSpec`.  Produces an
        aggregation plan whose executors fold incrementally instead of
        enumerating matches; the fingerprint (and so the cache key) is
        suffixed with the spec, keeping aggregate and enumeration plans
        of the same pattern distinct.
    """
    if isinstance(pattern, PatternPlan):
        return pattern
    if not isinstance(pattern, SESPattern):
        raise TypeError(
            f"expected SESPattern or PatternPlan, got "
            f"{type(pattern).__name__}")
    optimizations = normalise_optimizations(optimizations)
    fingerprint = pattern_fingerprint(pattern, optimizations)
    if aggregate is not None:
        fingerprint = aggregate_fingerprint(fingerprint, aggregate)
    store: Optional[PlanCache]
    if cache is True:
        store = _GLOBAL_CACHE
    elif cache is False or cache is None:
        store = None
    else:
        store = cache
    if store is None:
        plan, hit = build_plan(pattern, optimizations, fingerprint,
                               aggregate=aggregate), False
    else:
        plan, hit = store.get_or_build(
            fingerprint,
            lambda: build_plan(pattern, optimizations, fingerprint,
                               aggregate=aggregate))
    if observability is not None:
        registry = observability.registry
        hits = registry.counter(
            "ses_plan_cache_hits_total", help="plan-cache hits on compile")
        misses = registry.counter(
            "ses_plan_cache_misses_total",
            help="plan-cache misses on compile (plan built)")
        (hits if hit else misses).inc()
        if store is not None:
            registry.gauge(
                "ses_plan_cache_size",
                help="plans held by the consulted plan cache",
            ).set(len(store))
    return plan


def as_plan(pattern) -> PatternPlan:
    """``pattern`` as a plan: compile (cached) unless already compiled."""
    if isinstance(pattern, PatternPlan):
        return pattern
    return compile(pattern)
