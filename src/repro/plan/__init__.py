"""Compile-once pattern plans (the ``repro.compile()`` subsystem).

The compile/run split: :func:`compile` turns a SES pattern into an
immutable, picklable :class:`PatternPlan` — built automaton, minimized
transition tables, the Section 4.5 prefilter compiled to per-attribute
predicate vectors, and the applied rewrites — cached process-globally
by the pattern's canonical fingerprint.  Every matcher in the engine
(batch, streaming, partitioned, pooled, sharded) executes plans; the
pattern-accepting entry points are thin wrappers that compile first.

Quickstart::

    import repro

    plan = repro.compile(pattern)          # cache hit after the first call
    result = plan.match(relation)          # batch, vectorized prefilter
    result = plan.match(relation, workers=4)   # partition-parallel
    live = plan.stream()                   # continuous matcher

See ``docs/plans.md`` for fingerprinting, cache sizing, and when the
vectorized prefilter wins.
"""

from .cache import (DEFAULT_CACHE_SIZE, PlanCache, as_plan, clear_plan_cache,
                    compile, plan_cache, set_plan_cache_size)
from .fingerprint import FINGERPRINT_VERSION, pattern_fingerprint
from .plan import (DEFAULT_OPTIMIZATIONS, OPTIMIZATIONS, PatternPlan,
                   build_plan)
from .prefilter import (FILTER_MODES, MaskCursor, PrefilterHandle,
                        VectorizedPrefilter)

__all__ = [
    "DEFAULT_CACHE_SIZE", "DEFAULT_OPTIMIZATIONS", "FILTER_MODES",
    "FINGERPRINT_VERSION", "MaskCursor", "OPTIMIZATIONS", "PatternPlan",
    "PlanCache", "PrefilterHandle", "VectorizedPrefilter", "as_plan",
    "build_plan", "clear_plan_cache", "compile", "pattern_fingerprint",
    "plan_cache", "set_plan_cache_size",
]
