"""Event tables: the storage unit of the embedded event store.

An :class:`EventTable` is an append-only, time-ordered log of events with
a declared schema, a time index, and optional per-attribute hash indexes.
It plays the role the Oracle ``Event`` relation plays in the paper's
experimental setup.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.events import Event, EventSchema, SchemaError
from ..core.relation import EventRelation
from .index import HashIndex, TimeIndex

__all__ = ["EventTable"]


class EventTable:
    """A named, schema-validated, time-ordered event table.

    Parameters
    ----------
    name:
        Table name.
    schema:
        Schema every inserted event must satisfy.
    indexes:
        Names of non-temporal attributes to maintain hash indexes on.
    """

    def __init__(self, name: str, schema: EventSchema,
                 indexes: Iterable[str] = ()):
        self.name = name
        self.schema = schema
        self._rows: List[Event] = []
        self._time_index = TimeIndex()
        self._hash_indexes: Dict[str, HashIndex] = {}
        for attribute in indexes:
            self.create_index(attribute)
        self._auto_eid = 0

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_index(self, attribute: str) -> None:
        """Create (and backfill) a hash index on ``attribute``."""
        if attribute not in self.schema or attribute == "T":
            raise SchemaError(
                f"cannot index {attribute!r}: not a non-temporal attribute "
                f"of table {self.name!r}"
            )
        if attribute in self._hash_indexes:
            return
        index = HashIndex(attribute)
        for position, event in enumerate(self._rows):
            index.add(position, event[attribute])
        self._hash_indexes[attribute] = index

    @property
    def indexed_attributes(self) -> Tuple[str, ...]:
        """Attributes with a hash index."""
        return tuple(sorted(self._hash_indexes))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, event_or_values, ts: Any = None,
               eid: Optional[str] = None) -> Event:
        """Insert an event, or build one from an attribute mapping.

        Events must arrive in chronological order (the store is a log,
        like the archived streams the paper's systems read).  Returns the
        stored event; an ``eid`` is assigned automatically if absent.
        """
        if isinstance(event_or_values, Event):
            event = event_or_values
        elif isinstance(event_or_values, Mapping):
            if ts is None:
                raise ValueError("ts is required when inserting a mapping")
            event = Event(ts=ts, attrs=dict(event_or_values), eid=eid)
        else:
            raise TypeError(
                f"expected Event or mapping, got {type(event_or_values).__name__}"
            )
        self.schema.validate(event.attributes)
        if event.eid is None:
            self._auto_eid += 1
            event = event.replace(eid=f"{self.name}:{self._auto_eid}")
        self._time_index.add(event.ts)  # raises on out-of-order inserts
        position = len(self._rows)
        self._rows.append(event)
        for attribute, index in self._hash_indexes.items():
            index.add(position, event[attribute])
        return event

    def insert_many(self, events: Iterable[Event]) -> int:
        """Insert many events; returns the number inserted."""
        count = 0
        for event in events:
            self.insert(event)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def scan(self, start: Any = None, end: Any = None) -> Iterator[Event]:
        """Iterate events in time order, optionally sliced to [start, end]."""
        lo, hi = self._time_index.range(start, end)
        return iter(self._rows[lo:hi])

    def lookup(self, attribute: str, value: Any) -> List[Event]:
        """Events whose ``attribute`` equals ``value`` (index-accelerated)."""
        index = self._hash_indexes.get(attribute)
        if index is not None:
            return [self._rows[p] for p in index.lookup(value)]
        return [e for e in self._rows if e.get(attribute) == value]

    def row(self, position: int) -> Event:
        """The event at a row position."""
        return self._rows[position]

    def to_relation(self) -> EventRelation:
        """Materialise the table as an :class:`EventRelation`."""
        relation = EventRelation(schema=self.schema, name=self.name)
        relation.extend(self._rows)
        return relation

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._rows)

    def query(self):
        """Start a :class:`~repro.storage.query.Query` over this table."""
        from .query import Query
        return Query(self)

    def __repr__(self) -> str:
        return (f"EventTable({self.name!r}, {len(self._rows)} rows, "
                f"indexes={list(self.indexed_attributes)})")
