"""A small query interface over event tables.

Supports conjunctive filters with equality pushdown into hash indexes and
time-range pushdown into the time index — enough to express the
"SELECT ... FROM Event WHERE ... ORDER BY T" access path the paper's
experiments use, plus a ``match()`` terminal that runs a SES pattern over
the selected events.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.conditions import OPERATORS
from ..core.events import Event
from ..core.relation import EventRelation

__all__ = ["Query"]


class Query:
    """A lazily evaluated conjunctive query over an :class:`EventTable`.

    Builder methods return ``self`` for chaining::

        events = (table.query()
                  .where("ID", "=", 1)
                  .where("V", ">", 100)
                  .between(0, 500)
                  .execute())
    """

    def __init__(self, table):
        self._table = table
        self._equalities: List[Tuple[str, Any]] = []
        self._filters: List[Tuple[str, str, Any]] = []
        self._start: Any = None
        self._end: Any = None
        self._limit: Optional[int] = None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def where(self, attribute: str, op: str, value: Any) -> "Query":
        """Add a predicate ``attribute op value``."""
        if op not in OPERATORS:
            raise ValueError(f"unknown operator {op!r}")
        if attribute not in self._table.schema:
            raise ValueError(
                f"table {self._table.name!r} has no attribute {attribute!r}"
            )
        if op == "=" and attribute in self._table.indexed_attributes:
            self._equalities.append((attribute, value))
        else:
            self._filters.append((attribute, op, value))
        return self

    def between(self, start: Any = None, end: Any = None) -> "Query":
        """Restrict to events with ``start <= T <= end``."""
        self._start = start
        self._end = end
        return self

    def limit(self, n: int) -> "Query":
        """Return at most ``n`` events (in time order)."""
        if n < 0:
            raise ValueError("limit must be non-negative")
        self._limit = n
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _candidates(self) -> List[Event]:
        """Pick the cheapest access path and return ordered candidates."""
        if self._equalities:
            # Use the most selective equality index, intersect positions.
            position_sets = []
            for attribute, value in self._equalities:
                index = self._table._hash_indexes[attribute]
                position_sets.append(set(index.lookup(value)))
            positions = sorted(set.intersection(*position_sets))
            lo, hi = self._table._time_index.range(self._start, self._end)
            return [self._table.row(p) for p in positions if lo <= p < hi]
        return list(self._table.scan(self._start, self._end))

    def execute(self) -> EventRelation:
        """Run the query; the result is an ordered event relation."""
        out: List[Event] = []
        for event in self._candidates():
            if all(self._passes(event, f) for f in self._filters):
                out.append(event)
                if self._limit is not None and len(out) >= self._limit:
                    break
        relation = EventRelation(schema=self._table.schema,
                                 name=f"{self._table.name}:query")
        relation.extend(out)
        return relation

    @staticmethod
    def _passes(event: Event, predicate: Tuple[str, str, Any]) -> bool:
        attribute, op, value = predicate
        actual = event.get(attribute, _MISSING)
        if actual is _MISSING:
            return False
        try:
            return bool(OPERATORS[op](actual, value))
        except TypeError:
            return False

    def count(self) -> int:
        """Number of matching events."""
        return len(self.execute())

    def match(self, pattern, **kwargs):
        """Run a SES pattern over the query result.

        The pattern is compiled through the process-global plan cache;
        keyword arguments are forwarded to
        :meth:`repro.plan.plan.PatternPlan.match`.
        """
        from ..plan.cache import as_plan
        return as_plan(pattern).match(self.execute(), **kwargs)


_MISSING = object()
