"""Catalog: a named collection of event tables with disk persistence.

A :class:`Database` groups :class:`~repro.storage.table.EventTable`
objects and can save/load itself to a directory — one typed CSV per table
plus a small JSON manifest recording schemas and indexes.  This completes
the embedded substitute for the Oracle instance of the paper's setup.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from ..core.events import Attribute, EventSchema
from .csvio import load_relation, save_relation
from .table import EventTable

__all__ = ["Database"]

_TYPE_NAMES = {int: "int", float: "float", str: "str", None: "any"}
_TYPES_BY_NAME = {"int": int, "float": float, "str": str, "any": None}

_MANIFEST = "manifest.json"


class Database:
    """An in-memory database of event tables."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._tables: Dict[str, EventTable] = {}

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: EventSchema,
                     indexes: Iterable[str] = ()) -> EventTable:
        """Create a new table; the name must be unused."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = EventTable(name, schema, indexes=indexes)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table; raises KeyError if absent."""
        del self._tables[name]

    def table(self, name: str) -> EventTable:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r} in database {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[EventTable]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        """Names of all tables, sorted."""
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write all tables and a manifest into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {"name": self.name, "tables": {}}
        for name, table in self._tables.items():
            save_relation(table.to_relation(), directory / f"{name}.csv")
            manifest["tables"][name] = {
                "attributes": [
                    {"name": a.name, "type": _TYPE_NAMES.get(a.dtype, "str")}
                    for a in table.schema.attributes
                ],
                "indexes": list(table.indexed_attributes),
                "rows": len(table),
            }
        with (directory / _MANIFEST).open("w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Database":
        """Load a database previously written by :meth:`save`."""
        directory = Path(directory)
        with (directory / _MANIFEST).open() as fh:
            manifest = json.load(fh)
        db = cls(name=manifest.get("name", directory.name))
        for name, meta in manifest["tables"].items():
            schema = EventSchema(
                [Attribute(a["name"], _TYPES_BY_NAME.get(a["type"], str))
                 for a in meta["attributes"]],
                name=name,
            )
            table = db.create_table(name, schema, indexes=meta.get("indexes", ()))
            relation = load_relation(directory / f"{name}.csv", name=name)
            table.insert_many(relation)
        return db

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names})"
