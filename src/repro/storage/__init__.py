"""Embedded event store: tables, indexes, queries, CSV persistence."""

from .catalog import Database
from .csvio import load_relation, save_relation
from .index import HashIndex, TimeIndex
from .query import Query
from .table import EventTable

__all__ = ["Database", "EventTable", "HashIndex", "Query", "TimeIndex",
           "load_relation", "save_relation"]
