"""CSV persistence for event relations and tables.

The on-disk format is one CSV file per relation with a two-line header:

* line 1: ``eid, T, <attribute names...>``
* line 2 (comment): ``#types: <python type per attribute>`` so values
  round-trip with their types (int/float/str).

This is the archival format the embedded store's catalog uses; it also
makes data sets easy to inspect and to exchange.
"""

from __future__ import annotations

import csv
import logging
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.events import Attribute, Event, EventSchema
from ..core.relation import EventRelation

__all__ = ["save_relation", "load_relation"]

logger = logging.getLogger(__name__)

_TYPE_NAMES = {int: "int", float: "float", str: "str"}
_TYPES_BY_NAME = {name: t for t, name in _TYPE_NAMES.items()}


def _type_name(dtype: Optional[type]) -> str:
    return _TYPE_NAMES.get(dtype, "str")


def _infer_schema(relation: EventRelation) -> EventSchema:
    """Derive a schema from the first event when none is declared."""
    if relation.schema is not None:
        return relation.schema
    if len(relation) == 0:
        return EventSchema([], name=relation.name)
    first = relation[0]
    attributes = []
    for name in sorted(first.keys()):
        value = first[name]
        dtype = type(value) if type(value) in _TYPE_NAMES else str
        attributes.append(Attribute(name, dtype))
    return EventSchema(attributes, name=relation.name)


def save_relation(relation: EventRelation, path: Union[str, Path]) -> None:
    """Write ``relation`` to ``path`` as typed CSV."""
    schema = _infer_schema(relation)
    path = Path(path)
    names = list(schema.attribute_names)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["eid", "T"] + names)
        writer.writerow(["#types", "int"]
                        + [_type_name(schema[n].dtype) for n in names])
        for event in relation:
            writer.writerow([event.eid or "", event.ts]
                            + [event.get(n, "") for n in names])
    logger.info("saved %d events to %s", len(relation), path)


def load_relation(path: Union[str, Path],
                  name: Optional[str] = None) -> EventRelation:
    """Read a typed CSV written by :func:`save_relation`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if header[:2] != ["eid", "T"]:
            raise ValueError(f"{path} is not a repro event CSV "
                             f"(header {header[:2]!r})")
        names = header[2:]
        types_row = next(reader, None)
        if types_row is None or types_row[0] != "#types":
            raise ValueError(f"{path} is missing the #types header line")
        time_type = _TYPES_BY_NAME.get(types_row[1], int)
        dtypes = [
            _TYPES_BY_NAME.get(t, str) for t in types_row[2:]
        ]
        schema = EventSchema(
            [Attribute(n, t) for n, t in zip(names, dtypes)],
            name=name or path.stem,
        )
        events: List[Event] = []
        for row in reader:
            if not row:
                continue
            eid = row[0] or None
            ts = time_type(row[1])
            attrs: Dict[str, object] = {}
            for column, dtype, raw in zip(names, dtypes, row[2:]):
                attrs[column] = dtype(raw)
            events.append(Event(ts=ts, attrs=attrs, eid=eid))
    relation = EventRelation(schema=schema, name=name or path.stem)
    relation.extend(events)
    logger.info("loaded %d events from %s", len(relation), path)
    return relation
