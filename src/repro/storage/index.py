"""Secondary indexes for the embedded event store.

The paper reads its events from an Oracle database; this reproduction
ships a small embedded store instead (see DESIGN.md).  Tables maintain a
:class:`TimeIndex` over the temporal attribute and optional
:class:`HashIndex` es over non-temporal attributes for equality pushdown.
Indexes store *row positions* into the table's append-only event log.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["HashIndex", "TimeIndex"]


class HashIndex:
    """Equality index: attribute value → row positions."""

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._buckets: Dict[Any, List[int]] = {}
        self._rows = 0

    def add(self, position: int, value: Any) -> None:
        """Register ``value`` at row ``position`` (positions ascend)."""
        try:
            bucket = self._buckets.setdefault(value, [])
        except TypeError:
            raise TypeError(
                f"unhashable value {value!r} cannot be indexed on "
                f"{self.attribute!r}"
            ) from None
        bucket.append(position)
        self._rows += 1

    def lookup(self, value: Any) -> Tuple[int, ...]:
        """Row positions whose attribute equals ``value``."""
        return tuple(self._buckets.get(value, ()))

    def values(self) -> Iterator[Any]:
        """Distinct indexed values."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return self._rows

    def __repr__(self) -> str:
        return (f"HashIndex({self.attribute!r}, {len(self._buckets)} keys, "
                f"{self._rows} rows)")


class TimeIndex:
    """Sorted index over the temporal attribute.

    Rows are appended in chronological order, so the index is just the
    sorted list of timestamps; range lookups use binary search.
    """

    def __init__(self):
        self._timestamps: List[Any] = []

    def add(self, ts: Any) -> None:
        """Register the next row's timestamp (must be non-decreasing)."""
        if self._timestamps and ts < self._timestamps[-1]:
            raise ValueError(
                f"timestamps must be appended in order; {ts!r} precedes "
                f"{self._timestamps[-1]!r}"
            )
        self._timestamps.append(ts)

    def range(self, start: Any = None, end: Any = None) -> Tuple[int, int]:
        """Row-position half-open range ``[lo, hi)`` with start ≤ T ≤ end."""
        lo = 0 if start is None else bisect.bisect_left(self._timestamps, start)
        hi = (len(self._timestamps) if end is None
              else bisect.bisect_right(self._timestamps, end))
        return lo, hi

    def __len__(self) -> int:
        return len(self._timestamps)

    def __repr__(self) -> str:
        return f"TimeIndex({len(self._timestamps)} rows)"
