"""Workloads for the paper's experiments (Section 5).

This module builds the data sets D1–D5 and the patterns P1–P6 exactly as
Section 5 describes them:

* **D1** is the base chemotherapy relation (the paper's original data set
  had ``W = 1322`` for τ = 264 h; the scale is configurable here because
  pure-Python execution of the full-size workload is impractical — the
  *shape* of every result is scale-invariant, see EXPERIMENTS.md).
* **D2–D5** contain every event of D1 two to five times (in-place
  duplication), multiplying ``W`` accordingly.
* **P1/P2** (Experiment 1): ``(<{c,d,p,v,r,l},{b}>, Θ, 264)`` with Θ1
  assigning each variable a *distinct* medication type (pairwise mutually
  exclusive) and Θ2 assigning all variables the *same* type.
* **P3/P4** (Experiment 2): ``(<{c,d,p+},{b}>, Θ2, 264)`` with and without
  the Kleene plus.
* **P5/P6** (Experiment 3): like P3 but with Θ1 (P5) and Θ2 (P6).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from .chemo import MEDICATION_TYPES, generate_chemo

__all__ = [
    "DEFAULT_TAU",
    "VARIABLE_NAMES",
    "base_dataset",
    "duplicated_datasets",
    "experiment1_pattern",
    "pattern_p3",
    "pattern_p4",
    "pattern_p5",
    "pattern_p6",
]

#: τ used by every pattern in the evaluation (11 days, in hours).
DEFAULT_TAU = 264

#: The event variable names of Experiment 1, in the paper's order; the
#: variable named ``VARIABLE_NAMES[i]`` matches medication type
#: ``MEDICATION_TYPES[i]`` under Θ1.
VARIABLE_NAMES = ("c", "d", "p", "v", "r", "l")


def base_dataset(patients: int = 12, cycles: int = 4,
                 seed: int = 7) -> EventRelation:
    """The D1 stand-in: a synthetic chemotherapy relation.

    With the defaults the relation has a window size of a few hundred
    events at τ = 264 — a laptop-scale D1.  Increase ``patients`` (about
    130 reproduces the paper's W = 1322) for full-scale runs.
    """
    return generate_chemo(patients=patients, cycles=cycles, seed=seed)


def duplicated_datasets(base: EventRelation,
                        factors: Sequence[int] = (1, 2, 3, 4, 5)
                        ) -> Dict[int, EventRelation]:
    """D1–D5: each event of the base relation repeated 1–5 times."""
    return {f: base.duplicated(f) for f in factors}


def _patient_joins(names: Sequence[str]) -> List[str]:
    """Same-patient equality conditions, as in Query Q1 (θ5–θ7)."""
    joins = [f"{names[0]}.ID = {name}.ID" for name in names[1:]]
    joins.append(f"{names[0]}.ID = b.ID")
    return joins


def _distinct_type_conditions(names: Sequence[str],
                              joins: bool = False) -> List[str]:
    """Θ1: each variable matches a distinct medication type.

    With ``joins=True`` same-patient equality conditions are added as in
    Query Q1; they do not affect mutual exclusivity (which Definition 6
    decides on constant conditions alone).
    """
    conditions = [
        f"{name}.L = '{MEDICATION_TYPES[i]}'" for i, name in enumerate(names)
    ]
    conditions.append("b.L = 'B'")
    if joins:
        conditions.extend(_patient_joins(names))
    return conditions


def _same_type_conditions(names: Sequence[str], med: str = "P",
                          joins: bool = False) -> List[str]:
    """Θ2: all variables match the same medication type.

    The variables are *not* pairwise mutually exclusive (every Prednisone
    event satisfies every constant condition), so nondeterministic
    branching occurs exactly as Theorems 2–3 analyse.  With ``joins=True``
    patient-ID equalities bound branching *within* one patient's events
    without changing the complexity class — the group-variable workloads
    of Experiments 2–3 use them so the pure-Python runs stay tractable
    (see EXPERIMENTS.md).
    """
    conditions = [f"{name}.L = '{med}'" for name in names]
    conditions.append("b.L = 'B'")
    if joins:
        conditions.extend(_patient_joins(names))
    return conditions


def experiment1_pattern(n_variables: int, exclusive: bool,
                        tau: int = DEFAULT_TAU,
                        joins: bool = False) -> SESPattern:
    """P1 (``exclusive=True``) or P2 (``exclusive=False``) of Experiment 1,
    restricted to the first ``n_variables`` event variables of V1.

    The paper varies ``|V1|`` from two to six: ``{c,d}``, ``{c,d,p}``, …,
    ``{c,d,p,v,r,l}``.
    """
    if not 2 <= n_variables <= len(VARIABLE_NAMES):
        raise ValueError(
            f"n_variables must be in 2..{len(VARIABLE_NAMES)}, got {n_variables}"
        )
    names = list(VARIABLE_NAMES[:n_variables])
    conditions = (_distinct_type_conditions(names, joins=joins) if exclusive
                  else _same_type_conditions(names, joins=joins))
    return SESPattern(sets=[names, ["b"]], conditions=conditions, tau=tau)


def pattern_p3(tau: int = DEFAULT_TAU, joins: bool = True) -> SESPattern:
    """P3 = (<{c,d,p+},{b}>, Θ2, 264): same-type conditions, one group var."""
    return SESPattern(
        sets=[["c", "d", "p+"], ["b"]],
        conditions=_same_type_conditions(["c", "d", "p"], joins=joins),
        tau=tau,
    )


def pattern_p4(tau: int = DEFAULT_TAU, joins: bool = True) -> SESPattern:
    """P4 = (<{c,d,p},{b}>, Θ2, 264): same-type conditions, no group var."""
    return SESPattern(
        sets=[["c", "d", "p"], ["b"]],
        conditions=_same_type_conditions(["c", "d", "p"], joins=joins),
        tau=tau,
    )


def pattern_p5(tau: int = DEFAULT_TAU, joins: bool = True) -> SESPattern:
    """P5 = (<{c,d,p+},{b}>, Θ1, 264): distinct types (mutually exclusive)."""
    return SESPattern(
        sets=[["c", "d", "p+"], ["b"]],
        conditions=_distinct_type_conditions(["c", "d", "p"], joins=joins),
        tau=tau,
    )


def pattern_p6(tau: int = DEFAULT_TAU, joins: bool = True) -> SESPattern:
    """P6 = (<{c,d,p+},{b}>, Θ2, 264): same type (not mutually exclusive)."""
    return pattern_p3(tau, joins=joins)
