"""Synthetic clickstream data — the paper's second motivating domain.

The introduction lists click-stream analysis among the applications of
event pattern matching.  This generator produces web-shop sessions whose
*purchase-intent* signature is inherently order-free: before checking
out, a determined buyer adds to cart, reads reviews, and compares
alternatives — in whatever order their browsing took them — which is
exactly a PERMUTE/event-set pattern.  Casual sessions interleave random
actions and must not match.

Events carry ``user`` (int), ``action`` (str) and ``item`` (str) with
second-granularity timestamps.
"""

from __future__ import annotations

import random
from typing import List

from ..core.events import Attribute, Event, EventSchema
from ..core.pattern import SESPattern
from ..core.relation import EventRelation

__all__ = ["CLICK_SCHEMA", "ACTIONS", "generate_clickstream",
           "purchase_intent_pattern"]

#: Schema of the clickstream relation.
CLICK_SCHEMA = EventSchema(
    [Attribute("user", int), Attribute("action", str),
     Attribute("item", str)],
    name="Click",
)

#: All action labels the generator emits.
ACTIONS = ("view", "search", "cart", "review", "compare", "checkout",
           "payment")

#: Background actions of casual browsing.
_CASUAL = ("view", "search", "view", "view", "review", "compare")

_ITEMS = ("laptop", "phone", "camera", "monitor", "keyboard", "headset")


def generate_clickstream(users: int = 20,
                         sessions_per_user: int = 3,
                         intent_fraction: float = 0.3,
                         seed: int = 11) -> EventRelation:
    """Generate a clickstream relation.

    Parameters
    ----------
    users:
        Number of distinct users.
    sessions_per_user:
        Browsing sessions per user; sessions of different users overlap
        in time (users browse concurrently).
    intent_fraction:
        Fraction of sessions that complete the purchase-intent signature
        (cart + review + compare in random order, then checkout, then
        payment).
    seed:
        Determinism seed.
    """
    if not 0.0 <= intent_fraction <= 1.0:
        raise ValueError("intent_fraction must be within [0, 1]")
    rng = random.Random(seed)
    events: List[Event] = []
    counter = 0

    def emit(ts: int, user: int, action: str, item: str) -> None:
        nonlocal counter
        counter += 1
        events.append(Event(ts=ts, eid=f"k{counter}",
                            user=user, action=action, item=item))

    for user in range(1, users + 1):
        for session in range(sessions_per_user):
            # Sessions of different users overlap: small per-user offset.
            start = session * 3600 + user * 37
            item = rng.choice(_ITEMS)
            ts = start
            # Casual browsing prefix.
            for _ in range(rng.randint(2, 6)):
                ts += rng.randint(5, 90)
                emit(ts, user, rng.choice(_CASUAL), rng.choice(_ITEMS))
            if rng.random() < intent_fraction:
                # The purchase-intent block, order randomised per session.
                block = ["cart", "review", "compare"]
                rng.shuffle(block)
                for action in block:
                    ts += rng.randint(10, 120)
                    emit(ts, user, action, item)
                ts += rng.randint(30, 300)
                emit(ts, user, "checkout", item)
                ts += rng.randint(5, 60)
                emit(ts, user, "payment", item)
            else:
                # Casual tail; may contain cart abandonment.
                for _ in range(rng.randint(1, 4)):
                    ts += rng.randint(5, 90)
                    emit(ts, user, rng.choice(_CASUAL + ("cart",)),
                         rng.choice(_ITEMS))

    return EventRelation(sorted(events, key=lambda e: e.ts),
                         schema=CLICK_SCHEMA, name="clicks")


def purchase_intent_pattern(tau: int = 1800) -> SESPattern:
    """Cart + review + compare (any order) then checkout, one user, τ s.

    The user joins are written *pairwise closed* — the practice
    docs/semantics.md recommends for greedy engines.
    """
    return SESPattern(
        sets=[["a", "r", "m"], ["k"]],
        conditions=[
            "a.action = 'cart'", "r.action = 'review'",
            "m.action = 'compare'", "k.action = 'checkout'",
            "a.user = r.user", "a.user = m.user", "r.user = m.user",
            "a.user = k.user", "r.user = k.user", "m.user = k.user",
        ],
        tau=tau,
    )
