"""Synthetic chemotherapy event generator.

The paper evaluates on a proprietary data set of chemotherapy events from
the Department of Haematology at the Hospital Meran-Merano.  That data is
not available, so this module synthesises a relation with the same
structure (the substitution is documented in DESIGN.md):

* events carry patient ``ID``, type ``L``, value ``V``, unit ``U`` and an
  hourly timestamp, matching the Figure 1 schema;
* each patient undergoes treatment *cycles*: medication administrations —
  Ciclofosfamide ``C``, Doxorubicina ``D``, Prednisone ``P``, Vincristine
  ``V``, Rituximab ``R``, Chlorambucil ``L`` — in a per-cycle randomised
  order (the natural order variation that motivates SES patterns),
  Prednisone repeated over several days (the group-variable workload), and
  blood count measurements ``B`` during and after the administrations;
* patients are treated concurrently, so a sliding window of width τ
  contains events from many patients — the window size ``W`` of
  Definition 5 grows with the number of concurrent patients, which is the
  calibration knob for reproducing the paper's D1 (W = 1322 at τ = 264 h).

Generation is deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import List

from ..core.events import Event
from ..core.relation import EventRelation
from .paper_events import CHEMO_SCHEMA

__all__ = ["MEDICATION_TYPES", "generate_chemo", "calibrate_patients"]

#: Medication type codes used by the experiments' event variables
#: c, d, p, v, r, l (Section 5.3).
MEDICATION_TYPES = ("C", "D", "P", "V", "R", "L")

#: Typical dose (value, unit) per medication type, modelled on Figure 1.
_DOSES = {
    "C": (1672.5, "mg"),
    "D": (84.0, "mgl"),
    "P": (111.5, "mg"),
    "V": (2.0, "mg"),
    "R": (620.0, "mg"),
    "L": (10.0, "mg"),
}

#: Hours between the starts of two consecutive cycles of one patient.
_CYCLE_HOURS = 21 * 24

#: Laboratory examination codes emitted as background events.  They match
#: no medication/blood-count condition, so the Section 4.5 filter drops
#: them — mirroring the mostly-irrelevant traffic of the hospital data
#: that gave the paper its order-of-magnitude filtering speedup.
_LAB_TYPES = ("GLU", "CRE", "ALT", "HGB", "WBC", "PLT")


def generate_chemo(patients: int = 12,
                   cycles: int = 4,
                   seed: int = 7,
                   prednisone_days: int = 3,
                   stagger_hours: int = 24,
                   lab_events_per_cycle: int = 30) -> EventRelation:
    """Generate a synthetic chemotherapy event relation.

    Parameters
    ----------
    patients:
        Number of concurrently treated patients; the main density (and
        hence window size) knob.
    cycles:
        Treatment cycles per patient.
    seed:
        Seed for the deterministic pseudo-random generator.
    prednisone_days:
        Days over which Prednisone is repeated within a cycle (events for
        the ``p+`` group variable).
    stagger_hours:
        Offset between the treatment starts of consecutive patients; small
        values increase patient overlap (larger ``W``).
    lab_events_per_cycle:
        Background laboratory events per cycle.  These satisfy none of the
        experiments' constant conditions and exist to exercise the
        Section 4.5 event filter (set to 0 for a medication-only relation).

    Returns
    -------
    EventRelation
        Chronologically ordered events with the Figure 1 schema.
    """
    if patients < 1 or cycles < 1:
        raise ValueError("patients and cycles must be positive")
    rng = random.Random(seed)
    events: List[Event] = []
    counter = 0

    def emit(ts: int, pid: int, label: str, value: float, unit: str) -> None:
        nonlocal counter
        counter += 1
        events.append(Event(ts=ts, eid=f"s{counter}",
                            ID=pid, L=label, V=value, U=unit))

    for pid in range(1, patients + 1):
        start = (pid - 1) * stagger_hours
        for cycle in range(cycles):
            base = start + cycle * _CYCLE_HOURS
            # Day 0: blood count before the administrations (ignored by
            # Q1-style queries, like e2/e5 in the running example).
            emit(base + 8, pid, "B", float(rng.randint(0, 2)), "WHO-Tox")
            # Administration block: all six medications, in an order that
            # varies per patient and cycle, across the first two days.
            order = list(MEDICATION_TYPES)
            rng.shuffle(order)
            hour = base + 9
            for med in order:
                value, unit = _DOSES[med]
                emit(hour, pid, med, value, unit)
                hour += rng.randint(1, 5)
            # Prednisone repetitions on the following days (p+ workload).
            for day in range(1, prednisone_days):
                value, unit = _DOSES["P"]
                emit(base + day * 24 + 9 + rng.randint(0, 3), pid,
                     "P", value, unit)
            # Blood counts after the administrations, within the 11-day
            # window that Q1-style queries use.
            emit(base + (prednisone_days + rng.randint(2, 4)) * 24 + 9,
                 pid, "B", float(rng.randint(0, 3)), "WHO-Tox")
            emit(base + 10 * 24 + 9 + rng.randint(0, 5), pid,
                 "B", float(rng.randint(0, 3)), "WHO-Tox")
            # Background laboratory examinations spread over the cycle.
            for _ in range(lab_events_per_cycle):
                lab = rng.choice(_LAB_TYPES)
                ts = base + rng.randint(0, 14) * 24 + rng.randint(7, 18)
                emit(ts, pid, lab, round(rng.uniform(0.5, 400.0), 1), "lab")

    return EventRelation(sorted(events, key=lambda e: e.ts),
                         schema=CHEMO_SCHEMA, name="chemo")


def calibrate_patients(target_window: int, tau: int = 264,
                       cycles: int = 4, seed: int = 7,
                       max_patients: int = 4096) -> int:
    """Find a patient count whose relation has window size ≈ ``target_window``.

    Doubles the patient count until the window size reaches the target,
    then binary-searches the smallest count at or above it.  Used to
    reproduce the paper's D1 (W = 1322) at configurable scale.
    """
    if target_window < 1:
        raise ValueError("target_window must be positive")

    def window_for(n: int) -> int:
        return generate_chemo(patients=n, cycles=cycles,
                              seed=seed).window_size(tau)

    low, high = 1, 1
    while window_for(high) < target_window:
        low = high
        high *= 2
        if high > max_patients:
            raise ValueError(
                f"cannot reach W={target_window} with <= {max_patients} patients"
            )
    while low < high:
        mid = (low + high) // 2
        if window_for(mid) >= target_window:
            high = mid
        else:
            low = mid + 1
    return high
