"""Data sets: the paper's running example and synthetic workloads."""

from .chemo import MEDICATION_TYPES, calibrate_patients, generate_chemo
from .clickstream import (ACTIONS, CLICK_SCHEMA, generate_clickstream,
                          purchase_intent_pattern)
from .paper_events import (CHEMO_SCHEMA, EXPECTED_Q1_EIDS, figure1_relation,
                           hours, query_q1)
from .workloads import (DEFAULT_TAU, VARIABLE_NAMES, base_dataset,
                        duplicated_datasets, experiment1_pattern, pattern_p3,
                        pattern_p4, pattern_p5, pattern_p6)

__all__ = [
    "ACTIONS", "CHEMO_SCHEMA", "CLICK_SCHEMA", "DEFAULT_TAU", "EXPECTED_Q1_EIDS", "MEDICATION_TYPES",
    "VARIABLE_NAMES", "base_dataset", "calibrate_patients",
    "duplicated_datasets", "experiment1_pattern", "figure1_relation", "hours",
    "generate_chemo", "generate_clickstream", "pattern_p3", "pattern_p4",
    "pattern_p5", "pattern_p6", "purchase_intent_pattern",
    "query_q1",
]
