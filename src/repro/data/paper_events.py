"""The paper's running example: the Event relation of Figure 1 and Query Q1.

Fourteen chemotherapy events for two patients, recorded with patient ID
(``ID``), event type (``L``), value (``V``), measurement unit (``U``) and
occurrence time (``T``).  Timestamps are hours since July 1, 00:00 (a
discrete, ordered time domain as required by Section 3.1); e.g. event e1
(9 am on 3 July) has ``T = 57``.

Event types: ``C`` Ciclofosfamide, ``P`` Prednisone, ``D`` Doxorubicina
(medication administrations) and ``B`` blood count measurements.
"""

from __future__ import annotations

from typing import List

from ..core.events import Attribute, Event, EventSchema
from ..core.pattern import SESPattern
from ..core.relation import EventRelation

__all__ = ["CHEMO_SCHEMA", "hours", "figure1_relation", "query_q1",
           "EXPECTED_Q1_EIDS"]

#: Schema of the chemotherapy Event relation (Figure 1).
CHEMO_SCHEMA = EventSchema(
    [Attribute("ID", int), Attribute("L", str),
     Attribute("V", float), Attribute("U", str)],
    name="Event",
)


def hours(day: int, hour: int) -> int:
    """Hours since July 1, 00:00 for ``hour`` o'clock on July ``day``."""
    return (day - 1) * 24 + hour


#: The rows of Figure 1: (eid, ID, L, V, U, day-of-July, hour).
_FIGURE1_ROWS = [
    ("e1", 1, "C", 1672.5, "mg", 3, 9),
    ("e2", 1, "B", 0.0, "WHO-Tox", 3, 10),
    ("e3", 1, "D", 84.0, "mgl", 3, 11),
    ("e4", 1, "P", 111.5, "mg", 4, 9),
    ("e5", 2, "B", 0.0, "WHO-Tox", 5, 9),
    ("e6", 2, "P", 88.0, "mg", 5, 10),
    ("e7", 2, "D", 84.0, "mgl", 5, 11),
    ("e8", 2, "C", 1320.0, "mg", 6, 9),
    ("e9", 1, "P", 111.5, "mg", 6, 10),
    ("e10", 2, "P", 88.0, "mg", 6, 11),
    ("e11", 2, "P", 88.0, "mg", 7, 9),
    ("e12", 1, "B", 1.0, "WHO-Tox", 12, 9),
    ("e13", 2, "B", 1.0, "WHO-Tox", 13, 9),
    ("e14", 2, "B", 0.0, "WHO-Tox", 14, 9),
]


def figure1_relation() -> EventRelation:
    """The 14-event relation of Figure 1, in chronological order."""
    events: List[Event] = []
    for eid, pid, label, value, unit, day, hour in _FIGURE1_ROWS:
        events.append(Event(
            ts=hours(day, hour),
            eid=eid,
            ID=pid, L=label, V=value, U=unit,
        ))
    return EventRelation(events, schema=CHEMO_SCHEMA, name="Event")


def query_q1() -> SESPattern:
    """Query Q1 as the SES pattern of Example 2.

    One Ciclofosfamide, one or more Prednisone, and one Doxorubicina
    administration in any order, followed by one blood count, all for the
    same patient and within eleven days (264 hours).
    """
    return SESPattern(
        sets=[["c", "p+", "d"], ["b"]],
        conditions=[
            "c.L = 'C'",       # θ1
            "d.L = 'D'",       # θ2
            "p.L = 'P'",       # θ3
            "b.L = 'B'",       # θ4
            "c.ID = p.ID",     # θ5
            "c.ID = d.ID",     # θ6
            "d.ID = b.ID",     # θ7
        ],
        tau=264,
    )


#: The intended results of Query Q1 (Example 1): event ids per match.
EXPECTED_Q1_EIDS = [
    {"e1", "e3", "e4", "e9", "e12"},       # patient 1
    {"e6", "e7", "e8", "e10", "e11", "e13"},  # patient 2
]
