"""Errors raised by the parallel execution layer."""

from __future__ import annotations

from typing import List, Optional

__all__ = ["WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """A worker process died instead of returning a result.

    Raised by :class:`~repro.parallel.pool.ParallelPartitionedMatcher`
    and :class:`~repro.parallel.sharded.ShardedStreamMatcher` when a
    worker exits abnormally (killed, unhandled low-level crash, lost
    pipe).  The parent cleans up the remaining workers before raising,
    so callers never hang on a dead pool.

    ``flight_dump`` carries the crashing worker's flight-recorder dump
    (see :class:`repro.obs.flight.FlightRecorder`) — the tail of
    execution steps and |Ω| samples leading up to the failure — when the
    worker got the chance to capture one; it is ``None`` for hard
    crashes (``SIGKILL``, ``os._exit``) where no evidence survives.

    ``partial_matches`` carries the matches that other shards had
    already reported before the crash aborted a
    :meth:`~repro.parallel.sharded.ShardedStreamMatcher.close` drain —
    work that was complete and correct, attached instead of discarded.
    It is an empty list when the crash happened outside a close drain.
    """

    def __init__(self, message: str, flight_dump: Optional[dict] = None,
                 partial_matches: Optional[List] = None):
        super().__init__(message)
        self.flight_dump = flight_dump
        self.partial_matches = list(partial_matches or [])

    def __reduce__(self):
        # Default exception pickling only keeps args; the dump and the
        # partial results must survive the trip from a pool worker back
        # to the parent.
        return (
            type(self),
            (self.args[0] if self.args else "", self.flight_dump,
             self.partial_matches),
        )
