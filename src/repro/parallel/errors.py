"""Errors raised by the parallel execution layer."""

from __future__ import annotations

from typing import Optional

__all__ = ["WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """A worker process died instead of returning a result.

    Raised by :class:`~repro.parallel.pool.ParallelPartitionedMatcher`
    and :class:`~repro.parallel.sharded.ShardedStreamMatcher` when a
    worker exits abnormally (killed, unhandled low-level crash, lost
    pipe).  The parent cleans up the remaining workers before raising,
    so callers never hang on a dead pool.

    ``flight_dump`` carries the crashing worker's flight-recorder dump
    (see :class:`repro.obs.flight.FlightRecorder`) — the tail of
    execution steps and |Ω| samples leading up to the failure — when the
    worker got the chance to capture one; it is ``None`` for hard
    crashes (``SIGKILL``, ``os._exit``) where no evidence survives.
    """

    def __init__(self, message: str, flight_dump: Optional[dict] = None):
        super().__init__(message)
        self.flight_dump = flight_dump

    def __reduce__(self):
        # Default exception pickling only keeps args; the dump must
        # survive the trip from a pool worker back to the parent.
        return (type(self), (self.args[0] if self.args else "",
                             self.flight_dump))
