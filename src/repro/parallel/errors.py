"""Errors raised by the parallel execution layer."""

from __future__ import annotations

__all__ = ["WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """A worker process died instead of returning a result.

    Raised by :class:`~repro.parallel.pool.ParallelPartitionedMatcher`
    and :class:`~repro.parallel.sharded.ShardedStreamMatcher` when a
    worker exits abnormally (killed, unhandled low-level crash, lost
    pipe).  The parent cleans up the remaining workers before raising,
    so callers never hang on a dead pool.
    """
