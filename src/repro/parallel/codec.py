"""Compact wire encoding for events and substitutions.

Worker processes receive events and return matches across a pickle
boundary.  Pickling :class:`~repro.core.events.Event` objects directly
works, but every event drags class metadata and the memoised hash along;
the codec strips both down to plain tuples — roughly a third of the
bytes and a lot less unpickling work — and rebuilds full objects on the
other side.

Wire formats
------------
* event:          ``(ts, eid, ((attr, value), ...))``; a traced event
  appends the optional fourth element ``trace_ctx`` — the
  :meth:`~repro.obs.tracectx.TraceContext.to_wire` tuple — which
  :func:`decode_event` ignores (read it with :func:`event_trace_ctx`).
* substitution:   ``((name, is_group, event_wire), ...)`` — one entry
  per binding, in the substitution's canonical iteration order.

Values must themselves be picklable; that is the same requirement the
underlying queues impose, so the codec adds no new constraint.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..core.events import Event
from ..core.substitution import Substitution
from ..core.variables import Variable

__all__ = [
    "EventWire", "SubstitutionWire",
    "encode_event", "decode_event",
    "encode_events", "decode_events",
    "encode_substitution", "decode_substitution",
    "attach_trace_ctx", "event_trace_ctx",
]

EventWire = Tuple[Any, Optional[str], Tuple[Tuple[str, Any], ...]]
SubstitutionWire = Tuple[Tuple[str, bool, EventWire], ...]


def encode_event(event: Event) -> EventWire:
    """Flatten one event to its wire tuple."""
    return (event.ts, event.eid, tuple(event.attributes.items()))


def decode_event(wire: EventWire) -> Event:
    """Rebuild an :class:`Event` from its wire tuple.

    Tolerates the traced four-element form: the trailing trace context
    (anything past the first three elements) is simply not part of the
    event.  This keeps the WAL replay path format-agnostic — entries
    recorded with tracing on decode identically with tracing off.
    """
    return Event(ts=wire[0], attrs=dict(wire[2]), eid=wire[1])


def attach_trace_ctx(wire: EventWire, ctx_wire) -> tuple:
    """The traced wire form: ``event wire + (trace context,)``."""
    return (wire[0], wire[1], wire[2], ctx_wire)


def event_trace_ctx(wire) -> Optional[tuple]:
    """The trace-context element of a traced wire (``None`` when the
    event was shipped untraced)."""
    return wire[3] if len(wire) > 3 else None


def encode_events(events: Iterable[Event]) -> List[EventWire]:
    """Flatten a chronologically ordered batch of events."""
    return [encode_event(e) for e in events]


def decode_events(wires: Iterable[EventWire]) -> List[Event]:
    """Rebuild a batch of events (order preserved)."""
    return [decode_event(w) for w in wires]


def encode_substitution(substitution: Substitution) -> SubstitutionWire:
    """Flatten one substitution to its wire tuple."""
    return tuple((variable.name, variable.is_group, encode_event(event))
                 for variable, event in substitution)


def decode_substitution(wire: SubstitutionWire) -> Substitution:
    """Rebuild a :class:`Substitution` from its wire tuple."""
    return Substitution(
        (Variable(name, is_group=is_group), decode_event(event_wire))
        for name, is_group, event_wire in wire)
