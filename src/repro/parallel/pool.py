"""Process-pool execution of partitioned batch workloads.

:class:`ParallelPartitionedMatcher` is the parallel sibling of
:class:`~repro.automaton.optimizations.PartitionedMatcher`: the relation
is split on the partition attribute, the partitions are grouped into
chunks, and the chunks are fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The paper's Section
4.4 bounds make the per-start instance population the scaling
bottleneck; partitions are provably independent (every condition
equi-joins the partition attribute across all variables), so they
parallelise embarrassingly.

Design notes
------------
* The parent compiles the pattern **once** (through the process-global
  plan cache) and ships the pickled :class:`~repro.plan.plan.PatternPlan`
  to each worker via the pool initializer; workers seed their own plan
  cache with it, so no worker ever rebuilds the automaton — even when a
  pool is reused across runs.  Chunks only carry events, encoded as
  compact tuples (:mod:`repro.parallel.codec`).
* Results merge in **deterministic order**: partitions are sorted by
  key exactly as the serial matcher sorts them, chunks are contiguous
  slices of that order, and futures are collected in submission order —
  so the accepted list, the final selection, and the stats are
  bit-identical to the serial :class:`PartitionedMatcher` for any
  worker count.
* **Serial fallback**: with one worker, a single partition, or no
  partition attribute at all, no pool is spawned and everything runs
  in-process (the no-attribute case degrades to one unpartitioned run).
* **Robust shutdown**: any exception — including
  :class:`KeyboardInterrupt` and a worker crashing mid-chunk — cancels
  the remaining chunks and joins every worker before re-raising; a dead
  worker surfaces as :class:`~repro.parallel.errors.WorkerCrashed`
  rather than a hang or a leaked child process.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from ..automaton.executor import SELECTIONS, MatchResult
from ..automaton.metrics import ExecutionStats
from ..automaton.optimizations import partition_attribute
from ..core.events import Event
from ..core.options import resolve_option
from ..core.relation import EventRelation
from ..core.semantics import select_matches
from ..core.substitution import Substitution
from .codec import (EventWire, SubstitutionWire, decode_events,
                    decode_substitution, encode_events, encode_substitution)
from .errors import WorkerCrashed

__all__ = ["ParallelPartitionedMatcher", "default_context", "chunk_partitions"]

logger = logging.getLogger(__name__)

#: One chunk of work: ``[(partition key, [event wires]), ...]``.
Chunk = List[Tuple[Any, List[EventWire]]]
#: One partition's result: ``(key, [substitution wires], stats)``.
PartitionResult = Tuple[Any, List[SubstitutionWire], ExecutionStats]
#: One chunk's result: worker pid, per-partition results, obs snapshot,
#: statistics-store snapshot (both ``None`` when not instrumented), and
#: the chunk's merged partial-aggregate snapshot (``None`` unless the
#: plan aggregates).
ChunkResult = Tuple[int, List[PartitionResult], Optional[dict],
                    Optional[dict], Optional[dict]]


def default_context(start_method: Optional[str] = None):
    """The multiprocessing context the pool uses.

    ``fork`` where it is safe (Linux): workers inherit the parent's
    modules, so start-up is milliseconds instead of a full interpreter
    boot per worker.  Elsewhere (macOS forks are unsafe with threads,
    Windows has no fork) the platform default is used.  Pass an explicit
    ``start_method`` to override.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if (sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def chunk_partitions(items: Sequence, n_chunks: int) -> List[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-even
    slices (never empty; fewer chunks when items run out)."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: List[list] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start:start + size]))
        start += size
    return chunks


# ----------------------------------------------------------------------
# Worker side (runs in the pool processes)
# ----------------------------------------------------------------------
_WORKER_PLAN = None
_WORKER_USE_FILTER = True
_WORKER_CONSUME = "greedy"
_WORKER_INSTRUMENT = False
_WORKER_FLIGHT = None
_WORKER_STATS_KEY: Optional[str] = None

#: Default per-worker flight-recorder ring size (0 disables recording).
DEFAULT_FLIGHT_CAPACITY = 512


def _init_worker(plan, use_filter: bool, consume: str,
                 instrument: bool,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
    """Pool initializer: adopt the parent's pickled plan.

    The plan is seeded into the worker's process-global cache, so the
    worker never rebuilds the automaton — neither here nor if anything
    else in the worker compiles an equal pattern later.  Each worker
    also gets its own :class:`~repro.obs.flight.FlightRecorder` (unless
    ``flight_capacity`` is 0) so a crash can ship the tail of execution
    back to the parent.
    """
    global _WORKER_PLAN, _WORKER_USE_FILTER, _WORKER_CONSUME
    global _WORKER_INSTRUMENT, _WORKER_FLIGHT, _WORKER_STATS_KEY
    from ..plan.cache import plan_cache
    _WORKER_PLAN = plan_cache().seed(plan)
    _WORKER_USE_FILTER = use_filter
    _WORKER_CONSUME = consume
    _WORKER_INSTRUMENT = instrument
    if instrument:
        from ..explain.stats import stats_key
        _WORKER_STATS_KEY = stats_key(plan.pattern)
    if flight_capacity:
        from ..obs.flight import FlightRecorder
        _WORKER_FLIGHT = FlightRecorder(capacity=flight_capacity)
    else:
        _WORKER_FLIGHT = None


def _run_chunk(chunk: Chunk) -> ChunkResult:
    """Evaluate every partition of one chunk with the worker's matcher.

    An exception while evaluating is re-raised as
    :class:`~repro.parallel.errors.WorkerCrashed` carrying the worker's
    flight-recorder dump, so the parent learns *what the worker was
    doing* — not just that it died.
    """
    plan = _WORKER_PLAN
    if plan is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool not initialised")
    flight = _WORKER_FLIGHT
    obs = None
    if _WORKER_INSTRUMENT:
        from ..obs import Observability
        obs = Observability()
    aggregating = plan.aggregate is not None
    agg_snapshot = None
    results: List[PartitionResult] = []
    try:
        for key, wires in chunk:
            events = decode_events(wires)
            executor = plan.executor(
                use_filter=_WORKER_USE_FILTER, selection="accepted",
                consume=_WORKER_CONSUME, observability=obs, flight=flight)
            result = executor.run(events)
            if obs is not None:
                executor.publish_stats()
            if aggregating:
                from ..agg.engine import merge_snapshots
                agg_snapshot = merge_snapshots(
                    plan.aggregate, agg_snapshot,
                    executor.aggregate_snapshot())
            results.append(
                (key, [encode_substitution(s) for s in result.accepted],
                 result.stats))
    except Exception as exc:
        if flight is None:
            raise
        raise WorkerCrashed(
            f"pool worker {os.getpid()} crashed evaluating a partition "
            f"chunk: {type(exc).__name__}: {exc}",
            flight_dump=flight.dump()) from exc
    stats_snapshot = None
    if obs is not None and _WORKER_STATS_KEY is not None:
        # Ship observed cardinalities to the parent's statistics store
        # via the same wire-snapshot idiom the metrics registry uses.
        # Workers see partitions, not the run: runs/matches are counted
        # once, parent-side, after cross-partition selection.
        from ..explain.stats import StatsStore
        local = StatsStore(autosave=False)
        local.observe(
            _WORKER_STATS_KEY, runs=0,
            events=sum(s.events_read for _, _, s in results),
            filter_seen=sum(s.events_read for _, _, s in results),
            filter_admitted=sum(s.events_processed for _, _, s in results))
        stats_snapshot = local.snapshot()
    return (os.getpid(), results, None if obs is None else obs.snapshot(),
            stats_snapshot, agg_snapshot)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ParallelPartitionedMatcher:
    """Partitioned batch matching fanned out over a process pool.

    Parameters
    ----------
    pattern:
        The SES pattern, or a compiled
        :class:`~repro.plan.plan.PatternPlan`.  Partition parallelism is
        sound when the pattern equi-joins all variables on one
        attribute; the attribute is auto-detected like
        :class:`PartitionedMatcher` does.
    partition_by:
        Explicit partition attribute (overrides detection, at your own
        risk).  ``attribute=`` is the deprecated spelling.
    workers:
        Pool size; defaults to :func:`os.cpu_count`.  ``1`` runs
        serially in-process (no pool).
    use_filter / selection / consume:
        Forwarded to the per-partition matchers; results are selected
        across partitions exactly like the serial matcher.
        (``consume_mode=`` is the deprecated spelling of ``consume=``.)
    chunks_per_worker:
        Load-balancing granularity: partitions are grouped into about
        ``workers * chunks_per_worker`` chunks so a slow partition does
        not stall the whole pool.
    start_method:
        Multiprocessing start method (see :func:`default_context`).
    observability:
        Optional :class:`repro.obs.Observability` bundle.  Workers run
        instrumented and their snapshots are merged back in, plus
        parent-side pool metrics: ``ses_pool_workers``,
        ``ses_pool_chunks_total``, ``ses_pool_partitions_total`` and
        per-worker ``ses_pool_worker<i>_events_total`` gauges.
        (``obs=`` is the deprecated spelling.)
    flight_capacity:
        Ring size of each worker's
        :class:`~repro.obs.flight.FlightRecorder` (default 512; ``0``
        disables).  A worker that crashes with an exception ships its
        recorder dump back attached to the raised
        :class:`~repro.parallel.errors.WorkerCrashed` as
        ``flight_dump``; hard crashes (``SIGKILL``/``os._exit``) leave
        no dump.

    Unlike :class:`PartitionedMatcher`, a pattern with **no** partition
    attribute is accepted: the matcher logs a warning and falls back to
    one serial unpartitioned run (parallelising would lose the
    cross-partition pruning guarantee, so there is nothing sound to fan
    out).
    """

    def __init__(self, pattern, partition_by: Optional[str] = None,
                 workers: Optional[int] = None, use_filter: bool = True,
                 selection: str = "paper", consume: Optional[str] = None,
                 chunks_per_worker: int = 4,
                 start_method: Optional[str] = None, observability=None,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 attribute: Optional[str] = None,
                 consume_mode: Optional[str] = None, obs=None):
        partition_by = resolve_option(
            "ParallelPartitionedMatcher", "partition_by", partition_by,
            "attribute", attribute)
        consume = resolve_option(
            "ParallelPartitionedMatcher", "consume", consume,
            "consume_mode", consume_mode, default="greedy")
        observability = resolve_option(
            "ParallelPartitionedMatcher", "observability", observability,
            "obs", obs)
        if selection not in SELECTIONS:
            raise ValueError(f"unknown selection {selection!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        from ..plan.cache import as_plan
        plan = as_plan(pattern)
        detected = partition_attribute(plan.pattern)
        self.plan = plan
        self.pattern = plan.pattern
        self.attribute = detected if partition_by is None else partition_by
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.use_filter = use_filter
        self.selection = selection
        self.consume_mode = consume
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method
        self.obs = observability
        self.flight_capacity = flight_capacity
        if self.attribute is None:
            logger.warning(
                "pattern does not equi-join all variables on one attribute; "
                "ParallelPartitionedMatcher falls back to a serial "
                "unpartitioned run")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, relation: Union[EventRelation, Iterable[Event]]
            ) -> MatchResult:
        """Run the pattern over every partition; merge deterministically."""
        if not isinstance(relation, EventRelation):
            relation = EventRelation(relation)
        if self.attribute is None:
            parts = [(None, relation)]
        else:
            parts = sorted(relation.partition_by(self.attribute).items(),
                           key=lambda kv: str(kv[0]))
        if self.workers <= 1 or len(parts) <= 1:
            accepted, stats, agg_snapshot = self._run_local(parts)
        else:
            accepted, stats, agg_snapshot = self._run_pool(parts)
        return self._finalise(accepted, stats, agg_snapshot)

    def _finalise(self, accepted: List[Substitution],
                  stats: ExecutionStats,
                  agg_snapshot: Optional[dict] = None) -> MatchResult:
        if self.plan.aggregate is not None:
            # Aggregation plan: no matches were materialised anywhere —
            # the merged partial snapshots are the whole result.
            from ..agg.result import AggregateSeries
            if self.obs is not None:
                from ..explain.stats import stats_key, stats_store
                stats_store().observe(stats_key(self.pattern), runs=1)
            series = AggregateSeries(self.plan.aggregate, agg_snapshot,
                                     stats=stats)
            return MatchResult(matches=[], accepted=[], stats=stats,
                               aggregates=series)
        if self.selection == "accepted":
            matches = list(accepted)
        else:
            overlap = "suppress" if self.selection == "paper" else "allow"
            matches = select_matches(accepted, overlap=overlap)
        stats.matches = len(matches)
        if self.obs is not None:
            # Workers shipped per-partition event/filter cardinalities;
            # the run itself and the post-selection match count are known
            # only here.
            from ..explain.stats import stats_key, stats_store
            stats_store().observe(stats_key(self.pattern), runs=1,
                                  matches=len(matches))
        return MatchResult(matches=matches, accepted=accepted, stats=stats)

    def _run_local(self, parts
                   ) -> Tuple[List[Substitution], ExecutionStats,
                              Optional[dict]]:
        """Serial fallback: same loop as :class:`PartitionedMatcher`."""
        obs = self.obs
        aggregating = self.plan.aggregate is not None
        agg_snapshot: Optional[dict] = None
        accepted: List[Substitution] = []
        stats = ExecutionStats()
        events_seen = 0
        for _, part in parts:
            executor = self.plan.executor(
                use_filter=self.use_filter, selection="accepted",
                consume=self.consume_mode, observability=obs)
            result = executor.run(part)
            if obs is not None:
                executor.publish_stats()
            if aggregating:
                from ..agg.engine import merge_snapshots
                agg_snapshot = merge_snapshots(
                    self.plan.aggregate, agg_snapshot,
                    executor.aggregate_snapshot())
            accepted.extend(result.accepted)
            stats.merge(result.stats)
            events_seen += result.stats.events_read
        if obs is not None:
            self._publish_pool_metrics(1, len(parts), len(parts),
                                       {0: events_seen})
            from ..explain.stats import stats_key, stats_store
            stats_store().observe(stats_key(self.pattern), runs=0,
                                  events=stats.events_read,
                                  filter_seen=stats.events_read,
                                  filter_admitted=stats.events_processed)
        return accepted, stats, agg_snapshot

    def _run_pool(self, parts
                  ) -> Tuple[List[Substitution], ExecutionStats,
                             Optional[dict]]:
        encoded = [(key, encode_events(part)) for key, part in parts]
        n_workers = min(self.workers, len(encoded))
        chunks = chunk_partitions(encoded,
                                  n_workers * self.chunks_per_worker)
        context = default_context(self.start_method)
        logger.debug("dispatching %d partition(s) as %d chunk(s) to %d "
                     "worker(s) [%s]", len(encoded), len(chunks), n_workers,
                     context.get_start_method())
        pool = ProcessPoolExecutor(
            max_workers=n_workers, mp_context=context,
            initializer=_init_worker,
            initargs=(self.plan, self.use_filter, self.consume_mode,
                      self.obs is not None, self.flight_capacity))
        futures = []
        try:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            chunk_results = [future.result() for future in futures]
        except BaseException as exc:
            # Exception, KeyboardInterrupt or worker crash: drop the
            # queued chunks and join every worker before re-raising, so
            # no child process outlives the call.
            for future in futures:
                future.cancel()
            if not isinstance(exc, Exception):
                # KeyboardInterrupt / SystemExit: a worker may be busy
                # on a long chunk, and shutdown(wait=True) would block
                # on it — exactly the window where a second Ctrl-C
                # leaves orphaned children behind.  Kill the workers
                # first; the pool then shuts down immediately.
                for process in list(getattr(pool, "_processes", {})
                                    .values()):
                    if process.is_alive():
                        process.terminate()
            pool.shutdown(wait=True, cancel_futures=True)
            if isinstance(exc, BrokenProcessPool):
                # A hard crash (SIGKILL, os._exit) gives the worker no
                # chance to ship its recorder; flight_dump stays None.
                raise WorkerCrashed(
                    "a pool worker died while evaluating a partition chunk; "
                    "remaining workers were shut down cleanly"
                ) from exc
            raise
        else:
            pool.shutdown(wait=True)
        return self._merge(chunk_results, n_workers, len(encoded),
                           len(chunks))

    def _merge(self, chunk_results: List[ChunkResult], n_workers: int,
               n_partitions: int, n_chunks: int
               ) -> Tuple[List[Substitution], ExecutionStats,
                          Optional[dict]]:
        """Merge chunk results in submission (= partition-sorted) order."""
        accepted: List[Substitution] = []
        stats = ExecutionStats()
        agg_snapshot: Optional[dict] = None
        events_by_pid: dict = {}
        for chunk_result in chunk_results:
            pid, partition_results, snapshot, stats_snapshot = \
                chunk_result[:4]
            chunk_agg = chunk_result[4] if len(chunk_result) > 4 else None
            for _, wires, part_stats in partition_results:
                accepted.extend(decode_substitution(w) for w in wires)
                stats.merge(part_stats)
                events_by_pid[pid] = (events_by_pid.get(pid, 0)
                                      + part_stats.events_read)
            if snapshot is not None and self.obs is not None:
                self.obs.merge_snapshot(snapshot)
            if stats_snapshot is not None:
                from ..explain.stats import stats_store
                stats_store().merge_snapshot(stats_snapshot)
            if chunk_agg is not None:
                from ..agg.engine import merge_snapshots
                agg_snapshot = merge_snapshots(self.plan.aggregate,
                                               agg_snapshot, chunk_agg)
        if self.obs is not None:
            events_by_worker = {
                index: events_by_pid[pid]
                for index, pid in enumerate(sorted(events_by_pid))
            }
            self._publish_pool_metrics(n_workers, n_partitions, n_chunks,
                                       events_by_worker)
        return accepted, stats, agg_snapshot

    def _publish_pool_metrics(self, n_workers: int, n_partitions: int,
                              n_chunks: int, events_by_worker: dict) -> None:
        registry = self.obs.registry
        registry.gauge("ses_pool_workers",
                       help="process-pool size of the last run").set(n_workers)
        registry.counter("ses_pool_chunks_total",
                         help="partition chunks dispatched").inc(n_chunks)
        registry.counter("ses_pool_partitions_total",
                         help="partitions evaluated").inc(n_partitions)
        for index, events in sorted(events_by_worker.items()):
            registry.gauge(
                f"ses_pool_worker{index}_events_total",
                help="events evaluated by this pool worker").set(events)

    def __repr__(self) -> str:
        return (f"ParallelPartitionedMatcher({self.attribute!r}, "
                f"workers={self.workers})")
