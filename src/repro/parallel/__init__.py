"""Parallel partitioned execution: process pools and stream shards.

The paper's Section 4.4 bounds make the per-start instance population
the dominant cost; the partitioned matchers already shard that
population by key, and this package fans the independent partitions out
across worker processes:

* :class:`~repro.parallel.pool.ParallelPartitionedMatcher` — batch
  relations, chunked over a process pool, results merged in
  deterministic partition order (bit-identical to the serial
  :class:`~repro.automaton.optimizations.PartitionedMatcher`);
* :class:`~repro.parallel.sharded.ShardedStreamMatcher` — live streams,
  events routed to per-shard
  :class:`~repro.stream.partitioned.PartitionedContinuousMatcher`
  workers by key hash, with bounded queues and crash detection;
* :mod:`~repro.parallel.codec` — the compact tuple encoding events and
  matches travel in.

See ``docs/parallel.md`` for the sharding model, soundness conditions
and ordering guarantees.
"""

from .codec import (decode_event, decode_substitution, encode_event,
                    encode_substitution)
from .errors import WorkerCrashed
from .pool import ParallelPartitionedMatcher, default_context
from .sharded import ShardedStreamMatcher

__all__ = [
    "ParallelPartitionedMatcher",
    "ShardedStreamMatcher",
    "WorkerCrashed",
    "decode_event",
    "decode_substitution",
    "default_context",
    "encode_event",
    "encode_substitution",
]
