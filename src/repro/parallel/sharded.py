"""Sharded continuous matching: partition-parallel streaming.

:class:`ShardedStreamMatcher` is the streaming analogue of
:class:`~repro.parallel.pool.ParallelPartitionedMatcher`: events are
routed to ``N`` worker processes by ``hash(key) % N`` of the partition
attribute, each worker runs a
:class:`~repro.stream.partitioned.PartitionedContinuousMatcher` over its
share of the key space, and matches stream back to the parent.  Because
every partition key lives in exactly one shard and the pattern
equi-joins all variables on the attribute, the union of the shards'
matches equals the single-process partitioned matcher's matches for the
same input — see ``docs/parallel.md`` for the soundness argument and
ordering guarantees.

Operational properties:

* **bounded queues** — each shard has a bounded input queue, so a slow
  shard exerts backpressure on :meth:`ShardedStreamMatcher.push` instead
  of buffering without limit;
* **flush/close semantics** — :meth:`flush` is a barrier (every event
  pushed so far has been fully processed when it returns); :meth:`close`
  flushes end-of-stream state, merges worker metrics, and joins the
  workers;
* **crash detection** — a dead worker is detected on the next
  ``push``/``flush``/``close`` and surfaces as
  :class:`~repro.parallel.errors.WorkerCrashed` with the shard id and
  exit code, instead of a deadlock on a full or forever-empty queue.
"""

from __future__ import annotations

import logging
import os
import queue
from typing import Callable, List, Optional

from ..core.events import Event
from ..core.options import resolve_option
from ..core.substitution import Substitution
from ..stream.partitioned import PartitionedContinuousMatcher
from .codec import (decode_event, decode_substitution, encode_event,
                    encode_substitution)
from .errors import WorkerCrashed
from .pool import default_context

__all__ = ["ShardedStreamMatcher"]

logger = logging.getLogger(__name__)

MatchCallback = Callable[[Substitution], None]

#: Seconds between liveness checks while waiting on a queue.
_POLL_SECONDS = 0.2


# ----------------------------------------------------------------------
# Worker side (runs in the shard processes)
# ----------------------------------------------------------------------
def _shard_worker(shard_id: int, plan, attribute: str,
                  use_filter: bool, suppress_overlaps: bool,
                  instrument: bool, flight_capacity: int,
                  in_queue, out_queue) -> None:
    """Shard main loop: consume events until a close message arrives.

    Receives the parent's pickled plan, seeds the shard's process-global
    plan cache with it, and never rebuilds the automaton.  Runs its own
    :class:`~repro.obs.flight.FlightRecorder` (shared across the shard's
    per-key matchers) whose dump rides the error report back to the
    parent if the shard crashes.
    """
    flight = None
    current_event = None
    try:
        from ..plan.cache import plan_cache
        plan = plan_cache().seed(plan)
        obs = None
        if instrument:
            from ..obs import Observability
            obs = Observability()
        if flight_capacity:
            from ..obs.flight import FlightRecorder
            flight = FlightRecorder(capacity=flight_capacity)
        matcher = PartitionedContinuousMatcher(
            plan, partition_by=attribute, use_filter=use_filter,
            suppress_overlaps=suppress_overlaps, observability=obs,
            flight=flight)
        events_seen = 0
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "e":
                events_seen += 1
                current_event = decode_event(message[1])
                reported = matcher.push(current_event)
                current_event = None
                if reported:
                    out_queue.put(("m", shard_id,
                                   [encode_substitution(s) for s in reported]))
            elif kind == "flush":
                out_queue.put(("flushed", shard_id, message[1], events_seen))
            elif kind == "close":
                reported = matcher.close()
                aggregate = matcher.aggregate()
                snapshot = None if aggregate is None else aggregate.snapshot()
                out_queue.put(("closed", shard_id,
                               [encode_substitution(s) for s in reported],
                               snapshot, events_seen))
                break
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unknown shard message {kind!r}")
    except BaseException as exc:  # surface the reason before dying
        try:
            dump = None
            if flight is not None:
                flight.note_crash(current_event,
                                  f"{type(exc).__name__}: {exc}")
                dump = flight.dump()
            out_queue.put(("error", shard_id,
                           f"{type(exc).__name__}: {exc}", dump))
        finally:
            raise


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedStreamMatcher:
    """Continuous matching fanned out over ``N`` shard processes.

    Parameters
    ----------
    pattern:
        The SES pattern, or a compiled
        :class:`~repro.plan.plan.PatternPlan`; it must equi-join all
        variables on the partition attribute (raises
        :class:`ValueError` otherwise — without a partition key there is
        nothing sound to shard on).  The parent compiles once and ships
        the pickled plan to every shard.
    workers:
        Number of worker processes; defaults to :func:`os.cpu_count`.
        ``shards=`` is the deprecated spelling.
    partition_by:
        Partition attribute; auto-detected when omitted.  ``attribute=``
        is the deprecated spelling.
    use_filter / suppress_overlaps:
        Forwarded to each shard's partitioned matcher.
    queue_size:
        Bound of each shard's input queue (backpressure threshold).
    start_method:
        Multiprocessing start method (see
        :func:`~repro.parallel.pool.default_context`).
    observability:
        Optional :class:`repro.obs.Observability` bundle.  Shards run
        instrumented and their registries merge in at :meth:`close`;
        the parent additionally tracks ``ses_shard<i>_events_total``
        and ``ses_shard<i>_queue_depth`` per shard.  ``obs=`` is the
        deprecated spelling.
    flight_capacity:
        Ring size of each shard's
        :class:`~repro.obs.flight.FlightRecorder` (default 512; ``0``
        disables).  A shard that crashes with an exception ships its
        recorder dump back on the :class:`WorkerCrashed` it raises
        (``flight_dump`` attribute); :meth:`health` feeds the live
        ``/healthz`` endpoint.

    Routing uses ``hash(key) % workers``, which is stable within one
    process (str hashes are randomised per interpreter, so shard
    *assignment* may differ between runs; match results do not).
    """

    def __init__(self, pattern, workers: Optional[int] = None,
                 partition_by: Optional[str] = None, use_filter: bool = True,
                 suppress_overlaps: bool = True, queue_size: int = 1024,
                 start_method: Optional[str] = None, observability=None,
                 flight_capacity: int = 512,
                 shards: Optional[int] = None,
                 attribute: Optional[str] = None, obs=None):
        from ..automaton.optimizations import partition_attribute
        from ..plan.cache import as_plan
        workers = resolve_option("ShardedStreamMatcher", "workers",
                                 workers, "shards", shards)
        partition_by = resolve_option("ShardedStreamMatcher", "partition_by",
                                      partition_by, "attribute", attribute)
        observability = resolve_option("ShardedStreamMatcher",
                                       "observability", observability,
                                       "obs", obs)
        plan = as_plan(pattern)
        if partition_by is None:
            partition_by = partition_attribute(plan.pattern)
        if partition_by is None:
            raise ValueError(
                "pattern does not equi-join all variables on a single "
                "attribute; sharded streaming would lose matches")
        if workers is not None and workers < 1:
            raise ValueError("shards must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.plan = plan
        self.pattern = plan.pattern
        self.attribute = partition_by
        self.n_shards = workers if workers is not None else (os.cpu_count() or 1)
        self.obs = observability
        self._callbacks: List[MatchCallback] = []
        self._matches: List[Substitution] = []
        self._events_routed = [0] * self.n_shards
        self._events_processed = [0] * self.n_shards
        self._flush_seq = 0
        self._closed = False
        context = default_context(start_method)
        self._in_queues = [context.Queue(maxsize=queue_size)
                           for _ in range(self.n_shards)]
        self._out_queue = context.Queue()
        self._processes = []
        for shard_id in range(self.n_shards):
            process = context.Process(
                target=_shard_worker,
                args=(shard_id, plan, partition_by, use_filter,
                      suppress_overlaps, observability is not None,
                      flight_capacity,
                      self._in_queues[shard_id], self._out_queue),
                daemon=True, name=f"ses-shard-{shard_id}")
            process.start()
            self._processes.append(process)
        logger.debug("started %d stream shard(s) on %r", self.n_shards,
                     partition_by)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register a callback invoked once per reported match."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(self, event: Event) -> List[Substitution]:
        """Route one event to its shard; returns matches drained so far.

        Match delivery is asynchronous: a match produced by this event
        may be returned by a later ``push`` or by :meth:`flush`.
        """
        self._require_open()
        shard = hash(event.get(self.attribute)) % self.n_shards
        self._put(shard, ("e", encode_event(event)))
        self._events_routed[shard] += 1
        return self._drain()

    def push_many(self, events) -> List[Substitution]:
        """Feed a batch of events (stream order); returns drained matches."""
        out: List[Substitution] = []
        for event in events:
            out.extend(self.push(event))
        return out

    def flush(self) -> List[Substitution]:
        """Barrier: wait until every pushed event is fully processed.

        Returns the matches reported while waiting.  The stream stays
        open; push more events afterwards.
        """
        self._require_open()
        self._flush_seq += 1
        for shard in range(self.n_shards):
            self._put(shard, ("flush", self._flush_seq))
        pending = set(range(self.n_shards))
        reported: List[Substitution] = []
        while pending:
            message = self._get()
            if message[0] == "flushed":
                _, shard_id, seq, events_seen = message
                if seq == self._flush_seq:
                    pending.discard(shard_id)
                self._events_processed[shard_id] = events_seen
            else:
                reported.extend(self._handle(message))
        self._publish_shard_metrics()
        return reported

    def close(self) -> List[Substitution]:
        """End-of-stream: flush every shard, join workers, merge metrics."""
        if self._closed:
            return []
        self._closed = True
        for shard in range(self.n_shards):
            self._put(shard, ("close",))
        pending = set(range(self.n_shards))
        reported: List[Substitution] = []
        while pending:
            message = self._get(closing=True)
            if message[0] == "closed":
                _, shard_id, wires, snapshot, events_seen = message
                pending.discard(shard_id)
                self._events_processed[shard_id] = events_seen
                reported.extend(self._report(wires))
                if snapshot is not None and self.obs is not None:
                    self.obs.merge_snapshot(snapshot)
            else:
                reported.extend(self._handle(message))
        for process in self._processes:
            process.join(timeout=10.0)
        crashed = [p for p in self._processes
                   if p.exitcode not in (0, None) or p.is_alive()]
        if crashed:
            self.stop()
            names = ", ".join(f"{p.name} (exit {p.exitcode})"
                              for p in crashed)
            raise WorkerCrashed(f"stream shard(s) failed to exit: {names}")
        self._publish_shard_metrics()
        return reported

    def stop(self) -> None:
        """Terminate all shards immediately (no flush, no results)."""
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)

    def __enter__(self) -> "ShardedStreamMatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matches(self) -> List[Substitution]:
        """All matches reported so far, ordered by start timestamp."""
        return sorted(self._matches, key=lambda s: s.min_ts())

    @property
    def queue_depths(self) -> List[int]:
        """Current input-queue depth per shard (-1 where unsupported)."""
        depths = []
        for in_queue in self._in_queues:
            try:
                depths.append(in_queue.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                depths.append(-1)
        return depths

    @property
    def events_routed(self) -> List[int]:
        """Events routed to each shard so far."""
        return list(self._events_routed)

    def health(self) -> dict:
        """Liveness report: per-shard worker state and queue depths.

        The payload behind the live ``/healthz`` endpoint
        (:class:`repro.obs.live.ObsServer`): overall ``status`` is
        ``"ok"`` while every shard process is alive (or has exited
        cleanly after :meth:`close`), ``"degraded"`` otherwise.
        """
        depths = self.queue_depths
        shards = []
        degraded = False
        for shard_id, process in enumerate(self._processes):
            alive = process.is_alive()
            ok = alive or (self._closed and process.exitcode == 0)
            degraded = degraded or not ok
            shards.append({
                "shard": shard_id,
                "alive": alive,
                "exitcode": process.exitcode,
                "queue_depth": depths[shard_id],
                "events_routed": self._events_routed[shard_id],
                "events_processed": self._events_processed[shard_id],
            })
        return {
            "status": "degraded" if degraded else "ok",
            "closed": self._closed,
            "attribute": self.attribute,
            "shards": shards,
        }

    def __repr__(self) -> str:
        return (f"ShardedStreamMatcher({self.attribute!r}, "
                f"{self.n_shards} shards, {len(self._matches)} matches)")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("stream matcher is closed")

    def _put(self, shard: int, message) -> None:
        """Enqueue with liveness checks so a dead shard cannot hang us."""
        in_queue = self._in_queues[shard]
        while True:
            try:
                in_queue.put(message, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                if not self._processes[shard].is_alive():
                    self._crashed(shard)

    def _get(self, closing: bool = False):
        """Dequeue a result with liveness checks."""
        while True:
            try:
                return self._out_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                for shard_id, process in enumerate(self._processes):
                    if not process.is_alive() and (
                            not closing or process.exitcode not in (0, None)):
                        # A shard died with work outstanding; drain any
                        # last messages (its error report) first.
                        try:
                            return self._out_queue.get(timeout=_POLL_SECONDS)
                        except queue.Empty:
                            self._crashed(shard_id)

    def _handle(self, message) -> List[Substitution]:
        """Process a non-ack message from a shard."""
        kind = message[0]
        if kind == "m":
            return self._report(message[2])
        if kind == "error":
            shard_id, reason = message[1], message[2]
            flight_dump = message[3] if len(message) > 3 else None
            self.stop()
            raise WorkerCrashed(
                f"stream shard {shard_id} crashed: {reason}",
                flight_dump=flight_dump)
        if kind == "flushed":  # stale ack from an earlier flush
            self._events_processed[message[1]] = message[3]
            return []
        raise WorkerCrashed(f"unexpected shard message {kind!r}")

    def _report(self, wires) -> List[Substitution]:
        reported = [decode_substitution(w) for w in wires]
        self._matches.extend(reported)
        for substitution in reported:
            for callback in self._callbacks:
                callback(substitution)
        return reported

    def _drain(self) -> List[Substitution]:
        """Collect whatever results are ready without blocking."""
        reported: List[Substitution] = []
        while True:
            try:
                message = self._out_queue.get_nowait()
            except queue.Empty:
                return reported
            reported.extend(self._handle(message))

    def _crashed(self, shard_id: int) -> None:
        exitcode = self._processes[shard_id].exitcode
        self.stop()
        raise WorkerCrashed(
            f"stream shard {shard_id} died (exit code {exitcode}); "
            f"shutting down the remaining shards")

    def _publish_shard_metrics(self) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        depths = self.queue_depths
        for shard_id in range(self.n_shards):
            registry.gauge(
                f"ses_shard{shard_id}_events_total",
                help="events processed by this shard",
            ).set(self._events_processed[shard_id])
            registry.gauge(
                f"ses_shard{shard_id}_queue_depth",
                help="input-queue depth at the last flush/close",
            ).set(depths[shard_id])
