"""Sharded continuous matching: partition-parallel streaming.

:class:`ShardedStreamMatcher` is the streaming analogue of
:class:`~repro.parallel.pool.ParallelPartitionedMatcher`: events are
routed to ``N`` worker processes by ``hash(key) % N`` of the partition
attribute, each worker runs a
:class:`~repro.stream.partitioned.PartitionedContinuousMatcher` over its
share of the key space, and matches stream back to the parent.  Because
every partition key lives in exactly one shard and the pattern
equi-joins all variables on the attribute, the union of the shards'
matches equals the single-process partitioned matcher's matches for the
same input — see ``docs/parallel.md`` for the soundness argument and
ordering guarantees.

Operational properties:

* **bounded queues** — each shard has a bounded input queue, so a slow
  shard exerts backpressure on :meth:`ShardedStreamMatcher.push` instead
  of buffering without limit;
* **flush/close semantics** — :meth:`flush` is a barrier (every event
  pushed so far has been fully processed when it returns); :meth:`close`
  flushes end-of-stream state, merges worker metrics, and joins the
  workers;
* **crash detection** — a dead worker is detected on the next
  ``push``/``flush``/``close`` and surfaces as
  :class:`~repro.parallel.errors.WorkerCrashed` with the shard id and
  exit code, instead of a deadlock on a full or forever-empty queue;
* **crash recovery** — with a
  :class:`~repro.resilience.supervisor.Supervisor` attached, a dead
  shard is instead respawned from its last checkpoint, the write-ahead
  log is replayed, matches are deduplicated by sequence number
  (exactly-once delivery), and events that keep crashing the worker are
  quarantined to a dead-letter queue — see ``docs/resilience.md``.

Wire protocol (parent ↔ shard): every routed event carries a per-shard
1-based sequence number, parent → worker ``("e", seq, wire)``; with
tracing on, sampled events ship the four-element traced wire (the
trace context rides as ``wire[3]``, WAL entries included, so a replay
after a supervised restart preserves trace identity).  The
worker replies ``("m", shard, seq, wires)`` for matches, acks barriers
with ``("flushed", shard, flush_seq, last_seq, guard_stats)`` /
``("closed", shard, wires, obs_snapshot, last_seq, guard_stats,
agg_snapshot)``, ships checkpoints as ``("ckpt", shard, seq, payload)``
and crash reports as ``("error", shard, reason, flight_dump, seq)``.
The trailing ``agg_snapshot`` is the shard's mergeable partial-aggregate
snapshot (``None`` for enumeration plans); the parent folds the shards'
partials into the cross-shard aggregates.
"""

from __future__ import annotations

import logging
import os
import queue
from typing import Callable, List, Optional

from ..agg.result import Match
from ..core.events import Event
from ..core.options import resolve_option
from ..core.substitution import Substitution
from ..stream.partitioned import PartitionedContinuousMatcher
from ..obs.tracectx import sampled
from .codec import (attach_trace_ctx, decode_event, decode_substitution,
                    encode_event, encode_substitution, event_trace_ctx)
from .errors import WorkerCrashed
from .pool import default_context

__all__ = ["ShardedStreamMatcher"]

logger = logging.getLogger(__name__)

#: Subscribers receive the unified :class:`~repro.agg.result.Match`
#: (its ``partition`` field carries the routing key).
MatchCallback = Callable[[Match], None]

#: Seconds between liveness checks while waiting on a queue.
_POLL_SECONDS = 0.2


# ----------------------------------------------------------------------
# Worker side (runs in the shard processes)
# ----------------------------------------------------------------------
def _shard_worker(shard_id: int, plan, attribute: str,
                  use_filter: bool, suppress_overlaps: bool,
                  instrument: bool, flight_capacity: int,
                  in_queue, out_queue, runtime=None) -> None:
    """Shard main loop: consume events until a close message arrives.

    Receives the parent's pickled plan, seeds the shard's process-global
    plan cache with it, and never rebuilds the automaton.  Runs its own
    :class:`~repro.obs.flight.FlightRecorder` (shared across the shard's
    per-key matchers) whose dump rides the error report back to the
    parent if the shard crashes.

    ``runtime`` (a :class:`~repro.resilience.supervisor.ShardRuntime`)
    switches on the resilience features: restore from a checkpoint
    payload, periodic checkpoint messages, the shared in-flight sequence
    cell, injected faults, and resource guards.
    """
    flight = None
    current_event = None
    current_seq = None
    try:
        from ..plan.cache import plan_cache
        plan = plan_cache().seed(plan)
        obs = None
        lineage = None
        if instrument:
            from ..obs import Observability
            obs = Observability()
            lineage = obs.lineage
            if lineage is not None:
                # The parent owns delivery accounting; this shard only
                # contributes detail (paths, hop timestamps).
                lineage.site = f"shard:{shard_id}"
                lineage.authoritative = False
        if flight_capacity:
            from ..obs.flight import FlightRecorder
            flight = FlightRecorder(capacity=flight_capacity)
        guard = None
        injector = None
        checkpoint_every = 0
        seq_value = None
        events_seen = 0
        if runtime is not None:
            checkpoint_every = runtime.checkpoint_every
            seq_value = runtime.seq_value
            events_seen = runtime.start_seq
            if runtime.guard is not None:
                # No registry: trip statistics travel in flush/close
                # acks and the parent owns the counters — binding the
                # worker registry too would double-count at merge.
                from ..resilience.guards import ResourceGuard
                guard = ResourceGuard(runtime.guard)
            if runtime.faults:
                from ..resilience.chaos import FaultInjector
                injector = FaultInjector(runtime.faults, attribute)
        matcher = PartitionedContinuousMatcher(
            plan, partition_by=attribute, use_filter=use_filter,
            suppress_overlaps=suppress_overlaps, observability=obs,
            flight=flight, guard=guard)
        if runtime is not None and runtime.state is not None:
            from ..resilience.checkpoint import restore_state
            restore_state(matcher, runtime.state)
        since_checkpoint = 0
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "e":
                seq, wire = message[1], message[2]
                current_seq = seq
                if seq_value is not None:
                    seq_value.value = seq
                current_event = decode_event(wire)
                if lineage is not None:
                    ctx_wire = event_trace_ctx(wire)
                    if ctx_wire is not None:
                        lineage.adopt(ctx_wire)
                if injector is not None:
                    current_event = injector.before(seq, current_event)
                reported = matcher.push(current_event)
                current_event = None
                current_seq = None
                events_seen = seq
                if reported:
                    out_queue.put(("m", shard_id, seq,
                                   [encode_substitution(s) for s in reported]))
                if checkpoint_every:
                    since_checkpoint += 1
                    if since_checkpoint >= checkpoint_every:
                        since_checkpoint = 0
                        from ..resilience.checkpoint import snapshot_state
                        out_queue.put(("ckpt", shard_id, seq,
                                       snapshot_state(matcher)))
            elif kind == "flush":
                out_queue.put(("flushed", shard_id, message[1], events_seen,
                               None if guard is None else guard.stats()))
            elif kind == "close":
                reported = matcher.close()
                aggregate = matcher.aggregate()
                snapshot = None if aggregate is None else aggregate.snapshot()
                out_queue.put(("closed", shard_id,
                               [encode_substitution(s) for s in reported],
                               snapshot, events_seen,
                               None if guard is None else guard.stats(),
                               matcher.aggregate_snapshot()))
                break
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unknown shard message {kind!r}")
    except BaseException as exc:  # surface the reason before dying
        try:
            dump = None
            if flight is not None:
                flight.note_crash(current_event,
                                  f"{type(exc).__name__}: {exc}")
                dump = flight.dump()
            out_queue.put(("error", shard_id,
                           f"{type(exc).__name__}: {exc}", dump,
                           current_seq if current_seq is not None else 0))
        finally:
            raise


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedStreamMatcher:
    """Continuous matching fanned out over ``N`` shard processes.

    Parameters
    ----------
    pattern:
        The SES pattern, or a compiled
        :class:`~repro.plan.plan.PatternPlan`; it must equi-join all
        variables on the partition attribute (raises
        :class:`ValueError` otherwise — without a partition key there is
        nothing sound to shard on).  The parent compiles once and ships
        the pickled plan to every shard.
    workers:
        Number of worker processes; defaults to :func:`os.cpu_count`.
        ``shards=`` is the deprecated spelling.
    partition_by:
        Partition attribute; auto-detected when omitted.  ``attribute=``
        is the deprecated spelling.
    use_filter / suppress_overlaps:
        Forwarded to each shard's partitioned matcher.
    queue_size:
        Bound of each shard's input queue (backpressure threshold).
    start_method:
        Multiprocessing start method (see
        :func:`~repro.parallel.pool.default_context`).
    observability:
        Optional :class:`repro.obs.Observability` bundle.  Shards run
        instrumented and their registries merge in at :meth:`close`;
        the parent additionally tracks ``ses_shard<i>_events_total``
        and ``ses_shard<i>_queue_depth`` per shard, plus — with guards
        or a supervisor — ``ses_shed_instances``, ``ses_restarts_total``
        and ``ses_quarantined_events``.  ``obs=`` is the deprecated
        spelling.
    flight_capacity:
        Ring size of each shard's
        :class:`~repro.obs.flight.FlightRecorder` (default 512; ``0``
        disables).  A shard that crashes with an exception ships its
        recorder dump back on the :class:`WorkerCrashed` it raises
        (``flight_dump`` attribute); :meth:`health` feeds the live
        ``/healthz`` endpoint.
    supervisor:
        Optional :class:`~repro.resilience.supervisor.Supervisor`.
        Attached, a dead shard is restarted from its checkpoint instead
        of aborting the stream; see ``docs/resilience.md``.
    guard:
        Optional :class:`~repro.resilience.guards.GuardConfig` shipped
        to every shard: each worker enforces the ceilings with its own
        :class:`~repro.resilience.guards.ResourceGuard`, and trip
        statistics ride the flush/close acks back to the parent.
    faults:
        Optional :class:`~repro.resilience.chaos.FaultPlan` injected
        into the shard workers (chaos testing); defaults to the
        supervisor's plan when one is set there.

    Routing uses ``hash(key) % workers``, which is stable within one
    process (str hashes are randomised per interpreter, so shard
    *assignment* may differ between runs; match results do not).
    """

    def __init__(self, pattern, workers: Optional[int] = None,
                 partition_by: Optional[str] = None, use_filter: bool = True,
                 suppress_overlaps: bool = True, queue_size: int = 1024,
                 start_method: Optional[str] = None, observability=None,
                 flight_capacity: int = 512,
                 supervisor=None, guard=None, faults=None,
                 shards: Optional[int] = None,
                 attribute: Optional[str] = None, obs=None):
        from ..automaton.optimizations import partition_attribute
        from ..plan.cache import as_plan
        workers = resolve_option("ShardedStreamMatcher", "workers",
                                 workers, "shards", shards)
        partition_by = resolve_option("ShardedStreamMatcher", "partition_by",
                                      partition_by, "attribute", attribute)
        observability = resolve_option("ShardedStreamMatcher",
                                       "observability", observability,
                                       "obs", obs)
        plan = as_plan(pattern)
        if partition_by is None:
            partition_by = partition_attribute(plan.pattern)
        if partition_by is None:
            raise ValueError(
                "pattern does not equi-join all variables on a single "
                "attribute; sharded streaming would lose matches")
        if workers is not None and workers < 1:
            raise ValueError("shards must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.plan = plan
        self.pattern = plan.pattern
        self.attribute = partition_by
        self.n_shards = workers if workers is not None else (os.cpu_count() or 1)
        self.obs = observability
        self.supervisor = supervisor
        self.guard = guard
        if faults is None and supervisor is not None:
            faults = supervisor.faults
        self.faults = faults
        self._callbacks: List[MatchCallback] = []
        self._matches: List[Substitution] = []
        self._agg_snapshot = None
        self._events_routed = [0] * self.n_shards
        self._events_processed = [0] * self.n_shards
        self._flush_seq = 0
        self._closed = False
        #: In-progress barrier kind (``"flush"``/``"close"``/``None``)
        #: and the shards still owing an ack — read by the supervisor to
        #: re-issue a barrier a dead worker never answered.
        self._barrier: Optional[str] = None
        self._barrier_pending: set = set()
        self._guard_stats = [None] * self.n_shards
        self._guard_carry = [{} for _ in range(self.n_shards)]
        self._guard_published: dict = {}
        self._backpressure_waits = 0
        self._backpressure_published = 0
        self._use_filter = use_filter
        self._suppress_overlaps = suppress_overlaps
        self._flight_capacity = flight_capacity
        self._queue_size = queue_size
        self._shard_faults = {
            shard: (faults.for_shard(shard) if faults is not None else [])
            for shard in range(self.n_shards)}
        context = default_context(start_method)
        self._context = context
        self._in_queues = [context.Queue(maxsize=queue_size)
                           for _ in range(self.n_shards)]
        self._out_queue = context.Queue()
        if supervisor is not None:
            self._seq_values = [context.Value("q", 0, lock=False)
                                for _ in range(self.n_shards)]
            supervisor.bind(self)
        else:
            self._seq_values = [None] * self.n_shards
        self._processes: List = [None] * self.n_shards
        for shard_id in range(self.n_shards):
            self._spawn(shard_id)
        logger.debug("started %d stream shard(s) on %r%s", self.n_shards,
                     partition_by,
                     ", supervised" if supervisor is not None else "")

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int, state: Optional[bytes] = None,
               start_seq: int = 0) -> None:
        """Start (or restart) one shard worker process."""
        runtime = None
        if (self.supervisor is not None or self.guard is not None
                or self._shard_faults.get(shard_id)):
            from ..resilience.supervisor import ShardRuntime
            runtime = ShardRuntime(
                checkpoint_every=(self.supervisor.checkpoint_every
                                  if self.supervisor is not None else 0),
                start_seq=start_seq, state=state,
                seq_value=self._seq_values[shard_id],
                faults=list(self._shard_faults.get(shard_id, ())),
                guard=self.guard)
        process = self._context.Process(
            target=_shard_worker,
            args=(shard_id, self.plan, self.attribute, self._use_filter,
                  self._suppress_overlaps, self.obs is not None,
                  self._flight_capacity, self._in_queues[shard_id],
                  self._out_queue, runtime),
            daemon=True, name=f"ses-shard-{shard_id}")
        process.start()
        self._processes[shard_id] = process

    def _respawn(self, shard_id: int, state: Optional[bytes] = None,
                 start_seq: int = 0) -> None:
        """Replace a dead shard: fresh input queue, fresh worker.

        Called by the supervisor after the dead process is joined and
        its stale messages are drained; the old queue (and anything
        still buffered in it) is abandoned — the WAL replay re-delivers
        every event the old worker never finished.
        """
        self._fold_guard_stats(shard_id)
        self._in_queues[shard_id] = self._context.Queue(
            maxsize=self._queue_size)
        if self._seq_values[shard_id] is not None:
            self._seq_values[shard_id].value = 0
        self._spawn(shard_id, state=state, start_seq=start_seq)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def on_match(self, callback: MatchCallback) -> MatchCallback:
        """Register a callback invoked once per reported match."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(self, event: Event) -> List[Substitution]:
        """Route one event to its shard; returns matches drained so far.

        Match delivery is asynchronous: a match produced by this event
        may be returned by a later ``push`` or by :meth:`flush`.
        """
        self._require_open()
        shard = hash(event.get(self.attribute)) % self.n_shards
        seq = self._events_routed[shard] + 1
        self._events_routed[shard] = seq
        wire = encode_event(event)
        lineage = None if self.obs is None else self.obs.lineage
        if lineage is not None:
            # True ingest happens here; sampled events carry their
            # context on the wire (and hence into the WAL, so replayed
            # events keep their original trace identity).
            ctx = lineage.note_ingest(event)
            if sampled(ctx.trace_id, lineage.config.sample_rate):
                wire = attach_trace_ctx(wire, ctx.to_wire())
        if self.supervisor is not None:
            # Write-ahead: the event is recoverable before it is queued.
            self.supervisor.record_event(shard, seq, wire)
        self._put(shard, ("e", seq, wire))
        return self._drain()

    def push_many(self, events) -> List[Substitution]:
        """Feed a batch of events (stream order); returns drained matches."""
        out: List[Substitution] = []
        for event in events:
            out.extend(self.push(event))
        return out

    def flush(self) -> List[Substitution]:
        """Barrier: wait until every pushed event is fully processed.

        Returns the matches reported while waiting.  The stream stays
        open; push more events afterwards.
        """
        self._require_open()
        self._flush_seq += 1
        self._barrier = "flush"
        self._barrier_pending = set(range(self.n_shards))
        reported: List[Substitution] = []
        try:
            for shard in range(self.n_shards):
                self._put(shard, ("flush", self._flush_seq))
            while self._barrier_pending:
                reported.extend(self._handle(self._get()))
        finally:
            self._barrier = None
            self._barrier_pending = set()
        self._publish_shard_metrics()
        return reported

    def close(self) -> List[Substitution]:
        """End-of-stream: flush every shard, join workers, merge metrics.

        If a shard crashes (unsupervised) while later shards still owe
        their results, the raised :class:`WorkerCrashed` carries the
        matches already drained as ``partial_matches`` instead of
        discarding them.
        """
        if self._closed:
            return []
        self._closed = True
        self._barrier = "close"
        self._barrier_pending = set(range(self.n_shards))
        reported: List[Substitution] = []
        try:
            for shard in range(self.n_shards):
                self._put(shard, ("close",))
            while self._barrier_pending:
                reported.extend(self._handle(self._get(closing=True)))
        except WorkerCrashed as exc:
            # Don't discard work that other shards completed: hand the
            # already-drained matches to the caller on the exception.
            exc.partial_matches = list(reported)
            raise
        finally:
            self._barrier = None
            self._barrier_pending = set()
        for process in self._processes:
            process.join(timeout=10.0)
        crashed = [p for p in self._processes
                   if p.exitcode not in (0, None) or p.is_alive()]
        if crashed:
            self.stop()
            names = ", ".join(f"{p.name} (exit {p.exitcode})"
                              for p in crashed)
            raise WorkerCrashed(f"stream shard(s) failed to exit: {names}",
                                partial_matches=reported)
        self._publish_shard_metrics()
        if self.obs is not None:
            from ..explain.stats import stats_key, stats_store
            stats_store().observe(stats_key(self.pattern), runs=1)
        return reported

    def stop(self) -> None:
        """Terminate all shards immediately (no flush, no results)."""
        self._closed = True
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
        for process in self._processes:
            if process is not None:
                process.join(timeout=5.0)

    def __enter__(self) -> "ShardedStreamMatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matches(self) -> List[Substitution]:
        """All matches reported so far, ordered by start timestamp."""
        return sorted(self._matches, key=lambda s: s.min_ts())

    def aggregate_snapshot(self):
        """Merged cross-shard partial-aggregate snapshot (``None`` for
        enumeration plans).  Shards ship their partials on ``close``, so
        before :meth:`close` this is empty for aggregation plans."""
        if self.plan.aggregate is None:
            return None
        from ..agg.engine import empty_snapshot, merge_snapshots
        merged = merge_snapshots(self.plan.aggregate, None,
                                 self._agg_snapshot)
        return merged if merged is not None else empty_snapshot(
            self.plan.aggregate)

    def aggregates(self):
        """Cross-shard aggregates as an
        :class:`~repro.agg.result.AggregateSeries` (``None`` for
        enumeration plans); complete only after :meth:`close`."""
        if self.plan.aggregate is None:
            return None
        from ..agg.result import AggregateSeries
        return AggregateSeries(self.plan.aggregate, self.aggregate_snapshot())

    @property
    def queue_depths(self) -> List[int]:
        """Current input-queue depth per shard (-1 where unsupported)."""
        depths = []
        for in_queue in self._in_queues:
            try:
                depths.append(in_queue.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                depths.append(-1)
        return depths

    @property
    def events_routed(self) -> List[int]:
        """Events routed to each shard so far."""
        return list(self._events_routed)

    def health(self) -> dict:
        """Liveness report: per-shard worker state and queue depths.

        The payload behind the live ``/healthz`` endpoint
        (:class:`repro.obs.live.ObsServer`).  ``status`` is three-valued:

        * ``"ok"`` — every shard alive (or cleanly exited after
          :meth:`close`), no recoveries, no guard activity;
        * ``"degraded"`` — still serving, but running on a restart
          budget (supervised restarts or quarantined events) or with
          guards actively shedding state; a dead-but-supervised shard
          (recovery pending on the next operation) also reports here;
        * ``"failed"`` — a shard is dead and nothing will restart it:
          unsupervised crash, or the supervisor's budget is exhausted.
        """
        depths = self.queue_depths
        supervised = self.supervisor is not None
        shards = []
        dead = False
        for shard_id, process in enumerate(self._processes):
            alive = process.is_alive()
            ok = alive or (self._closed and process.exitcode == 0)
            dead = dead or not ok
            entry = {
                "shard": shard_id,
                "alive": alive,
                "exitcode": process.exitcode,
                "queue_depth": depths[shard_id],
                "events_routed": self._events_routed[shard_id],
                "events_processed": self._events_processed[shard_id],
            }
            if supervised:
                entry["restarts"] = self.supervisor.restarts_of(shard_id)
            shards.append(entry)
        guard_totals = (self._guard_totals()
                        if self.guard is not None else None)
        shedding = bool(guard_totals) and (guard_totals.get("shed", 0) > 0
                                           or guard_totals.get("degraded", 0)
                                           > 0)
        if supervised and self.supervisor.failed:
            status = "failed"
        elif dead and not supervised:
            status = "failed"
        elif dead or shedding or (supervised and self.supervisor.degraded):
            status = "degraded"
        else:
            status = "ok"
        report = {
            "status": status,
            "closed": self._closed,
            "attribute": self.attribute,
            "supervised": supervised,
            "shards": shards,
        }
        if supervised:
            report["supervisor"] = self.supervisor.report()
        if guard_totals is not None:
            report["guard"] = guard_totals
        return report

    def __repr__(self) -> str:
        return (f"ShardedStreamMatcher({self.attribute!r}, "
                f"{self.n_shards} shards, {len(self._matches)} matches)")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("stream matcher is closed")

    def _put(self, shard: int, message) -> None:
        """Enqueue with liveness checks so a dead shard cannot hang us.

        Supervised, a death observed here hands off to the supervisor
        and then simply returns: events are covered by the WAL replay
        and barriers are re-issued by the recovery itself, so the
        message needs no direct retry (re-sending it would deliver it
        twice).  The queue is re-read every attempt because recovery
        swaps in a fresh one.
        """
        while True:
            in_queue = self._in_queues[shard]
            try:
                in_queue.put(message, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                self._backpressure_waits += 1
                if not self._processes[shard].is_alive():
                    if self.supervisor is not None:
                        self.supervisor.on_crash(shard)
                        return
                    self._crashed(shard)

    def _get(self, closing: bool = False):
        """Dequeue a result with liveness checks."""
        while True:
            try:
                return self._out_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                for shard_id, process in enumerate(self._processes):
                    if not process.is_alive() and (
                            not closing or process.exitcode not in (0, None)):
                        # A shard died with work outstanding; drain any
                        # last messages (its error report) first.
                        try:
                            return self._out_queue.get(timeout=_POLL_SECONDS)
                        except queue.Empty:
                            if self.supervisor is not None:
                                self.supervisor.on_crash(shard_id)
                                break
                            self._crashed(shard_id)

    def _handle(self, message) -> List[Substitution]:
        """Process a non-ack message from a shard."""
        kind = message[0]
        if kind == "m":
            shard_id, seq = message[1], message[2]
            if (self.supervisor is not None
                    and not self.supervisor.should_deliver(shard_id, seq)):
                return []  # replayed duplicate: already delivered
            return self._report(message[3], shard=shard_id)
        if kind == "ckpt":
            if self.supervisor is not None:
                self.supervisor.record_checkpoint(
                    message[1], message[2], message[3])
            return []
        if kind == "error":
            shard_id, reason = message[1], message[2]
            flight_dump = message[3] if len(message) > 3 else None
            seq = message[4] if len(message) > 4 else 0
            if self.supervisor is not None:
                self.supervisor.on_crash(shard_id, reason, flight_dump, seq)
                return []
            self.stop()
            raise WorkerCrashed(
                f"stream shard {shard_id} crashed: {reason}",
                flight_dump=flight_dump)
        if kind == "flushed":
            _, shard_id, seq, events_seen, guard_stats = message
            if self._barrier == "flush" and seq == self._flush_seq:
                self._barrier_pending.discard(shard_id)
            self._events_processed[shard_id] = events_seen
            self._note_guard_stats(shard_id, guard_stats)
            return []
        if kind == "closed":
            (_, shard_id, wires, snapshot, events_seen,
             guard_stats) = message[:6]
            agg_snapshot = message[6] if len(message) > 6 else None
            self._barrier_pending.discard(shard_id)
            self._events_processed[shard_id] = events_seen
            self._note_guard_stats(shard_id, guard_stats)
            if agg_snapshot is not None:
                from ..agg.engine import merge_snapshots
                self._agg_snapshot = merge_snapshots(
                    self.plan.aggregate, self._agg_snapshot, agg_snapshot)
            reported = self._report(wires, shard=shard_id)
            if snapshot is not None and self.obs is not None:
                self.obs.merge_snapshot(snapshot)
            if snapshot is not None:
                # Feed the shard's cardinalities to the statistics store
                # (per shard with runs=0; close() counts the run once).
                from ..explain.stats import stats_key, stats_store
                read = snapshot.get("ses_events_read_total",
                                    {}).get("value", 0)
                processed = snapshot.get("ses_events_processed_total",
                                         {}).get("value", 0)
                matches = snapshot.get("ses_stream_matches_reported_total",
                                       {}).get("value", 0)
                stats_store().observe(
                    stats_key(self.pattern), runs=0, events=read,
                    matches=matches, filter_seen=read,
                    filter_admitted=processed)
            return reported
        raise WorkerCrashed(f"unexpected shard message {kind!r}")

    def _report(self, wires,
                shard: Optional[int] = None) -> List[Substitution]:
        reported = [decode_substitution(w) for w in wires]
        self._matches.extend(reported)
        lineage = None if self.obs is None else self.obs.lineage
        provenances = None
        if lineage is not None:
            # Parent-side delivery stamp, after the supervisor's
            # exactly-once gate — a replayed duplicate never reaches
            # this point, so a delivered count above 1 is a real bug.
            by = "parent" if shard is None else f"shard:{shard}"
            provenances = [lineage.deliver(s, by=by) for s in reported]
        if self._callbacks:
            for index, substitution in enumerate(reported):
                events = substitution.events()
                key = events[0].get(self.attribute) if events else None
                delivered = Match(substitution, partition=key,
                                  provenance=(provenances[index]
                                              if provenances is not None
                                              else None))
                for callback in self._callbacks:
                    callback(delivered)
        return reported

    def _drain(self) -> List[Substitution]:
        """Collect whatever results are ready without blocking."""
        reported: List[Substitution] = []
        while True:
            try:
                message = self._out_queue.get_nowait()
            except queue.Empty:
                return reported
            reported.extend(self._handle(message))

    def _crashed(self, shard_id: int) -> None:
        exitcode = self._processes[shard_id].exitcode
        self.stop()
        raise WorkerCrashed(
            f"stream shard {shard_id} died (exit code {exitcode}); "
            f"shutting down the remaining shards")

    # ------------------------------------------------------------------
    # Guard statistics (workers report plain dicts; parent owns counters)
    # ------------------------------------------------------------------
    def _note_guard_stats(self, shard_id: int, stats) -> None:
        if stats is not None:
            self._guard_stats[shard_id] = stats

    def _fold_guard_stats(self, shard_id: int) -> None:
        """Bank a dying worker's last reported stats: its replacement
        starts counting from zero again."""
        stats = self._guard_stats[shard_id]
        if stats:
            carry = self._guard_carry[shard_id]
            for key, value in stats.items():
                carry[key] = carry.get(key, 0) + value
        self._guard_stats[shard_id] = None

    def _guard_totals(self) -> dict:
        totals = {"trips": 0, "shed": 0, "degraded": 0}
        for shard_id in range(self.n_shards):
            for source in (self._guard_carry[shard_id],
                           self._guard_stats[shard_id] or {}):
                for key in totals:
                    totals[key] += source.get(key, 0)
        return totals

    def _publish_shard_metrics(self) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        depths = self.queue_depths
        for shard_id in range(self.n_shards):
            registry.gauge(
                f"ses_shard{shard_id}_events_total",
                help="events processed by this shard",
            ).set(self._events_processed[shard_id])
            registry.gauge(
                f"ses_shard{shard_id}_queue_depth",
                help="input-queue depth at the last flush/close",
            ).set(depths[shard_id])
        registry.gauge(
            "ses_queue_depth_max",
            help="deepest shard input queue at the last flush/close",
        ).set(max((d for d in depths if d >= 0), default=0))
        delta = self._backpressure_waits - self._backpressure_published
        if delta > 0:
            registry.counter(
                "ses_backpressure_waits_total",
                help="bounded-queue full waits while routing events",
            ).inc(delta)
            self._backpressure_published = self._backpressure_waits
        if self.guard is not None:
            totals = self._guard_totals()
            for key, name, help_text in (
                    ("shed", "ses_shed_instances",
                     "instances dropped by the shed/degrade guard policy"),
                    ("degraded", "ses_degraded_instances_total",
                     "over-arity group instances dropped by the degrade "
                     "policy"),
                    ("trips", "ses_guard_trips_total",
                     "resource-guard ceiling breaches")):
                delta = totals[key] - self._guard_published.get(key, 0)
                if delta > 0:
                    registry.counter(name, help=help_text).inc(delta)
                    self._guard_published[key] = totals[key]
