"""Executable complexity analysis (Section 4.4): Theorems 1-3, Lemma 1."""

from .bounds import (
    ComplexityCase,
    ComplexityReport,
    all_pairwise_mutually_exclusive,
    analyze,
    are_mutually_exclusive,
    classify_set,
    conditions_conflict,
    pattern_instance_bound,
    set_instance_bound,
    window_size,
)

__all__ = [
    "ComplexityCase", "ComplexityReport", "all_pairwise_mutually_exclusive",
    "analyze", "are_mutually_exclusive", "classify_set",
    "conditions_conflict", "pattern_instance_bound", "set_instance_bound",
    "window_size",
]
