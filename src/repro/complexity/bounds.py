"""Executable complexity analysis (Section 4.4 of the paper).

This module turns the paper's definitions and theorems into code:

* :func:`window_size` — Definition 5, the maximal number of events in a
  sliding window of width τ.
* :func:`are_mutually_exclusive` / :func:`all_pairwise_mutually_exclusive`
  — Definition 6 and the premise of Lemma 1.
* :func:`classify_set` / :func:`set_instance_bound` — Theorems 1–3: upper
  bounds on the number of simultaneous automaton instances spawned from
  *one* start instance for a single event set pattern.
* :func:`pattern_instance_bound` — the combined bound
  ``O(W · (|Ω|max)^n)`` for patterns with several event set patterns.

The mutual-exclusivity test is *conservative*: it reports two variables as
mutually exclusive only when a pair of constant conditions provably cannot
be satisfied by one event (e.g. ``v.L = 'C'`` vs ``v'.L = 'D'``).  When in
doubt it answers ``False``, which errs toward the *larger* complexity
class — the bounds remain sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Optional, Tuple

from ..core.conditions import Condition
from ..core.pattern import SESPattern
from ..core.relation import EventRelation
from ..core.variables import Variable

__all__ = [
    "window_size",
    "conditions_conflict",
    "are_mutually_exclusive",
    "all_pairwise_mutually_exclusive",
    "ComplexityCase",
    "classify_set",
    "set_instance_bound",
    "pattern_instance_bound",
    "ComplexityReport",
    "analyze",
]


def window_size(relation: EventRelation, tau: Any) -> int:
    """Window size ``W`` (Definition 5) of ``relation`` for duration τ."""
    return relation.window_size(tau)


# ----------------------------------------------------------------------
# Mutual exclusivity (Definition 6)
# ----------------------------------------------------------------------
def _comparable(a: Any, b: Any) -> bool:
    """True iff ``a < b`` is a meaningful comparison."""
    try:
        a < b  # noqa: B015 — probing comparability
    except TypeError:
        return False
    return True


def conditions_conflict(c1: Condition, c2: Condition) -> bool:
    """True iff no single event can satisfy both constant conditions.

    Both conditions must be constant conditions on the *same attribute*;
    otherwise they trivially coexist and the function returns ``False``.
    The test uses continuous-domain interval logic, which is conservative
    for discrete domains (it may answer ``False`` where a discrete-domain
    argument could prove a conflict, never the other way around).
    """
    if not (c1.is_constant and c2.is_constant):
        return False
    if c1.left.attribute != c2.left.attribute:
        return False
    op1, k1 = c1.op, c1.right.value  # type: ignore[union-attr]
    op2, k2 = c2.op, c2.right.value  # type: ignore[union-attr]

    # Equality vs equality: conflicting iff the constants differ.
    if op1 == "=" and op2 == "=":
        return not _values_equal(k1, k2)
    # Equality vs inequality and the rest need comparability.
    if op1 == "=":
        return _point_violates(k1, op2, k2)
    if op2 == "=":
        return _point_violates(k2, op1, k1)
    if not _comparable(k1, k2):
        return False
    # Both one-sided ranges: conflict iff they bound an empty interval.
    lower1, upper1 = _range_of(op1, k1)
    lower2, upper2 = _range_of(op2, k2)
    lower = _max_bound(lower1, lower2)
    upper = _min_bound(upper1, upper2)
    if lower is None or upper is None:
        return False
    lo_value, lo_strict = lower
    hi_value, hi_strict = upper
    if lo_value > hi_value:
        return True
    if lo_value == hi_value and (lo_strict or hi_strict):
        return True
    return False


def _values_equal(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover — exotic payloads
        return False


def _point_violates(point: Any, op: str, constant: Any) -> bool:
    """True iff the fixed value ``point`` cannot satisfy ``A op constant``."""
    if op == "=":
        return not _values_equal(point, constant)
    if op == "!=":
        return _values_equal(point, constant)
    if not _comparable(point, constant):
        return False
    from ..core.conditions import OPERATORS
    try:
        return not OPERATORS[op](point, constant)
    except TypeError:  # pragma: no cover — _comparable screens this
        return False


def _range_of(op: str, k: Any) -> Tuple[Optional[Tuple[Any, bool]],
                                        Optional[Tuple[Any, bool]]]:
    """Interval ``(lower, upper)`` implied by ``A op k``; bounds are
    ``(value, strict)`` or ``None`` for unbounded.  ``!=`` is unbounded."""
    if op == "<":
        return None, (k, True)
    if op == "<=":
        return None, (k, False)
    if op == ">":
        return (k, True), None
    if op == ">=":
        return (k, False), None
    return None, None  # "!=" excludes a point only


def _max_bound(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a[0] != b[0]:
        return a if a[0] > b[0] else b
    return (a[0], a[1] or b[1])


def _min_bound(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a[0] != b[0]:
        return a if a[0] < b[0] else b
    return (a[0], a[1] or b[1])


def are_mutually_exclusive(pattern: SESPattern, v1: Variable,
                           v2: Variable) -> bool:
    """Definition 6: can no single event match both variables?

    True iff Θ contains constant conditions on ``v1`` and ``v2`` over the
    same attribute that no event satisfies simultaneously.
    """
    if v1 == v2:
        return False
    for c1 in pattern.constant_conditions(v1):
        for c2 in pattern.constant_conditions(v2):
            if conditions_conflict(c1, c2):
                return True
    return False


def all_pairwise_mutually_exclusive(pattern: SESPattern,
                                    variables: Optional[Iterable[Variable]] = None
                                    ) -> bool:
    """Premise of Lemma 1: are all given variables pairwise exclusive?

    Defaults to all variables of the pattern.  When true, nondeterminism
    cannot occur during execution and Theorem 1 applies.
    """
    vs = sorted(variables) if variables is not None else sorted(pattern.variables)
    for i, v1 in enumerate(vs):
        for v2 in vs[i + 1:]:
            if not are_mutually_exclusive(pattern, v1, v2):
                return False
    return True


# ----------------------------------------------------------------------
# Theorems 1–3
# ----------------------------------------------------------------------
class ComplexityCase(Enum):
    """The three cases of Section 4.4 for a single event set pattern."""

    #: Case 1 — pairwise mutually exclusive variables: O(1).
    MUTUALLY_EXCLUSIVE = "mutually exclusive (Theorem 1)"
    #: Case 2 — not exclusive, no group variable: O(|V1|!).
    FACTORIAL = "no group variables (Theorem 2)"
    #: Case 3, k = 1 — one group variable: O((|V1|-1)! · W^|V1|).
    SINGLE_GROUP = "one group variable (Theorem 3, k=1)"
    #: Case 3, k > 1 — k group variables: O(k · (|V1|-1)! · k^(W·|V1|)).
    MULTI_GROUP = "k>1 group variables (Theorem 3, k>1)"


def classify_set(pattern: SESPattern, set_index: int) -> ComplexityCase:
    """Classify one event set pattern into the case analysis of Section 4.4."""
    variables = pattern.sets[set_index]
    if all_pairwise_mutually_exclusive(pattern, variables):
        return ComplexityCase.MUTUALLY_EXCLUSIVE
    k = sum(1 for v in variables if v.is_group)
    if k == 0:
        return ComplexityCase.FACTORIAL
    if k == 1:
        return ComplexityCase.SINGLE_GROUP
    return ComplexityCase.MULTI_GROUP


def set_instance_bound(pattern: SESPattern, set_index: int, window: int) -> int:
    """Upper bound on instances spawned from one start instance (Theorems 1–3).

    ``window`` is the window size ``W`` of Definition 5.
    """
    if window < 0:
        raise ValueError("window size must be non-negative")
    variables = pattern.sets[set_index]
    n = len(variables)
    case = classify_set(pattern, set_index)
    if case is ComplexityCase.MUTUALLY_EXCLUSIVE:
        return 1
    if case is ComplexityCase.FACTORIAL:
        return math.factorial(n)
    k = sum(1 for v in variables if v.is_group)
    if case is ComplexityCase.SINGLE_GROUP:
        return math.factorial(n - 1) * window ** n
    return k * math.factorial(n - 1) * k ** (window * n)


def pattern_instance_bound(pattern: SESPattern, window: int) -> int:
    """Combined bound ``O(W · (|Ω|max)^n)`` for the whole pattern.

    ``|Ω|max`` is the worst per-set bound among the pattern's event set
    patterns and ``n`` the number of event set patterns (end of Section
    4.4).  The ``W`` factor accounts for the start instances created while
    sliding over one window.
    """
    worst = max(set_instance_bound(pattern, i, window)
                for i in range(len(pattern)))
    return window * worst ** len(pattern)


@dataclass
class ComplexityReport:
    """Summary of the complexity analysis for one pattern and window size."""

    window: int
    cases: Tuple[ComplexityCase, ...]
    set_bounds: Tuple[int, ...]
    total_bound: int
    mutually_exclusive: bool

    def describe(self) -> str:
        """Multi-line, human-readable report."""
        lines = [f"window size W = {self.window}"]
        for i, (case, bound) in enumerate(zip(self.cases, self.set_bounds)):
            magnitude = (f"10^{len(str(bound)) - 1}" if bound >= 10_000_000
                         else str(bound))
            lines.append(f"  V{i + 1}: {case.value}; per-start bound {magnitude}")
        total = (f"10^{len(str(self.total_bound)) - 1}"
                 if self.total_bound >= 10_000_000 else str(self.total_bound))
        lines.append(f"  total bound O(W·(|Ω|max)^n) = {total}")
        return "\n".join(lines)


def analyze(pattern: SESPattern, window: int) -> ComplexityReport:
    """Run the full Section 4.4 analysis for ``pattern`` and ``window``."""
    cases = tuple(classify_set(pattern, i) for i in range(len(pattern)))
    set_bounds = tuple(set_instance_bound(pattern, i, window)
                       for i in range(len(pattern)))
    return ComplexityReport(
        window=window,
        cases=cases,
        set_bounds=set_bounds,
        total_bound=pattern_instance_bound(pattern, window),
        mutually_exclusive=all_pairwise_mutually_exclusive(pattern),
    )
