"""Typed results for the unified :func:`repro.query` façade.

Seven PRs of growth left result consumption spelled several ways: batch
matchers returned ``Substitution`` lists, stream runner callbacks got a
bare substitution, registry fan-out handed back ``(pattern_id,
substitution)`` tuples.  This module is the one surface replacing them:

* :class:`Match` — one match, wherever it came from.  Wraps the
  substitution and carries the delivery context (``pattern_id`` for
  registry fan-out, ``partition`` for partitioned streams).
* :class:`MatchSet` — an enumeration query's result: a
  :class:`~repro.automaton.executor.MatchResult` whose iteration yields
  :class:`Match` objects.
* :class:`AggregateSeries` — an aggregation query's result: finalised
  ``{label: value}`` values plus the mergeable snapshot they came from.

``Result = Union[MatchSet, AggregateSeries]`` is what
:func:`repro.query` returns; dispatch on ``result.kind`` (``"matches"``
vs ``"aggregates"``) or with ``isinstance``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Union

from ..automaton.executor import MatchResult
from ..core.substitution import Substitution
from .engine import empty_snapshot, finalize_snapshot, merge_snapshots
from .spec import AggregateSpec

__all__ = ["Match", "MatchSet", "AggregateSeries", "Result"]


@dataclass(frozen=True)
class Match:
    """One delivered match, uniform across every consumption path.

    ``pattern_id`` is set for registry fan-out, ``partition`` for
    partitioned stream delivery; both are ``None`` for plain batch and
    single-pattern stream matches.  ``provenance`` carries the match's
    :class:`~repro.obs.lineage.Provenance` record — contributing event
    ids, transition path, per-stage timestamps, delivering site — when a
    lineage recorder sampled the delivery; ``None`` otherwise.
    """

    substitution: Substitution
    pattern_id: Optional[str] = None
    partition: Any = None
    provenance: Any = None

    def __iter__(self):
        return iter(self.substitution)

    @property
    def bindings(self):
        return self.substitution.bindings

    @property
    def variables(self):
        return self.substitution.variables

    def events_of(self, variable):
        return self.substitution.events_of(variable)

    def events(self):
        return self.substitution.events()

    def min_ts(self):
        return self.substitution.min_ts()

    def max_ts(self):
        return self.substitution.max_ts()

    def __repr__(self) -> str:
        context = ""
        if self.pattern_id is not None:
            context += f", pattern_id={self.pattern_id!r}"
        if self.partition is not None:
            context += f", partition={self.partition!r}"
        if self.provenance is not None:
            context += f", provenance={self.provenance.match_id}"
        return f"Match({self.substitution!r}{context})"


class MatchSet(MatchResult):
    """Enumeration result of :func:`repro.query`.

    Identical to :class:`MatchResult` (``len``, ``to_rows``, ``stats``,
    ``accepted``) except that iteration yields :class:`Match` wrappers —
    the unified delivery type.  ``substitutions`` exposes the raw
    :class:`Substitution` list for callers that want it.
    """

    kind = "matches"

    #: Per-match :class:`~repro.obs.lineage.Provenance` records aligned
    #: with ``matches`` (``None`` entries for unsampled deliveries);
    #: absent until :meth:`attach_lineage` runs.
    lineage = None

    def __iter__(self):
        lineage = self.lineage
        for index, substitution in enumerate(self.matches):
            provenance = (lineage[index]
                          if lineage is not None and index < len(lineage)
                          else None)
            yield Match(substitution, provenance=provenance)

    def attach_lineage(self, records) -> "MatchSet":
        """Attach delivery-time provenance, positionally aligned with
        ``matches`` (done by :func:`repro.query` after stamping)."""
        self.lineage = list(records)
        return self

    @property
    def substitutions(self) -> List[Substitution]:
        """The raw substitutions (pre-wrap)."""
        return list(self.matches)

    @classmethod
    def from_result(cls, result: MatchResult) -> "MatchSet":
        return cls(matches=result.matches, accepted=result.accepted,
                   stats=result.stats)

    def __repr__(self) -> str:
        return (f"MatchSet({len(self.matches)} matches, "
                f"{len(self.accepted)} accepted)")


class AggregateSeries:
    """Aggregation result of :func:`repro.query`: finalised values.

    Mapping-flavoured: ``series["count(*)"]`` (or the ``AS`` alias)
    returns a value, iteration yields ``(label, value)`` pairs in
    declaration order.  ``snapshot`` is the mergeable partial the values
    were finalised from — worker merging and checkpoint restore operate
    on snapshots, never on finalised values.
    """

    kind = "aggregates"

    #: Group-level :class:`~repro.obs.lineage.Provenance` (aggregates
    #: materialise no matches, so lineage summarises the contributing
    #: event stream and fold count); attached by :func:`repro.query`
    #: when tracing is on.
    provenance = None

    def __init__(self, spec: AggregateSpec, snapshot: Optional[dict] = None,
                 stats=None):
        self.spec = spec
        self.snapshot = (empty_snapshot(spec) if snapshot is None
                         else snapshot)
        self.stats = stats
        self.values = finalize_snapshot(spec, self.snapshot)

    @property
    def matches_folded(self) -> int:
        """Matches folded into the totals (never materialised)."""
        return self.snapshot["matches"]

    @property
    def labels(self):
        return self.spec.labels

    def __getitem__(self, label):
        if isinstance(label, int):
            label = self.spec.labels[label]
        return self.values[label]

    def __iter__(self):
        for label in self.spec.labels:
            yield label, self.values[label]

    def __len__(self) -> int:
        return len(self.spec.labels)

    def merged_with(self, other: "AggregateSeries") -> "AggregateSeries":
        """A new series folding in another partial (same spec)."""
        return AggregateSeries(
            self.spec, merge_snapshots(self.spec, self.snapshot,
                                       other.snapshot),
            stats=self.stats)

    def to_rows(self) -> List[dict]:
        """One row per aggregate (for tabulation/serialisation)."""
        return [{"aggregate": label, "value": value}
                for label, value in self]

    def __repr__(self) -> str:
        inner = ", ".join(f"{label}={value!r}" for label, value in self)
        return f"AggregateSeries({inner}; folded={self.matches_folded})"


Result = Union[MatchSet, AggregateSeries]
