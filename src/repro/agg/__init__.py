"""Online aggregation without match materialisation (GRETA-style).

``SELECT count(*) | count(v.A) | sum(v.A) | min(v.A) | max(v.A) |
avg(v.A) FROM PATTERN ... WITHIN ...`` queries are folded incrementally
inside the executor by :class:`AggregationEngine` — no match is ever
materialised.  See ``docs/aggregation.md`` for semantics, asymptotics
and the :func:`repro.query` façade.
"""

from .engine import (MISSING, AggregationEngine, empty_snapshot,
                     finalize_snapshot, fold_reference, merge_snapshots)
from .result import AggregateSeries, Match, MatchSet, Result
from .spec import AGGREGATE_FUNCS, Aggregate, AggregateSpec

__all__ = [
    "AGGREGATE_FUNCS",
    "Aggregate",
    "AggregateSpec",
    "AggregateSeries",
    "AggregationEngine",
    "Match",
    "MatchSet",
    "MISSING",
    "Result",
    "empty_snapshot",
    "finalize_snapshot",
    "fold_reference",
    "merge_snapshots",
]
