"""Aggregate specifications: what ``SELECT count(*) | sum(v.A) ...`` asks for.

An :class:`AggregateSpec` is the compile-time description of an
aggregation query — a tuple of :class:`Aggregate` terms, each one of
``count(*)``, ``count(v.A)``, ``sum(v.A)``, ``min(v.A)``, ``max(v.A)``
or ``avg(v.A)``.  The spec is carried on the compiled
:class:`~repro.plan.plan.PatternPlan` (fingerprint-suffixed, so the plan
cache distinguishes aggregate plans from enumeration plans of the same
pattern) and drives the incremental fold engine
(:class:`~repro.agg.engine.AggregationEngine`) inside the executor.

Semantics (documented in ``docs/aggregation.md``):

* aggregates fold over the **accepted buffers** (``selection="accepted"``,
  GRETA's "all trends" semantics) — the global Definition-2 selection
  passes would force materialising the match set, defeating the point;
* ``count(*)`` counts accepted matches; ``count(v.A)`` counts events
  bound to ``v`` carrying attribute ``A``, summed across matches;
* ``sum``/``avg`` fold numeric values only (non-numeric and missing
  values are skipped, mirroring the permissive condition semantics);
* ``min``/``max`` fold any mutually comparable values (incomparable
  values are skipped); ``avg`` finalises as sum/count over all folded
  values, ``None`` when no value was folded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Aggregate", "AggregateSpec", "AGGREGATE_FUNCS"]

#: Aggregate functions the SELECT clause admits.
AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate term, e.g. ``sum(p.dose)`` or ``count(*)``.

    ``variable``/``attribute`` are ``None`` exactly for ``count(*)``.
    ``alias`` is the optional ``AS name`` output label.
    """

    func: str
    variable: Optional[str] = None
    attribute: Optional[str] = None
    alias: Optional[str] = None

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(
                f"unknown aggregate function {self.func!r}; expected one of "
                f"{AGGREGATE_FUNCS}")
        if self.variable is None or self.attribute is None:
            if self.func != "count":
                raise ValueError(
                    f"{self.func}(*) is not defined; only count(*) may "
                    f"aggregate without an attribute")
            if self.variable is not None or self.attribute is not None:
                raise ValueError(
                    "variable and attribute must both be given or both be "
                    "omitted")

    @property
    def is_star(self) -> bool:
        """True iff the term is ``count(*)``."""
        return self.variable is None

    @property
    def label(self) -> str:
        """The output label: the alias, or the canonical rendering."""
        return self.alias if self.alias is not None else self.render()

    def render(self) -> str:
        """Canonical query text of the term (without the alias)."""
        if self.is_star:
            return "count(*)"
        return f"{self.func}({self.variable}.{self.attribute})"

    def __repr__(self) -> str:
        if self.alias is not None:
            return f"{self.render()} AS {self.alias}"
        return self.render()


@dataclass(frozen=True)
class AggregateSpec:
    """The full SELECT list of an aggregation query."""

    aggregates: Tuple[Aggregate, ...]

    def __post_init__(self):
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        if not self.aggregates:
            raise ValueError("an aggregate spec needs at least one term")
        seen = set()
        for aggregate in self.aggregates:
            if aggregate.label in seen:
                raise ValueError(
                    f"duplicate aggregate output label {aggregate.label!r}; "
                    f"disambiguate with 'AS name'")
            seen.add(aggregate.label)

    def __iter__(self):
        return iter(self.aggregates)

    def __len__(self) -> int:
        return len(self.aggregates)

    @property
    def labels(self) -> Tuple[str, ...]:
        """Output labels in declaration order."""
        return tuple(a.label for a in self.aggregates)

    def canonical(self) -> str:
        """A canonical token for fingerprinting (order-preserving —
        ``SELECT a, b`` and ``SELECT b, a`` are different queries)."""
        return ",".join(
            f"{a.func}:{a.variable or '*'}:{a.attribute or '*'}"
            f":{a.alias or ''}"
            for a in self.aggregates)

    def validate(self, pattern) -> None:
        """Check every referenced variable is declared by ``pattern``.

        Raises :class:`ValueError` naming the offending term; called at
        plan-build time so a bad spec never reaches the executor.
        """
        declared = {variable.name
                    for event_set in pattern.sets for variable in event_set}
        for aggregate in self.aggregates:
            if (aggregate.variable is not None
                    and aggregate.variable not in declared):
                raise ValueError(
                    f"aggregate {aggregate.render()} references undeclared "
                    f"variable {aggregate.variable!r}")

    def render(self) -> str:
        """The SELECT clause as query text (without ``FROM``)."""
        return "SELECT " + ", ".join(
            a.render() + (f" AS {a.alias}" if a.alias is not None else "")
            for a in self.aggregates)

    def __repr__(self) -> str:
        return f"AggregateSpec({', '.join(repr(a) for a in self.aggregates)})"
