"""Incremental aggregation inside the automaton — no match materialised.

The naive route to ``SELECT count(*) FROM PATTERN ...`` is
enumerate-then-fold: run the executor, materialise every accepted buffer,
then fold.  Theorem 3 makes that hopeless — the match set over group
variables grows as ``O(k^(W·|V1|))``, so enumeration is the asymptotic
bottleneck even when the caller only wants one number.

:class:`AggregationEngine` instead folds aggregates *online*, GRETA
style, by replacing the executor's instance set Ω with **coalesced
instance groups**.  Two automaton instances behave identically forever
iff they agree on

1. their automaton state (which transitions are reachable),
2. their buffer's minimum timestamp (when they expire), and
3. their *projections*: for every ``(partner variable, attribute)`` pair
   read by some two-variable transition check, the set of that
   attribute's values over the events bound to the variable (plus a
   MISSING marker for events lacking the attribute).  Each check is
   independently universally quantified over the partner's events and
   reads exactly one partner attribute, so these value sets determine
   every future ``admits`` outcome.

A group carries a multiplicity ``n`` (how many concrete instances it
stands for) and one *fold register* per aggregate:

* ``count(v.A)`` — register ``c`` = Σ over the group's buffers of the
  per-buffer count; extension by an event binding ``v`` does
  ``c' = c + n·[A present]``; merging groups adds registers.
* ``sum(v.A)``/``avg(v.A)`` — likewise linear: ``s' = s + n·value``
  (numeric values only); ``avg`` keeps a ``(sum, count)`` pair.
* ``min(v.A)``/``max(v.A)`` — a single scalar per group.  Buffers inside
  a group may hold different values, but min/max are associative,
  commutative and idempotent, and a group's buffers always accept
  together, so the scalar is exact for the *total* over all matches.
* ``count(*)`` needs no register: accepting a group adds ``n`` matches.

When a group reaches the accepting state (window expiry, contiguous
cut-off, or end-of-input flush — the same three accept points as the
executor), its registers fold into the running totals and the group is
dropped.  No buffer, substitution, or match object is ever built: the
cost per event is ``O(groups × transitions)``, with the group count
bounded by ``|Q| × |distinct projection sets| × W`` — polynomial where
enumeration is exponential.

Counter semantics in aggregate mode: ``accepted_buffers`` and
``expired`` virtual-instance style numbers would overflow usefulness, so
``accepted_buffers`` counts *virtual* matches folded (Σn — comparable
with the enumerate-then-fold reference) while ``instances_created``,
``transitions_fired``, ``branchings``, ``expired_instances`` and the Ω
peak count *groups* — the work actually done.  ``stats.matches`` stays
zero: nothing is enumerated.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.conditions import OPERATORS
from .spec import AggregateSpec

__all__ = [
    "MISSING", "AggregationEngine", "empty_snapshot", "merge_snapshots",
    "finalize_snapshot", "fold_reference",
]


class _Missing:
    """Picklable singleton marking an absent attribute in a projection."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super(_Missing, cls).__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_Missing, ())

    def __repr__(self):
        return "<missing>"


MISSING = _Missing()

#: Snapshot schema version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# Mergeable snapshots (the cross-process partial-aggregate wire format)
# ----------------------------------------------------------------------
def empty_snapshot(spec: AggregateSpec) -> dict:
    """The identity element for :func:`merge_snapshots`."""
    totals: List[Any] = []
    for aggregate in spec.aggregates:
        if aggregate.is_star:
            totals.append(None)
        elif aggregate.func in ("count", "sum"):
            totals.append(0)
        elif aggregate.func == "avg":
            totals.append([0, 0])
        else:  # min / max
            totals.append(None)
    return {"version": SNAPSHOT_VERSION, "matches": 0, "totals": totals}


def _combine_extremum(func: str, a, b):
    """min/max of two partials, either possibly absent (None)."""
    if a is None:
        return b
    if b is None:
        return a
    try:
        return min(a, b) if func == "min" else max(a, b)
    except TypeError:
        # Incomparable partials (mixed types): keep the first — the
        # same skip rule the fold applies to incomparable raw values.
        return a


def merge_snapshots(spec: AggregateSpec, left: Optional[dict],
                    right: Optional[dict]) -> Optional[dict]:
    """Merge two partial-aggregate snapshots (associative, commutative)."""
    if left is None:
        return None if right is None else _copy_snapshot(right)
    if right is None:
        return _copy_snapshot(left)
    out = empty_snapshot(spec)
    out["matches"] = left["matches"] + right["matches"]
    totals = out["totals"]
    for i, aggregate in enumerate(spec.aggregates):
        a, b = left["totals"][i], right["totals"][i]
        if aggregate.is_star:
            continue
        if aggregate.func in ("count", "sum"):
            totals[i] = a + b
        elif aggregate.func == "avg":
            totals[i] = [a[0] + b[0], a[1] + b[1]]
        else:
            totals[i] = _combine_extremum(aggregate.func, a, b)
    return out


def _copy_snapshot(snapshot: dict) -> dict:
    return {
        "version": snapshot.get("version", SNAPSHOT_VERSION),
        "matches": snapshot["matches"],
        "totals": [list(t) if isinstance(t, list) else t
                   for t in snapshot["totals"]],
    }


def finalize_snapshot(spec: AggregateSpec, snapshot: Optional[dict]) -> dict:
    """Snapshot → ``{label: value}`` in declaration order.

    SQL-flavoured empties: counts finalise to 0, ``sum``/``min``/``max``
    /``avg`` to ``None`` when no value was folded.
    """
    if snapshot is None:
        snapshot = empty_snapshot(spec)
    values = {}
    for i, aggregate in enumerate(spec.aggregates):
        total = snapshot["totals"][i]
        if aggregate.is_star:
            values[aggregate.label] = snapshot["matches"]
        elif aggregate.func == "count":
            values[aggregate.label] = total
        elif aggregate.func == "sum":
            values[aggregate.label] = total if snapshot["matches"] else None
        elif aggregate.func == "avg":
            s, c = total
            values[aggregate.label] = s / c if c else None
        else:
            values[aggregate.label] = total
    return values


def fold_reference(spec: AggregateSpec, substitutions) -> dict:
    """Enumerate-then-fold reference: fold materialised matches.

    The ground truth the incremental engine must equal — used by the
    validation tests and the benchmark.  Returns a snapshot (pass it to
    :func:`finalize_snapshot` for final values).
    """
    snapshot = empty_snapshot(spec)
    snapshot["matches"] = len(substitutions)
    totals = snapshot["totals"]
    for substitution in substitutions:
        by_name = {v.name: v for v in substitution.variables}
        for i, aggregate in enumerate(spec.aggregates):
            if aggregate.is_star:
                continue
            variable = by_name.get(aggregate.variable)
            events = ([] if variable is None
                      else substitution.events_of(variable))
            values = [e.get(aggregate.attribute, MISSING) for e in events]
            present = [v for v in values if v is not MISSING]
            if aggregate.func == "count":
                totals[i] += len(present)
            elif aggregate.func in ("sum", "avg"):
                numeric = [v for v in present if isinstance(v, (int, float))]
                if aggregate.func == "sum":
                    totals[i] += sum(numeric)
                else:
                    totals[i] = [totals[i][0] + sum(numeric),
                                 totals[i][1] + len(numeric)]
            else:
                for value in present:
                    totals[i] = _combine_extremum(
                        aggregate.func, totals[i], value)
    return snapshot


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class AggregationEngine:
    """Coalesced-group fold over a SES automaton (module docstring)."""

    def __init__(self, automaton, spec: AggregateSpec,
                 consume_mode: str = "greedy"):
        self.automaton = automaton
        self.spec = spec
        self.consume_mode = consume_mode
        self._tau = automaton.tau
        self._start = automaton.start
        self._accepting = automaton.accepting

        # Projected (partner variable, attribute) pairs, harvested from
        # every two-variable check across the automaton; a projection
        # tuple holds one value-frozenset per pair.
        pairs: List[Tuple[Any, str]] = []
        pair_index: Dict[Tuple[Any, str], int] = {}
        compiled: Dict[int, list] = {}
        for transition in automaton.transitions:
            checks = []
            for other, anchored in transition.checks:
                if other is None:
                    checks.append((None, anchored, None, None))
                else:
                    pair = (other, anchored.right.attribute)
                    if pair not in pair_index:
                        pair_index[pair] = len(pairs)
                        pairs.append(pair)
                    checks.append((pair_index[pair], anchored,
                                   OPERATORS[anchored.op],
                                   anchored.left.attribute))
            compiled[id(transition)] = checks
        self._pairs = tuple(pairs)
        self._empty_proj = tuple(frozenset() for _ in pairs)

        # Per state: (transition, compiled checks, projection updates,
        # register-binding aggregate indices).
        self._by_state = {}
        for state in automaton.states:
            entries = []
            for transition in automaton.outgoing(state):
                bound = transition.variable
                proj_updates = tuple(
                    (index, attribute)
                    for index, (variable, attribute) in enumerate(pairs)
                    if variable == bound)
                reg_updates = tuple(
                    i for i, a in enumerate(spec.aggregates)
                    if a.variable == bound.name)
                entries.append((transition, compiled[id(transition)],
                                proj_updates, reg_updates))
            self._by_state[state] = tuple(entries)

        self._init_regs = self._fresh_registers()
        self.reset()

    def _fresh_registers(self) -> tuple:
        regs: List[Any] = []
        for aggregate in self.spec.aggregates:
            if aggregate.is_star:
                regs.append(None)
            elif aggregate.func in ("count", "sum"):
                regs.append(0)
            elif aggregate.func == "avg":
                regs.append((0, 0))
            else:
                regs.append(None)
        return tuple(regs)

    def reset(self) -> None:
        """Clear groups and totals for a fresh run."""
        #: key (state, min_ts, projections) → [multiplicity, registers]
        self._groups: Dict[tuple, list] = {}
        self._totals = empty_snapshot(self.spec)["totals"]
        self.matches_folded = 0
        self.max_groups = 0

    # -- introspection -------------------------------------------------
    @property
    def group_count(self) -> int:
        """Active coalesced groups (the aggregate-mode |Ω|)."""
        return len(self._groups)

    @property
    def next_expiry_ts(self):
        """Latest timestamp the current groups survive unchanged."""
        oldest = None
        for (state, min_ts, proj) in self._groups:
            if min_ts is not None and (oldest is None or min_ts < oldest):
                oldest = min_ts
        return None if oldest is None else oldest + self._tau

    # -- the per-event loop --------------------------------------------
    def step(self, event, allow_start, stats) -> None:
        """Aggregate-mode twin of the executor's ``_step``."""
        ts = event.ts
        tau = self._tau
        accepting = self._accepting
        if allow_start:
            stats.instances_created += 1
        stats.observe_event(ts)
        stats.observe_omega(len(self._groups) + (1 if allow_start else 0))
        next_groups: Dict[tuple, list] = {}
        for key, (n, regs) in self._groups.items():
            min_ts = key[1]
            if min_ts is not None and ts - min_ts > tau:
                stats.expired_instances += 1
                if key[0] == accepting:
                    self._fold(n, regs, stats)
                continue
            self._consume(key, n, regs, event, next_groups, stats)
        if allow_start:
            self._consume((self._start, None, self._empty_proj), 1,
                          self._init_regs, event, next_groups, stats)
        self._groups = next_groups
        count = len(next_groups)
        stats.observe_omega(count)
        if count > self.max_groups:
            self.max_groups = count

    def expire_only(self, event, stats) -> None:
        """Expiry sweep without consumption (filtered events, ticks)."""
        ts = event.ts
        tau = self._tau
        accepting = self._accepting
        survivors: Dict[tuple, list] = {}
        for key, (n, regs) in self._groups.items():
            min_ts = key[1]
            if min_ts is not None and ts - min_ts > tau:
                stats.expired_instances += 1
                if key[0] == accepting:
                    self._fold(n, regs, stats)
            else:
                survivors[key] = [n, regs]
        self._groups = survivors

    def _consume(self, key, n, regs, event, out, stats) -> None:
        """Aggregate-mode twin of the executor's ``_consume``."""
        state, min_ts, proj = key
        fired = 0
        for transition, checks, proj_updates, reg_updates in \
                self._by_state[state]:
            if not self._admits(checks, proj, event):
                continue
            fired += 1
            new_key = (transition.target,
                       event.ts if min_ts is None else min_ts,
                       self._extend_proj(proj, proj_updates, event))
            new_regs = (self._bind(regs, reg_updates, event, n)
                        if reg_updates else regs)
            self._merge_into(out, new_key, n, new_regs)
        if fired:
            stats.transitions_fired += fired
            if fired > 1:
                stats.branchings += fired - 1
                stats.instances_created += fired - 1
            if self.consume_mode == "exhaustive" and state != self._start:
                self._merge_into(out, key, n, regs)
                stats.instances_created += 1
        elif state != self._start:
            if self.consume_mode == "contiguous":
                if state == self._accepting:
                    self._fold(n, regs, stats)
                return
            self._merge_into(out, key, n, regs)

    def _admits(self, checks, proj, event) -> bool:
        """Value-space ``Transition.admits`` over a projection tuple.

        Mirrors ``Condition.evaluate_events`` exactly: a missing
        attribute on either side fails the check, an incomparable pair
        fails it, and a check against a variable with no bound events
        is vacuously true.
        """
        for pair_idx, anchored, op, left_attr in checks:
            if pair_idx is None:
                if not anchored.evaluate_events(event, event):
                    return False
                continue
            values = proj[pair_idx]
            if not values:
                continue
            left = event.get(left_attr, MISSING)
            if left is MISSING:
                return False
            for value in values:
                if value is MISSING:
                    return False
                try:
                    if not op(left, value):
                        return False
                except TypeError:
                    return False
        return True

    @staticmethod
    def _extend_proj(proj, proj_updates, event):
        if not proj_updates:
            return proj
        out = list(proj)
        for index, attribute in proj_updates:
            value = event.get(attribute, MISSING)
            if value not in out[index]:
                out[index] = out[index] | frozenset((value,))
        return tuple(out)

    def _bind(self, regs, reg_updates, event, n) -> tuple:
        """Extend registers for an event binding an aggregated variable."""
        out = list(regs)
        aggregates = self.spec.aggregates
        for i in reg_updates:
            aggregate = aggregates[i]
            value = event.get(aggregate.attribute, MISSING)
            if value is MISSING:
                continue
            func = aggregate.func
            if func == "count":
                out[i] = out[i] + n
            elif func == "sum":
                if isinstance(value, (int, float)):
                    out[i] = out[i] + n * value
            elif func == "avg":
                if isinstance(value, (int, float)):
                    s, c = out[i]
                    out[i] = (s + n * value, c + n)
            else:
                out[i] = (value if out[i] is None
                          else _combine_extremum(func, out[i], value))
        return tuple(out)

    def _merge_into(self, out, key, n, regs) -> None:
        """Add a group contribution, coalescing with an equal key."""
        existing = out.get(key)
        if existing is None:
            out[key] = [n, regs]
            return
        existing[0] += n
        existing[1] = self._merge_registers(existing[1], regs)

    def _merge_registers(self, a, b) -> tuple:
        out = list(a)
        for i, aggregate in enumerate(self.spec.aggregates):
            if aggregate.is_star:
                continue
            func = aggregate.func
            if func in ("count", "sum"):
                out[i] = a[i] + b[i]
            elif func == "avg":
                out[i] = (a[i][0] + b[i][0], a[i][1] + b[i][1])
            else:
                out[i] = _combine_extremum(func, a[i], b[i])
        return tuple(out)

    def _fold(self, n, regs, stats) -> None:
        """Fold an accepting group's registers into the totals."""
        self.matches_folded += n
        stats.accepted_buffers += n
        totals = self._totals
        for i, aggregate in enumerate(self.spec.aggregates):
            if aggregate.is_star:
                continue
            func = aggregate.func
            if func in ("count", "sum"):
                totals[i] += regs[i]
            elif func == "avg":
                totals[i] = [totals[i][0] + regs[i][0],
                             totals[i][1] + regs[i][1]]
            else:
                totals[i] = _combine_extremum(func, totals[i], regs[i])

    def finish(self, stats) -> None:
        """End-of-input flush: fold groups resting in the accepting state."""
        for key, (n, regs) in self._groups.items():
            if key[0] == self._accepting:
                self._fold(n, regs, stats)
        self._groups = {}

    # -- results -------------------------------------------------------
    def snapshot(self) -> dict:
        """Current totals as a mergeable partial-aggregate snapshot."""
        return {"version": SNAPSHOT_VERSION, "matches": self.matches_folded,
                "totals": [list(t) if isinstance(t, (list, tuple)) else t
                           for t in self._totals]}

    def values(self) -> dict:
        """Current totals finalised to ``{label: value}``."""
        return finalize_snapshot(self.spec, self.snapshot())

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict:
        """Picklable snapshot of groups and totals (values only — no
        events, buffers, or compiled conditions)."""
        return {
            "groups": [(key, n, regs)
                       for key, (n, regs) in self._groups.items()],
            "snapshot": self.snapshot(),
            "max_groups": self.max_groups,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._groups = {key: [n, regs]
                        for key, n, regs in state["groups"]}
        snapshot = state["snapshot"]
        self.matches_folded = snapshot["matches"]
        self._totals = [list(t) if isinstance(t, list) else t
                        for t in snapshot["totals"]]
        self.max_groups = state["max_groups"]

    def __repr__(self) -> str:
        return (f"AggregationEngine({self.spec!r}, groups={len(self._groups)}, "
                f"folded={self.matches_folded})")
