"""The EXPLAIN report: one data model, three renderings (text/json/dot).

A :class:`ExplainReport` carries the *static* plan description —
automaton topology, trimmed-table sizes, prefilter predicate vectors,
complexity bounds, plan-cache provenance, persisted statistics — and,
after :func:`~repro.explain.analyze.explain_analyze`, the ``analysis``
section with the observed per-transition / per-condition counters.  The
dot rendering annotates transitions with *hotness* (share of fired
transitions) when analysis data is present.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["ExplainReport"]

#: Graphviz fill colors from cold to hot (share of transition passes).
_HEAT_COLORS = ("gray60", "#4575b4", "#fee090", "#fc8d59", "#d73027")


def _heat_color(share: float) -> str:
    index = min(len(_HEAT_COLORS) - 1, int(share * len(_HEAT_COLORS)))
    return _HEAT_COLORS[index]


def _fmt_ratio(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.1%}"


@dataclass
class ExplainReport:
    """Everything EXPLAIN (and EXPLAIN ANALYZE) knows about one plan."""

    #: Canonical plan fingerprint (pattern + optimizations).
    fingerprint: str
    #: ``repr`` of the source pattern.
    pattern: str
    #: Optimizations the plan was compiled with.
    optimizations: List[str] = field(default_factory=list)
    #: Applied compile-time rewrites (trim reports etc.).
    rewrites: List[str] = field(default_factory=list)
    #: Automaton topology summary (states/transitions/start/accepting/tau).
    automaton: dict = field(default_factory=dict)
    #: Static per-transition entries (source/variable/target/conditions).
    transitions: List[dict] = field(default_factory=list)
    #: Per-mode prefilter predicate vectors.
    prefilter: dict = field(default_factory=dict)
    #: Section 4.4 complexity bounds (``None`` without a window size).
    complexity: Optional[dict] = None
    #: Plan-cache provenance: was this fingerprint cached, cache counters.
    cache: dict = field(default_factory=dict)
    #: Persisted statistics for the pattern (``None`` when never observed).
    statistics: Optional[dict] = None
    #: EXPLAIN ANALYZE section (``None`` for a static explain).
    analysis: Optional[dict] = None

    # ------------------------------------------------------------------
    # Renderings
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The full report as a JSON-ready dict."""
        return {
            "fingerprint": self.fingerprint,
            "pattern": self.pattern,
            "optimizations": list(self.optimizations),
            "rewrites": list(self.rewrites),
            "automaton": dict(self.automaton),
            "transitions": [dict(t) for t in self.transitions],
            "prefilter": {mode: dict(entry)
                          for mode, entry in self.prefilter.items()},
            "complexity": self.complexity,
            "cache": dict(self.cache),
            "statistics": self.statistics,
            "analysis": self.analysis,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=str)

    def _analysis_by_label(self) -> dict:
        if not self.analysis:
            return {}
        return {record["label"]: record
                for record in self.analysis.get("transitions", ())}

    def to_text(self) -> str:
        """The EXPLAIN text rendering (EXPLAIN ANALYZE when analyzed)."""
        title = "EXPLAIN ANALYZE" if self.analysis else "EXPLAIN"
        lines = [
            f"{title} plan {self.fingerprint[:12]} for {self.pattern}",
            f"  optimizations: {', '.join(self.optimizations) or 'none'}",
        ]
        for rewrite in self.rewrites:
            lines.append(f"  rewrite: {rewrite}")
        automaton = self.automaton
        lines.append(
            f"  automaton: {automaton.get('states', '?')} states, "
            f"{automaton.get('transitions', '?')} transitions, "
            f"tau={automaton.get('tau', '?')}")
        lines.append(f"    start: {automaton.get('start', '?')}   "
                     f"accepting: {automaton.get('accepting', '?')}")
        for mode, entry in sorted(self.prefilter.items()):
            predicates = ", ".join(
                f"{attribute} {op} {constant!r}"
                for attribute, op, constant in entry.get("predicates", ()))
            effective = "on" if entry.get("effective") else "off"
            lines.append(
                f"  prefilter[{mode}]: {effective} "
                f"({len(entry.get('predicates', ()))} predicates"
                + (f": {predicates}" if predicates else "") + ")")
        if self.complexity:
            for line in self.complexity.get("describe", "").splitlines():
                lines.append(f"  {line}")
        cache = self.cache
        if cache:
            lines.append(
                f"  plan cache: {'hit' if cache.get('cached') else 'miss'} "
                f"({cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses, "
                f"{cache.get('size', 0)}/{cache.get('maxsize', 0)} plans)")
        analysis = self.analysis
        by_label = self._analysis_by_label()
        lines.append("  transitions:")
        for entry in self.transitions:
            label = entry["label"]
            suffix = ""
            counters = by_label.get(label)
            if counters:
                suffix = (f"  [evals={counters['evaluations']} "
                          f"passes={counters['passes']} "
                          f"sel={_fmt_ratio(counters['selectivity'])} "
                          f"t={counters['seconds'] * 1e3:.2f}ms]")
            lines.append(f"    {label}{suffix}")
            for index, condition in enumerate(entry.get("conditions", ())):
                detail = ""
                if counters:
                    c = counters["conditions"][index]
                    detail = (f"  [evals={c['evaluations']} "
                              f"passes={c['passes']} "
                              f"sel={_fmt_ratio(c['selectivity'])}]")
                lines.append(f"      {condition}{detail}")
        if analysis:
            reconciled = ("reconciled" if analysis.get("reconciles")
                          else "MISMATCH")
            lines.extend([
                "  analysis:",
                f"    events: {analysis['events']} read, "
                f"{analysis['events_filtered']} filtered, "
                f"{analysis['events_processed']} processed "
                f"(prefilter selectivity "
                f"{_fmt_ratio(analysis.get('prefilter_selectivity'))})",
                f"    instances: {analysis['instances_created']} created, "
                f"{analysis['instances_expired']} expired, "
                f"{analysis['branchings']} branchings, "
                f"peak |omega| {analysis['max_omega']}",
                f"    transitions: {analysis['transition_evaluations']} "
                f"evaluated, {analysis['transition_passes']} fired "
                f"({reconciled} with executor counters)",
                f"    matches: {analysis['matches']} "
                f"({analysis['accepted_buffers']} accepted buffers)",
                f"    wall time: {analysis['wall_seconds'] * 1e3:.2f} ms",
            ])
        statistics = self.statistics
        if statistics:
            lines.append(
                f"  persisted statistics: {statistics.get('runs', 0)} "
                f"run(s), {statistics.get('events', 0)} events, "
                f"{statistics.get('matches', 0)} matches")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT of the automaton; with analysis data the edges
        are colored and weighted by hotness (share of fired passes)."""
        by_label = self._analysis_by_label()
        total_passes = sum(record["passes"]
                           for record in by_label.values()) or 1
        lines = ["digraph EXPLAIN {", "  rankdir=LR;",
                 f'  label="plan {self.fingerprint[:12]}";']
        states = set()
        for entry in self.transitions:
            states.add(entry["source"])
            states.add(entry["target"])
        accepting = self.automaton.get("accepting")
        start = self.automaton.get("start")
        for state in sorted(states):
            shape = "doublecircle" if state == accepting else "circle"
            lines.append(f'  "{state}" [shape={shape}];')
        if start is not None:
            lines.append("  __start [shape=point];")
            lines.append(f'  __start -> "{start}";')
        for entry in self.transitions:
            label = f"{entry['variable']}"
            attrs = []
            counters = by_label.get(entry["label"])
            if counters:
                share = counters["passes"] / total_passes
                label += (f"\\n{counters['passes']}/"
                          f"{counters['evaluations']} "
                          f"({_fmt_ratio(counters['selectivity'])})")
                attrs.append(f'color="{_heat_color(share)}"')
                attrs.append(f"penwidth={1.0 + 4.0 * share:.2f}")
            attrs.insert(0, f'label="{label}"')
            lines.append(f'  "{entry["source"]}" -> "{entry["target"]}" '
                         f"[{', '.join(attrs)}];")
        lines.append("}")
        return "\n".join(lines)

    def render(self, format: str = "text") -> str:
        """Render as ``text``, ``json`` or ``dot``."""
        if format == "text":
            return self.to_text()
        if format == "json":
            return self.to_json()
        if format == "dot":
            return self.to_dot()
        raise ValueError(f"unknown explain format {format!r}; "
                         "expected text, json or dot")

    def __repr__(self) -> str:
        kind = "analyzed" if self.analysis else "static"
        return f"ExplainReport({self.fingerprint[:12]}, {kind})"
