"""Query-level observability: EXPLAIN, EXPLAIN ANALYZE, statistics.

The measurement substrate for per-pattern cost accounting:

* :func:`explain` — a static report of everything derivable from the
  compiled plan: automaton topology, trimmed-table sizes, prefilter
  predicate vectors, Section 4.4 complexity bounds, plan-cache
  provenance (:mod:`repro.explain.explain`);
* :func:`explain_analyze` — the same report annotated with observed
  per-transition / per-condition counters from an instrumented run over
  a shadow *counting automaton*; the production hot path is untouched
  (:mod:`repro.explain.analyze`);
* :class:`StatsStore` — observed selectivities and cardinalities
  persisted per pattern fingerprint (JSON sidecar, process-global like
  the plan cache), merged across runs and across pool/shard workers
  (:mod:`repro.explain.stats`);
* :func:`ordered_plan` — the feedback loop: a plan whose transitions
  evaluate conditions in ascending observed pass-rate order
  (:mod:`repro.explain.order`).

Surfaced through ``repro explain [--analyze] [--format text|json|dot]``,
the ``/debug/explain`` endpoint and the planner — see
``docs/explain.md``.
"""

from .analyze import (CountingTransition, counting_automaton,
                      explain_analyze, transition_label)
from .explain import explain
from .order import (condition_order_hint, ordered_automaton, ordered_plan,
                    rank_conditions)
from .report import ExplainReport
from .stats import (StatsStore, clear_stats_store, set_stats_path,
                    stats_key, stats_store)

__all__ = [
    "ExplainReport", "explain", "explain_analyze",
    "CountingTransition", "counting_automaton", "transition_label",
    "StatsStore", "stats_store", "clear_stats_store", "set_stats_path",
    "stats_key",
    "ordered_plan", "ordered_automaton", "rank_conditions",
    "condition_order_hint",
]
